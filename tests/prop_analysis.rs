//! Property-based tests for the Blazes analysis: invariants that must hold
//! on *arbitrary* annotated dataflows, checked with proptest.

use blazes::core::analysis::Analyzer;
use blazes::core::annotation::ComponentAnnotation;
use blazes::core::graph::DataflowGraph;
use blazes::core::label::Label;
use blazes::core::severity::Severity;
use blazes::core::strategy::{plan_for, residual_labels};
use proptest::prelude::*;

const ATTRS: [&str; 4] = ["a", "b", "c", "d"];

#[derive(Debug, Clone)]
struct RandomChain {
    annotations: Vec<ComponentAnnotation>,
    seal: Option<Vec<&'static str>>,
    rep_mask: u8,
}

fn arb_annotation() -> impl Strategy<Value = ComponentAnnotation> {
    prop_oneof![
        Just(ComponentAnnotation::cr()),
        Just(ComponentAnnotation::cw()),
        proptest::sample::subsequence(ATTRS.to_vec(), 1..=3).prop_map(ComponentAnnotation::or),
        proptest::sample::subsequence(ATTRS.to_vec(), 1..=3).prop_map(ComponentAnnotation::ow),
        Just(ComponentAnnotation::or_star()),
        Just(ComponentAnnotation::ow_star()),
    ]
}

fn arb_chain() -> impl Strategy<Value = RandomChain> {
    (
        proptest::collection::vec(arb_annotation(), 1..6),
        proptest::option::of(proptest::sample::subsequence(ATTRS.to_vec(), 1..=2)),
        any::<u8>(),
    )
        .prop_map(|(annotations, seal, rep_mask)| RandomChain {
            annotations,
            seal,
            rep_mask,
        })
}

/// Build a linear dataflow from a chain description.
fn build(chain: &RandomChain, with_seal: bool) -> DataflowGraph {
    let mut g = DataflowGraph::new("prop-chain");
    let src = g.add_source("src", &ATTRS);
    if with_seal {
        if let Some(seal) = &chain.seal {
            g.seal_source(src, seal.iter().copied());
        }
    }
    let mut prev = None;
    for (i, ann) in chain.annotations.iter().enumerate() {
        let c = g.add_component(format!("C{i}"));
        g.set_rep(c, chain.rep_mask & (1 << (i % 8)) != 0);
        g.add_path(c, "in", "out", ann.clone());
        match prev {
            None => {
                g.connect_source(src, c, "in");
            }
            Some(p) => {
                g.connect(p, "out", c, "in");
            }
        }
        prev = Some(c);
    }
    let sink = g.add_sink("sink");
    g.connect_sink(prev.expect("non-empty"), "out", sink);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analysis never fails on well-formed graphs and always produces a
    /// publishable (non-internal) sink label.
    #[test]
    fn analysis_total_and_labels_publishable(chain in arb_chain()) {
        let g = build(&chain, true);
        let out = Analyzer::new(&g).run().expect("analysis must succeed");
        let sink = g.sink_by_name("sink").unwrap();
        let label = out.sink_label(sink).expect("sink labeled");
        prop_assert!(!label.is_internal(), "published label must not be internal: {label}");
    }

    /// Determinism: analyzing the same graph twice gives identical labels.
    #[test]
    fn analysis_is_deterministic(chain in arb_chain()) {
        let g = build(&chain, true);
        let a = Analyzer::new(&g).run().unwrap();
        let b = Analyzer::new(&g).run().unwrap();
        let sink = g.sink_by_name("sink").unwrap();
        prop_assert_eq!(a.sink_label(sink), b.sink_label(sink));
    }

    /// Monotonicity of seals: adding a seal annotation never makes the
    /// verdict *worse* (sealing can only rule out anomalies).
    #[test]
    fn seals_never_hurt(chain in arb_chain()) {
        let sealed = build(&chain, true);
        let unsealed = build(&chain, false);
        let sink_s = sealed.sink_by_name("sink").unwrap();
        let sink_u = unsealed.sink_by_name("sink").unwrap();
        let ls = Analyzer::new(&sealed).run().unwrap().sink_label(sink_s).cloned().unwrap();
        let lu = Analyzer::new(&unsealed).run().unwrap().sink_label(sink_u).cloned().unwrap();
        prop_assert!(
            ls.severity() <= lu.severity(),
            "seal worsened the label: sealed {ls} vs unsealed {lu}"
        );
    }

    /// Confluent-only dataflows never require coordination (CALM).
    #[test]
    fn confluent_chains_are_calm(n in 1usize..6, writes in any::<u8>()) {
        let chain = RandomChain {
            annotations: (0..n)
                .map(|i| if writes & (1 << (i % 8)) != 0 {
                    ComponentAnnotation::cw()
                } else {
                    ComponentAnnotation::cr()
                })
                .collect(),
            seal: None,
            rep_mask: writes,
        };
        let g = build(&chain, false);
        let out = Analyzer::new(&g).run().unwrap();
        prop_assert!(!out.requires_coordination());
        prop_assert!(out.program_label().severity() <= Severity::ASYNC);
    }

    /// Plan soundness: after deploying the synthesized plan (with *static*
    /// ordering), no sink remains anomalous.
    #[test]
    fn plans_restore_consistency(chain in arb_chain()) {
        let g = build(&chain, true);
        let plan = plan_for(&g, false).unwrap();
        let residual = residual_labels(&g, &plan).unwrap();
        for (name, label) in residual {
            prop_assert!(!label.is_anomalous(), "sink {name} still {label} after plan");
        }
    }

    /// Plan necessity: a graph whose analysis is clean gets an empty plan.
    #[test]
    fn clean_graphs_get_empty_plans(chain in arb_chain()) {
        let g = build(&chain, true);
        let out = Analyzer::new(&g).run().unwrap();
        let plan = plan_for(&g, false).unwrap();
        if !out.requires_coordination() {
            prop_assert!(
                !plan.needs_ordering(),
                "consistent graph must not be ordered"
            );
        }
    }

    /// Replication monotonicity: marking components replicated never
    /// *lowers* severity.
    #[test]
    fn replication_never_helps(chain in arb_chain()) {
        let base = build(&RandomChain { rep_mask: 0, ..chain.clone() }, true);
        let replicated = build(&RandomChain { rep_mask: 0xFF, ..chain }, true);
        let lb = Analyzer::new(&base).run().unwrap().program_label();
        let lr = Analyzer::new(&replicated).run().unwrap().program_label();
        prop_assert!(lb.severity() <= lr.severity(), "rep lowered severity: {lb} vs {lr}");
    }
}

// ---------------------------------------------------------------------
// Bloom engine properties: the optimized evaluation modes must be
// observationally identical to the naive oracle on arbitrary stratifiable
// modules.
// ---------------------------------------------------------------------

mod bloom_engine {
    use blazes_bloom::interp::{EvalMode, ModuleInstance};
    use blazes_bloom::parse_module;
    use blazes_dataflow::value::{Tuple, Value};
    use proptest::prelude::*;
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    /// A random module plus the inputs fed on each tick.
    #[derive(Debug, Clone)]
    pub struct RandomModule {
        pub text: String,
        pub ticks: Vec<Vec<(i64, i64)>>,
    }

    /// Render a random layered module. Layer `i` derives scratch `c{i}`
    /// from collections of lower (or, for monotonic bodies, equal) layers,
    /// so the module is stratifiable **by construction**: nonmonotonic
    /// bodies (group-by, antijoin) only ever read strictly lower layers.
    /// Group values are clamped by a `having n < 3` bound so the value
    /// domain stays small under recursion.
    fn module_text(layers: &[(u8, u8, u8)]) -> String {
        let mut s =
            String::from("module P {\n  input inp(x, y)\n  output out(x, y)\n  table t(x, y)\n");
        for i in 0..layers.len() {
            let _ = writeln!(s, "  scratch c{i}(x, y)");
        }
        s.push_str("  t <= inp\n");
        for (i, &(body, src_a, src_b)) in layers.iter().enumerate() {
            // Monotonic bodies may read the layer itself (recursion);
            // nonmonotonic bodies only strictly lower layers (or `t`).
            let mono = |b: u8| match (b as usize) % (i + 2) {
                0 => "t".to_string(),
                k => format!("c{}", k - 1),
            };
            let lower = |b: u8| match (b as usize) % (i + 1) {
                0 => "t".to_string(),
                k => format!("c{}", k - 1),
            };
            let head = format!("c{i}");
            match body % 6 {
                0 => {
                    let _ = writeln!(s, "  {head} <= {}", mono(src_a));
                }
                1 => {
                    let _ = writeln!(s, "  {head} <= {} where {0}.x > 1", mono(src_a));
                }
                2 | 3 => {
                    let (l, r) = (mono(src_a), mono(src_b));
                    let _ = writeln!(
                        s,
                        "  {head} <= ({l} * {r}) on ({l}.y = {r}.x) -> ({l}.x, {r}.y)"
                    );
                }
                4 => {
                    let (src, neg) = (lower(src_a), lower(src_b));
                    let _ = writeln!(s, "  {head} <= {src} not in {neg} on ({src}.x = {neg}.x)");
                }
                _ => {
                    let src = lower(src_a);
                    let _ = writeln!(
                        s,
                        "  {head} <= {src} group by ({src}.x) agg count(*) as n having n < 3"
                    );
                }
            }
        }
        let last = layers.len() - 1;
        let _ = writeln!(s, "  out <= c{last}");
        // Feed one derived layer back into the table next tick, so the
        // ticks exercise cross-timestep state too.
        let _ = writeln!(s, "  t <+ c{last}");
        s.push_str("}\n");
        s
    }

    fn arb_module() -> impl Strategy<Value = RandomModule> {
        (
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..5),
            proptest::collection::vec(proptest::collection::vec((0i64..6, 0i64..6), 0..6), 1..4),
        )
            .prop_map(|(layers, ticks)| RandomModule {
                text: module_text(&layers),
                ticks,
            })
    }

    fn run(rm: &RandomModule, mode: EvalMode) -> (Vec<BTreeMap<String, Vec<Tuple>>>, Vec<Tuple>) {
        let m = parse_module(&rm.text).expect("generated module must parse");
        let mut inst = ModuleInstance::with_mode(m, mode).expect("stratifiable by construction");
        let mut outs = Vec::new();
        for tick in &rm.ticks {
            let tuples: Vec<Tuple> = tick
                .iter()
                .map(|&(x, y)| Tuple(vec![Value::Int(x), Value::Int(y)]))
                .collect();
            let mut inputs = BTreeMap::new();
            inputs.insert("inp".to_string(), tuples);
            outs.push(inst.tick(inputs).expect("tick must succeed").outputs);
        }
        (outs, inst.table("t"))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Semi-naive and sharded evaluation are oracle-equivalent to
        /// naive evaluation: bit-identical tick outputs and final table
        /// state on arbitrary stratifiable modules.
        #[test]
        fn optimized_modes_match_naive_oracle(rm in arb_module()) {
            let (naive_outs, naive_table) = run(&rm, EvalMode::Naive);
            for mode in [EvalMode::SemiNaive, EvalMode::Sharded { workers: 2 }] {
                let (outs, table) = run(&rm, mode);
                prop_assert_eq!(&naive_outs, &outs, "outputs diverged in {:?}\n{}", mode, rm.text);
                prop_assert_eq!(&naive_table, &table, "table diverged in {:?}\n{}", mode, rm.text);
            }
        }

        /// Semi-naive evaluation never performs more derivations than the
        /// naive oracle on the same module and inputs.
        #[test]
        fn semi_naive_never_rederives_more(rm in arb_module()) {
            let m = parse_module(&rm.text).expect("generated module must parse");
            let mut naive = ModuleInstance::with_mode(m.clone(), EvalMode::Naive).unwrap();
            let mut semi = ModuleInstance::with_mode(m, EvalMode::SemiNaive).unwrap();
            for tick in &rm.ticks {
                let tuples: Vec<Tuple> = tick
                    .iter()
                    .map(|&(x, y)| Tuple(vec![Value::Int(x), Value::Int(y)]))
                    .collect();
                let mut inputs = BTreeMap::new();
                inputs.insert("inp".to_string(), tuples);
                naive.tick(inputs.clone()).unwrap();
                semi.tick(inputs).unwrap();
            }
            prop_assert!(
                semi.cumulative_stats().derivations <= naive.cumulative_stats().derivations,
                "semi-naive derived more than naive on\n{}",
                rm.text
            );
        }
    }
}

/// Severity lattice laws for the full label set (exhaustive, not random).
#[test]
fn label_join_is_a_semilattice() {
    let labels = [
        Label::Taint,
        Label::nd_read(["a"]),
        Label::seal(["a"]),
        Label::Async,
        Label::Run,
        Label::Inst,
        Label::Diverge,
    ];
    for a in &labels {
        assert_eq!(
            a.clone().join(a.clone()).severity(),
            a.severity(),
            "idempotent"
        );
        for b in &labels {
            let ab = a.clone().join(b.clone());
            let ba = b.clone().join(a.clone());
            assert_eq!(ab.severity(), ba.severity(), "commutative severity");
            for c in &labels {
                let l = a.clone().join(b.clone()).join(c.clone());
                let r = a.clone().join(b.clone().join(c.clone()));
                assert_eq!(l.severity(), r.severity(), "associative severity");
            }
        }
    }
}
