//! Property-based tests for the Blazes analysis: invariants that must hold
//! on *arbitrary* annotated dataflows, checked with proptest.

use blazes::core::analysis::Analyzer;
use blazes::core::annotation::ComponentAnnotation;
use blazes::core::graph::DataflowGraph;
use blazes::core::label::Label;
use blazes::core::severity::Severity;
use blazes::core::strategy::{plan_for, residual_labels};
use proptest::prelude::*;

const ATTRS: [&str; 4] = ["a", "b", "c", "d"];

#[derive(Debug, Clone)]
struct RandomChain {
    annotations: Vec<ComponentAnnotation>,
    seal: Option<Vec<&'static str>>,
    rep_mask: u8,
}

fn arb_annotation() -> impl Strategy<Value = ComponentAnnotation> {
    prop_oneof![
        Just(ComponentAnnotation::cr()),
        Just(ComponentAnnotation::cw()),
        proptest::sample::subsequence(ATTRS.to_vec(), 1..=3).prop_map(ComponentAnnotation::or),
        proptest::sample::subsequence(ATTRS.to_vec(), 1..=3).prop_map(ComponentAnnotation::ow),
        Just(ComponentAnnotation::or_star()),
        Just(ComponentAnnotation::ow_star()),
    ]
}

fn arb_chain() -> impl Strategy<Value = RandomChain> {
    (
        proptest::collection::vec(arb_annotation(), 1..6),
        proptest::option::of(proptest::sample::subsequence(ATTRS.to_vec(), 1..=2)),
        any::<u8>(),
    )
        .prop_map(|(annotations, seal, rep_mask)| RandomChain {
            annotations,
            seal,
            rep_mask,
        })
}

/// Build a linear dataflow from a chain description.
fn build(chain: &RandomChain, with_seal: bool) -> DataflowGraph {
    let mut g = DataflowGraph::new("prop-chain");
    let src = g.add_source("src", &ATTRS);
    if with_seal {
        if let Some(seal) = &chain.seal {
            g.seal_source(src, seal.iter().copied());
        }
    }
    let mut prev = None;
    for (i, ann) in chain.annotations.iter().enumerate() {
        let c = g.add_component(format!("C{i}"));
        g.set_rep(c, chain.rep_mask & (1 << (i % 8)) != 0);
        g.add_path(c, "in", "out", ann.clone());
        match prev {
            None => {
                g.connect_source(src, c, "in");
            }
            Some(p) => {
                g.connect(p, "out", c, "in");
            }
        }
        prev = Some(c);
    }
    let sink = g.add_sink("sink");
    g.connect_sink(prev.expect("non-empty"), "out", sink);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analysis never fails on well-formed graphs and always produces a
    /// publishable (non-internal) sink label.
    #[test]
    fn analysis_total_and_labels_publishable(chain in arb_chain()) {
        let g = build(&chain, true);
        let out = Analyzer::new(&g).run().expect("analysis must succeed");
        let sink = g.sink_by_name("sink").unwrap();
        let label = out.sink_label(sink).expect("sink labeled");
        prop_assert!(!label.is_internal(), "published label must not be internal: {label}");
    }

    /// Determinism: analyzing the same graph twice gives identical labels.
    #[test]
    fn analysis_is_deterministic(chain in arb_chain()) {
        let g = build(&chain, true);
        let a = Analyzer::new(&g).run().unwrap();
        let b = Analyzer::new(&g).run().unwrap();
        let sink = g.sink_by_name("sink").unwrap();
        prop_assert_eq!(a.sink_label(sink), b.sink_label(sink));
    }

    /// Monotonicity of seals: adding a seal annotation never makes the
    /// verdict *worse* (sealing can only rule out anomalies).
    #[test]
    fn seals_never_hurt(chain in arb_chain()) {
        let sealed = build(&chain, true);
        let unsealed = build(&chain, false);
        let sink_s = sealed.sink_by_name("sink").unwrap();
        let sink_u = unsealed.sink_by_name("sink").unwrap();
        let ls = Analyzer::new(&sealed).run().unwrap().sink_label(sink_s).cloned().unwrap();
        let lu = Analyzer::new(&unsealed).run().unwrap().sink_label(sink_u).cloned().unwrap();
        prop_assert!(
            ls.severity() <= lu.severity(),
            "seal worsened the label: sealed {ls} vs unsealed {lu}"
        );
    }

    /// Confluent-only dataflows never require coordination (CALM).
    #[test]
    fn confluent_chains_are_calm(n in 1usize..6, writes in any::<u8>()) {
        let chain = RandomChain {
            annotations: (0..n)
                .map(|i| if writes & (1 << (i % 8)) != 0 {
                    ComponentAnnotation::cw()
                } else {
                    ComponentAnnotation::cr()
                })
                .collect(),
            seal: None,
            rep_mask: writes,
        };
        let g = build(&chain, false);
        let out = Analyzer::new(&g).run().unwrap();
        prop_assert!(!out.requires_coordination());
        prop_assert!(out.program_label().severity() <= Severity::ASYNC);
    }

    /// Plan soundness: after deploying the synthesized plan (with *static*
    /// ordering), no sink remains anomalous.
    #[test]
    fn plans_restore_consistency(chain in arb_chain()) {
        let g = build(&chain, true);
        let plan = plan_for(&g, false).unwrap();
        let residual = residual_labels(&g, &plan).unwrap();
        for (name, label) in residual {
            prop_assert!(!label.is_anomalous(), "sink {name} still {label} after plan");
        }
    }

    /// Plan necessity: a graph whose analysis is clean gets an empty plan.
    #[test]
    fn clean_graphs_get_empty_plans(chain in arb_chain()) {
        let g = build(&chain, true);
        let out = Analyzer::new(&g).run().unwrap();
        let plan = plan_for(&g, false).unwrap();
        if !out.requires_coordination() {
            prop_assert!(
                !plan.needs_ordering(),
                "consistent graph must not be ordered"
            );
        }
    }

    /// Replication monotonicity: marking components replicated never
    /// *lowers* severity.
    #[test]
    fn replication_never_helps(chain in arb_chain()) {
        let base = build(&RandomChain { rep_mask: 0, ..chain.clone() }, true);
        let replicated = build(&RandomChain { rep_mask: 0xFF, ..chain }, true);
        let lb = Analyzer::new(&base).run().unwrap().program_label();
        let lr = Analyzer::new(&replicated).run().unwrap().program_label();
        prop_assert!(lb.severity() <= lr.severity(), "rep lowered severity: {lb} vs {lr}");
    }
}

/// Severity lattice laws for the full label set (exhaustive, not random).
#[test]
fn label_join_is_a_semilattice() {
    let labels = [
        Label::Taint,
        Label::nd_read(["a"]),
        Label::seal(["a"]),
        Label::Async,
        Label::Run,
        Label::Inst,
        Label::Diverge,
    ];
    for a in &labels {
        assert_eq!(
            a.clone().join(a.clone()).severity(),
            a.severity(),
            "idempotent"
        );
        for b in &labels {
            let ab = a.clone().join(b.clone());
            let ba = b.clone().join(a.clone());
            assert_eq!(ab.severity(), ba.severity(), "commutative severity");
            for c in &labels {
                let l = a.clone().join(b.clone()).join(c.clone());
                let r = a.clone().join(b.clone().join(c.clone()));
                assert_eq!(l.severity(), r.severity(), "associative severity");
            }
        }
    }
}
