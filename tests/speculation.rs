//! The time-warp proof obligations (the parallel backend's speculation
//! mode, end to end):
//!
//! * **Digest identity** — the speculative auto-coordinated ad-report run
//!   is bit-identical to the blocking auto-coordinated run *and* to the
//!   discrete-event simulator, across `{1,2,4,8}` workers × `{stealing,
//!   static}` schedulers, under the at-least-once fault RNG. Optimism
//!   changes when answers are computed, never what they are.
//! * **Rollback reality** — a forced straggler violation actually rolls a
//!   consumer back (counters move) and the replayed output equals the
//!   blocking gate's.
//! * **CALM dividend** — confluent components (the sealed wordcount)
//!   record *zero* speculations and *zero* rollbacks across seeds and
//!   worker counts: the analysis proves they never wait, so time-warp has
//!   nothing to speculate past.
//! * **Composite keys** — sealing the ad-report click stream on
//!   `(campaign, window)` gates each composite partition independently
//!   through the full rewrite pass.

use blazes::apps::autocoord::{response_digests, run_ad_auto, run_wordcount_auto};
use blazes::apps::workload::{CampaignPlacement, ClickWorkload, TweetWorkload};
use blazes::apps::{adreport::AdScenario, queries::ReportQuery, wordcount::WordcountScenario};
use blazes::autocoord::{AutoCoordRules, SealBinding};
use blazes::coord::registry::ProducerRegistry;
use blazes::core::keys::KeySet;
use blazes::core::placement::{CoordDirective, CoordinationSpec};
use blazes::dataflow::backend::{BackendSpec, ExecutorBuilder, PortId, RewritingBuilder};
use blazes::dataflow::channel::ChannelConfig;
use blazes::dataflow::component::{Component, Context, FnComponent};
use blazes::dataflow::message::{Message, SealKey};
use blazes::dataflow::par::{ParBuilder, ParStats, ParTuning};
use blazes::dataflow::sinks::CollectorSink;
use blazes::dataflow::value::{Tuple, Value};
use std::sync::Arc;

/// Every configuration the determinism claim must hold across.
fn configs() -> Vec<(usize, ParTuning)> {
    let mut out = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        for stealing in [true, false] {
            out.push((
                workers,
                ParTuning {
                    stealing,
                    ..ParTuning::default()
                },
            ));
        }
    }
    out
}

fn scenario(seed: u64) -> AdScenario {
    AdScenario {
        workload: ClickWorkload {
            ad_servers: 3,
            entries_per_server: 60,
            batch_size: 20,
            sleep_between_batches: 50_000,
            entry_interval: 200,
            campaigns: 6,
            ads_per_campaign: 4,
            placement: CampaignPlacement::Spread,
            seed: 5,
        },
        query: ReportQuery::Campaign,
        replicas: 3,
        requests: 8,
        tick_every: 1,
        // The at-least-once fault model: clicks replay on the wire.
        click_duplicates: 0.2,
        requests_via_analyst: true,
        seed,
        ..AdScenario::default()
    }
}

/// The acceptance bar: speculative digests bit-identical to blocking
/// autocoord and to the simulator, across every worker count × scheduler,
/// under the seeded fault RNG.
#[test]
fn speculative_adreport_matches_blocking_and_simulator() {
    let sc = scenario(3);
    let (sim_res, sim_report) = run_ad_auto(&sc, &BackendSpec::Sim);
    assert!(matches!(
        sim_report.spec.directive_for("Report"),
        Some(CoordDirective::Seal { .. })
    ));
    let reference = response_digests(&sim_res.responses);
    assert!(reference.iter().any(|d| !d.is_empty()));

    let mut speculated_anywhere = false;
    for (workers, tuning) in configs() {
        let (blocking, _) = run_ad_auto(&sc, &BackendSpec::Par { workers, tuning });
        assert_eq!(
            response_digests(&blocking.responses),
            reference,
            "blocking digest diverged at {workers} workers, {tuning:?}"
        );

        let (spec_res, _) = run_ad_auto(
            &sc,
            &BackendSpec::Par {
                workers,
                tuning: tuning.with_speculation(true),
            },
        );
        for s in &spec_res.series {
            assert!(
                s.total() >= spec_res.expected_records,
                "all records processed ({workers} workers, {tuning:?})"
            );
        }
        assert_eq!(
            response_digests(&spec_res.responses),
            reference,
            "speculative digest diverged at {workers} workers, {tuning:?}"
        );
        let par_stats = spec_res.stats.as_par().expect("parallel run");
        speculated_anywhere |= par_stats.total_speculations() > 0;
        assert_eq!(
            par_stats.epochs_committed + par_stats.epochs_aborted,
            par_stats.epochs_opened,
            "every epoch resolves ({workers} workers, {tuning:?})"
        );
    }
    assert!(
        speculated_anywhere,
        "the speculative runs never actually speculated — the mode is inert"
    );
}

/// A sink with a checkpoint and a component name the rewrite pass can
/// flag.
struct NamedSink {
    inner: CollectorSink,
    name: String,
}

impl Component for NamedSink {
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context) {
        self.inner.on_message(port, msg, ctx);
    }

    fn snapshot(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.inner.snapshot()
    }

    fn restore(&mut self, snapshot: Box<dyn std::any::Any + Send>) {
        self.inner.restore(snapshot);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

fn spec_seal(component: &str, key: KeySet) -> CoordinationSpec {
    CoordinationSpec {
        directives: vec![CoordDirective::Seal {
            component: component.to_string(),
            input: "click".to_string(),
            key,
        }],
    }
}

fn click(campaign: i64, n: i64) -> Message {
    Message::Data(Tuple::new([
        Value::Int(n),
        Value::Int(campaign),
        Value::Int(0),
    ]))
}

fn seal(campaign: i64, producer: i64) -> Message {
    Message::Seal(SealKey::new([
        ("campaign", Value::Int(campaign)),
        ("producer", Value::Int(producer)),
    ]))
}

/// Assemble producers → [gate] → flagged sink and drive the deterministic
/// violation sequence: record, query (the fast producer), then straggler
/// record, seal (the slow one). Two producers so that, on one worker, the
/// sink's activation interleaves between the speculation and the
/// violation — the gate speculates past the fast producer's burst, the
/// sink checkpoints and applies it, and only then does the straggler
/// arrive and force the rollback.
fn violation_run(speculation: bool) -> (CollectorSink, ParStats) {
    let binding = SealBinding::new(ProducerRegistry::all_produce(0..1), 1, 3)
        .with_query_partition(Arc::new(|t: &Tuple| t.get(0).cloned()));
    let rules = AutoCoordRules::new(&spec_seal("Report", KeySet::single("campaign")))
        .bind_seal("Report", binding)
        .with_speculation(speculation);
    let mut par = ParBuilder::new(7)
        .with_workers(1)
        .with_speculation(speculation);
    let mut rb = RewritingBuilder::new(&mut par, rules);
    let sink = CollectorSink::new();
    let consumer = rb.add_instance(Box::new(NamedSink {
        inner: sink.clone(),
        name: "Report[0]".to_string(),
    }));
    let fast = rb.add_instance(Box::new(FnComponent::new(
        "fast-producer",
        |_, msg, ctx: &mut Context| ctx.emit(0, msg),
    )));
    let slow = rb.add_instance(Box::new(FnComponent::new(
        "straggler-producer",
        |_, msg, ctx: &mut Context| ctx.emit(0, msg),
    )));
    rb.connect_with(
        fast,
        PortId(0),
        consumer,
        PortId(0),
        ChannelConfig::instant(),
    );
    rb.connect_with(
        slow,
        PortId(0),
        consumer,
        PortId(0),
        ChannelConfig::instant(),
    );
    rb.inject(0, fast, PortId(0), click(1, 10));
    rb.inject(1, fast, PortId(0), Message::data([1i64])); // query for campaign 1
    rb.inject(2, slow, PortId(0), click(1, 11)); // the straggler: violates the answer
    rb.inject(3, slow, PortId(0), seal(1, 0));
    let (_, stats) = rb.finish();
    assert_eq!(stats.injected_operators, 1);
    (sink, par.build().run())
}

/// The rollback machinery, observably live: the straggler aborts the
/// session, the consumer restores its checkpoint, and the blocking replay
/// leaves exactly what the blocking gate produces.
#[test]
fn forced_violation_rolls_back_and_replays_blocking_output() {
    let (blocking_sink, blocking_stats) = violation_run(false);
    assert_eq!(blocking_stats.total_rollbacks(), 0);

    let (spec_sink, spec_stats) = violation_run(true);
    assert!(
        spec_stats.total_speculations() >= 1,
        "the consumer must have checkpointed: {spec_stats:?}"
    );
    assert!(
        spec_stats.total_rollbacks() >= 1,
        "the straggler must have forced a rollback: {spec_stats:?}"
    );
    assert!(spec_stats.epochs_aborted >= 1, "{spec_stats:?}");
    assert_eq!(
        spec_sink.messages(),
        blocking_sink.messages(),
        "post-rollback replay must equal the blocking protocol"
    );
    // The blocking shape itself: both records, the punctuation, the query.
    let msgs = blocking_sink.messages();
    assert_eq!(msgs.len(), 4);
    assert!(matches!(msgs[2], Message::Seal(_)));
}

/// A flagged sink that refuses to checkpoint: its speculative deliveries
/// are deferred, so a never-resolving epoch wedges the run outright —
/// the harder half of the never-sealed problem.
struct NoSnapSink {
    inner: CollectorSink,
    name: String,
}

impl Component for NoSnapSink {
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context) {
        self.inner.on_message(port, msg, ctx);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Assemble producer → [gate] → sink where campaign 1 seals but campaign
/// 2 never does, leaving the speculative gate's session open forever.
fn never_sealed_run(speculation: bool, checkpointable: bool) -> (CollectorSink, ParStats) {
    let binding = SealBinding::new(ProducerRegistry::all_produce(0..1), 1, 3)
        .with_query_partition(Arc::new(|t: &Tuple| t.get(0).cloned()));
    let rules = AutoCoordRules::new(&spec_seal("Report", KeySet::single("campaign")))
        .bind_seal("Report", binding)
        .with_speculation(speculation);
    let mut par = ParBuilder::new(13)
        .with_workers(2)
        .with_speculation(speculation);
    let mut rb = RewritingBuilder::new(&mut par, rules);
    let sink = CollectorSink::new();
    let consumer: Box<dyn Component> = if checkpointable {
        Box::new(NamedSink {
            inner: sink.clone(),
            name: "Report[0]".to_string(),
        })
    } else {
        Box::new(NoSnapSink {
            inner: sink.clone(),
            name: "Report[0]".to_string(),
        })
    };
    let consumer = rb.add_instance(consumer);
    let p = rb.add_instance(Box::new(FnComponent::new(
        "producer",
        |_, msg, ctx: &mut Context| ctx.emit(0, msg),
    )));
    rb.connect_with(p, PortId(0), consumer, PortId(0), ChannelConfig::instant());
    rb.inject(0, p, PortId(0), click(1, 10));
    rb.inject(1, p, PortId(0), click(2, 20));
    rb.inject(2, p, PortId(0), Message::data([2i64])); // query: campaign 2
    rb.inject(3, p, PortId(0), seal(1, 0)); // campaign 2 never seals
    let (_, stats) = rb.finish();
    assert_eq!(stats.injected_operators, 1);
    (sink, par.build().run())
}

/// The never-sealed-session bugfix, end to end: a session held open by a
/// partition whose seal never arrives is resolved at run end by the
/// drain rescue — the run terminates (it used to wedge when the consumer
/// could not checkpoint, or end with speculative state applied when it
/// could), and the delivered output equals the blocking protocol's:
/// sealed partitions released, unsealed ones withheld.
#[test]
fn never_sealed_session_resolves_at_run_end_to_blocking_output() {
    for checkpointable in [true, false] {
        let (blocking_sink, blocking_stats) = never_sealed_run(false, checkpointable);
        assert_eq!(blocking_stats.rescue_passes, 0);
        let msgs = blocking_sink.messages();
        // Campaign 1's record and punctuation; campaign 2's record and
        // the query stay withheld behind the missing vote.
        assert_eq!(msgs.len(), 2, "checkpointable={checkpointable}: {msgs:?}");
        assert!(matches!(msgs[1], Message::Seal(_)));

        let (spec_sink, spec_stats) = never_sealed_run(true, checkpointable);
        assert!(
            spec_stats.rescue_passes >= 1,
            "the wedged session must need a rescue (checkpointable={checkpointable}): \
             {spec_stats:?}"
        );
        assert_eq!(
            spec_stats.epochs_committed + spec_stats.epochs_aborted,
            spec_stats.epochs_opened,
            "every epoch resolves at run end (checkpointable={checkpointable})"
        );
        assert!(spec_stats.epochs_aborted >= 1, "{spec_stats:?}");
        assert_eq!(
            spec_sink.messages(),
            blocking_sink.messages(),
            "run-end resolution must equal the blocking protocol \
             (checkpointable={checkpointable})"
        );
    }
}

/// The CALM property test: confluent components never speculate, never
/// roll back — under any seed or worker count. Coordination (and therefore
/// speculation) is priced per component by the analysis, and confluent
/// ones get it for free.
#[test]
fn confluent_wordcount_never_rolls_back() {
    for seed in [9u64, 29, 57] {
        let sc = WordcountScenario {
            workers: 3,
            workload: TweetWorkload {
                vocabulary: 50,
                batches: 5,
                tweets_per_batch: 10,
                ..TweetWorkload::default()
            },
            seed,
            ..WordcountScenario::default()
        };
        let mut counts = Vec::new();
        for workers in [1usize, 2, 4] {
            let (res, outcome) = run_wordcount_auto(
                &sc,
                true,
                &BackendSpec::Par {
                    workers,
                    tuning: ParTuning::default().with_speculation(true),
                },
            );
            assert!(outcome.is_rewrite_free(), "{outcome:?}");
            let stats = res.stats.as_par().expect("parallel run");
            assert_eq!(
                stats.total_speculations(),
                0,
                "confluent components must not speculate (seed {seed}, {workers} workers)"
            );
            assert_eq!(
                stats.total_rollbacks(),
                0,
                "confluent components must not roll back (seed {seed}, {workers} workers)"
            );
            assert_eq!(stats.epochs_opened, 0, "no epochs without gates");
            counts.push(res.counts());
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "counts identical across worker counts (seed {seed})"
        );
    }
}

/// Composite seal keys through the full rewrite pass: ad-report clicks
/// sealed on `(campaign, window)`. Sealing one window must release only
/// that window's composite partition.
#[test]
fn adreport_seals_on_campaign_and_window_composite() {
    let multi_click = |campaign: i64, window: i64, n: i64| {
        Message::Data(Tuple::new([
            Value::Int(n),
            Value::Int(campaign),
            Value::Int(window),
        ]))
    };
    let multi_seal = |campaign: i64, window: i64| {
        Message::Seal(SealKey::new([
            ("campaign", Value::Int(campaign)),
            ("window", Value::Int(window)),
            ("producer", Value::Int(0)),
        ]))
    };
    // Columns pair with the key's canonical attribute order: (campaign,
    // window) live in click columns 1 and 2.
    let binding =
        SealBinding::new(ProducerRegistry::all_produce(0..1), 1, 3).with_key_columns(vec![1, 2]);
    let rules = AutoCoordRules::new(&spec_seal(
        "Report",
        KeySet::from_attrs(["campaign", "window"]),
    ))
    .bind_seal("Report", binding);

    let mut par = ParBuilder::new(11).with_workers(1);
    let mut rb = RewritingBuilder::new(&mut par, rules);
    let sink = CollectorSink::new();
    let consumer = rb.add_instance(Box::new(NamedSink {
        inner: sink.clone(),
        name: "Report[0]".to_string(),
    }));
    let p = rb.add_instance(Box::new(FnComponent::new(
        "producer",
        |_, msg, ctx: &mut Context| ctx.emit(0, msg),
    )));
    rb.connect_with(p, PortId(0), consumer, PortId(0), ChannelConfig::instant());
    rb.inject(0, p, PortId(0), multi_click(1, 0, 10));
    rb.inject(1, p, PortId(0), multi_click(1, 1, 11));
    rb.inject(2, p, PortId(0), multi_seal(1, 0)); // seals (campaign 1, window 0) only
    let (_, stats) = rb.finish();
    assert_eq!(stats.injected_operators, 1);
    let _ = par.build().run();

    let msgs = sink.messages();
    assert_eq!(
        msgs.len(),
        2,
        "window 0's record and punctuation only: {msgs:?}"
    );
    assert_eq!(msgs[0], multi_click(1, 0, 10));
    assert!(matches!(msgs[1], Message::Seal(_)));
}
