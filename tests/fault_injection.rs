//! Fault-injection tests: the at-least-once behaviors that motivate the
//! paper's Section III anomalies, exercised on the live runtime.

use blazes::apps::wordcount::{run_wordcount, WordcountScenario};
use blazes::apps::workload::TweetWorkload;
use blazes::dataflow::backend::PortId;
use blazes::dataflow::channel::ChannelConfig;
use blazes::dataflow::component::{Component, Context, FnComponent};
use blazes::dataflow::message::Message;
use blazes::dataflow::sim::SimBuilder;
use blazes::dataflow::sinks::CollectorSink;
use blazes::dataflow::value::Value;

fn echo() -> Box<dyn Component> {
    Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
        ctx.emit(0, msg)
    }))
}

/// Duplicate delivery (Storm-style replay) inflates stateful counts when no
/// coordination or deduplication is in place — the motivating anomaly of
/// Section I-B ("it is up to the programmer to ensure that accurate counts
/// are committed to the store despite at-least-once delivery").
#[test]
fn duplication_overcounts_without_coordination() {
    let n = 200usize;
    let mut b = SimBuilder::new(42);
    let e = b.add_instance(echo());
    let sink = CollectorSink::new();
    let s = b.add_instance(Box::new(sink.clone()));
    b.connect_with(
        e,
        PortId(0),
        s,
        PortId(0),
        ChannelConfig::lan().with_duplicates(0.3),
    );
    for i in 0..n {
        b.inject(0, e, PortId(0), Message::data([i as i64]));
    }
    let stats = b.build().run(None);
    assert!(stats.duplicates > 0, "duplication must have occurred");
    assert!(
        sink.len() > n,
        "at-least-once delivery inflates the count: {} > {n}",
        sink.len()
    );
    // The *set* of distinct messages is still exact — which is why
    // confluent (set-semantics) components tolerate replay.
    assert_eq!(sink.message_set().len(), n);
}

/// Message loss with retransmission delays but never drops content.
#[test]
fn loss_is_masked_by_retransmission() {
    let n = 150usize;
    let mut b = SimBuilder::new(7);
    let e = b.add_instance(echo());
    let sink = CollectorSink::new();
    let s = b.add_instance(Box::new(sink.clone()));
    b.connect_with(
        e,
        PortId(0),
        s,
        PortId(0),
        ChannelConfig::lan().with_loss(0.4),
    );
    for i in 0..n {
        b.inject(0, e, PortId(0), Message::data([i as i64]));
    }
    let stats = b.build().run(None);
    assert!(stats.retransmits > 0);
    assert_eq!(sink.len(), n, "every message eventually delivered");
    // FIFO holds even across retransmissions (head-of-line blocking).
    let expected: Vec<Message> = (0..n).map(|i| Message::data([i as i64])).collect();
    assert_eq!(sink.messages(), expected);
}

/// The wordcount's batch machinery survives duplicate-prone channels: the
/// engine deduplicates seal votes by producer id, so every batch still
/// completes exactly once and the run terminates.
#[test]
fn batch_completion_survives_duplication() {
    let mut sc = WordcountScenario {
        workers: 3,
        workload: TweetWorkload {
            batches: 4,
            tweets_per_batch: 8,
            vocabulary: 30,
            ..TweetWorkload::default()
        },
        seed: 5,
        ..WordcountScenario::default()
    };
    sc.transactional = false;
    // Run a clean reference first.
    let clean = run_wordcount(&sc);
    let clean_counts = clean.counts();

    // Now the same scenario over duplicating channels. (We rebuild the
    // topology by hand since the scenario fixes channels; the point is the
    // engine-level dedup of seals.)
    use blazes::apps::wordcount::{CommitBolt, CountBolt, SplitterBolt};
    use blazes::dataflow::sim::Time;
    use blazes::dataflow::value::Value;
    use blazes::storm::grouping::Grouping;
    use blazes::storm::runtime::batch_seal;
    use blazes::storm::topology::TopologyBuilder;

    let mut t = TopologyBuilder::new("wc-dup", 5);
    t.set_default_channel(ChannelConfig::lan().with_duplicates(0.25));
    let spout = t.add_spout("tweets", sc.spouts);
    for inst in 0..sc.spouts {
        let mut sched: Vec<(Time, Message)> = Vec::new();
        let mut last_batch = -1i64;
        let mut last_time: Time = 0;
        for (at, tweet) in sc.workload.generate(inst) {
            let batch = tweet.get(1).and_then(Value::as_int).unwrap();
            if batch != last_batch && last_batch >= 0 {
                sched.push((last_time + 1, batch_seal(last_batch)));
            }
            last_batch = batch;
            last_time = at;
            sched.push((at, Message::Data(tweet)));
        }
        if last_batch >= 0 {
            sched.push((last_time + 1, batch_seal(last_batch)));
        }
        t.spout_schedule(spout, inst, sched);
    }
    let splitter = t.add_bolt(
        "Splitter",
        3,
        || Box::new(SplitterBolt),
        vec![(spout, Grouping::Shuffle)],
    );
    let count = t.add_bolt(
        "Count",
        3,
        || Box::new(CountBolt::default()),
        vec![(splitter, Grouping::Fields(vec![0]))],
    );
    let commit = t.add_bolt(
        "Commit",
        2,
        || Box::new(CommitBolt::default()),
        vec![(count, Grouping::Shuffle)],
    );
    let committed = CollectorSink::new();
    t.add_collector_sink("store", committed.clone(), commit);
    let stats = t.build().run(None);

    assert!(stats.duplicates > 0, "duplication occurred");
    // Every (word, batch) key from the clean run still commits...
    let dup_counts: std::collections::BTreeMap<(String, i64), i64> = committed
        .messages()
        .iter()
        .filter_map(Message::as_data)
        .filter_map(|t| {
            Some((
                (
                    t.get(0).and_then(Value::as_str)?.to_string(),
                    t.get(1).and_then(Value::as_int)?,
                ),
                t.get(2).and_then(Value::as_int)?,
            ))
        })
        .collect();
    for key in clean_counts.keys() {
        assert!(
            dup_counts.contains_key(key),
            "batch content committed despite duplicates"
        );
    }
    // ...but counts are inflated — the accuracy anomaly replay causes when
    // the topology is not transactional and tuples are not deduplicated.
    let clean_total: i64 = clean_counts.values().sum();
    let dup_total: i64 = dup_counts.values().sum();
    assert!(
        dup_total > clean_total,
        "duplicates must inflate counts: {dup_total} vs {clean_total}"
    );
}

/// Fault injection on the *parallel* backend has reproducible schedules:
/// fault draws come from per-wire seeded RNG streams, so the k-th send on
/// a wire sees the same loss/duplicate decisions whatever the worker
/// count, the scheduler, or the thread interleaving. In this single-input
/// chain the producer's emission order is deterministic too, so entire
/// runs (delivered sequences included) reproduce exactly; at fan-in
/// components only the per-wire decision sequence — not the record each
/// decision lands on — is interleaving-independent.
#[test]
fn parallel_fault_schedules_are_reproducible_across_schedulers() {
    use blazes::dataflow::par::{ParBuilder, ParTuning};

    let run = |workers: usize, tuning: ParTuning| {
        let mut b = ParBuilder::new(77)
            .with_workers(workers)
            .with_tuning(tuning)
            .unwrap();
        let src = b.add_instance(echo());
        let relay = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(
            src,
            PortId(0),
            relay,
            PortId(0),
            ChannelConfig::lan().with_loss(0.25).with_duplicates(0.25),
        );
        b.connect_with(
            relay,
            PortId(0),
            s,
            PortId(0),
            ChannelConfig::lan().with_duplicates(0.4),
        );
        for i in 0..400i64 {
            b.inject(0, src, PortId(0), Message::data([i]));
        }
        let stats = b.build().run();
        (stats.duplicates, stats.retransmits, sink.messages())
    };

    let baseline = run(1, ParTuning::default());
    assert!(baseline.0 > 0, "duplicates must fire");
    assert!(baseline.1 > 0, "losses must fire");
    for workers in [2usize, 4] {
        for tuning in [
            ParTuning::default(),
            ParTuning {
                stealing: false,
                ..ParTuning::default()
            },
            ParTuning {
                channel_capacity: Some(4),
                batch_size: 2,
                ..ParTuning::default()
            },
        ] {
            assert_eq!(
                run(workers, tuning),
                baseline,
                "fault schedule diverged: {workers} workers, {tuning:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Coordination primitives under faulty control channels: today's
// differential suite exercises SealManager end-to-end; these cover the
// other two substrates — the Sequencer (ordering) and the
// CommitCoordinator barrier (transactional commits) — under duplicated
// and dropped (retransmitted) control messages from the same per-channel
// fault RNG.
// ---------------------------------------------------------------------

/// Total order survives at-least-once delivery *into* the sequencer: the
/// inputs arrive duplicated and retransmission-delayed, yet every replica
/// downstream of the ordered fan-out observes the exact same sequence.
#[test]
fn sequencer_total_order_survives_faulty_inputs() {
    use blazes::coord::Sequencer;

    let n = 120usize;
    let mut b = SimBuilder::new(31);
    let client = b.add_instance(echo());
    let seq = b.add_instance(Box::new(Sequencer::new()));
    let r1 = CollectorSink::new();
    let r2 = CollectorSink::new();
    let i1 = b.add_instance(Box::new(r1.clone()));
    let i2 = b.add_instance(Box::new(r2.clone()));
    // Duplicates AND losses (retransmitted, hence delayed) on the way in.
    b.connect_with(
        client,
        PortId(0),
        seq,
        PortId(0),
        ChannelConfig::lan()
            .with_jitter(8_000)
            .with_duplicates(0.3)
            .with_loss(0.3),
    );
    let ordered = b.add_channel(ChannelConfig::ordered(1_000));
    b.connect(seq, PortId(0), i1, PortId(0), ordered);
    b.connect(seq, PortId(0), i2, PortId(0), ordered);
    for i in 0..n {
        b.inject(i as u64 * 100, client, PortId(0), Message::data([i as i64]));
    }
    let stats = b.build().run(None);
    assert!(
        stats.duplicates > 0 && stats.retransmits > 0,
        "faults fired"
    );
    // Replicas agree on the order, duplicates and all.
    assert_eq!(r1.messages(), r2.messages());
    assert!(r1.len() > n, "duplicates pass through the sequencer");
    assert_eq!(r1.message_set().len(), n, "every distinct input delivered");
}

/// The same property on the threaded backend, where duplicates come from
/// the per-wire seeded fault RNG: whatever the scheduler, both replicas
/// see one total order.
#[test]
fn parallel_sequencer_replicas_agree_under_duplicates() {
    use blazes::coord::Sequencer;
    use blazes::dataflow::par::ParBuilder;

    for stealing in [true, false] {
        let mut b = ParBuilder::new(37).with_workers(4).with_stealing(stealing);
        let seq = b.add_instance(Box::new(Sequencer::new()));
        let r1 = CollectorSink::new();
        let r2 = CollectorSink::new();
        let i1 = b.add_instance(Box::new(r1.clone()));
        let i2 = b.add_instance(Box::new(r2.clone()));
        let ordered = b.add_channel(ChannelConfig::ordered(0));
        b.connect(seq, PortId(0), i1, PortId(0), ordered);
        b.connect(seq, PortId(0), i2, PortId(0), ordered);
        for k in 0..3 {
            let client = b.add_instance(echo());
            b.connect_with(
                client,
                PortId(0),
                seq,
                PortId(0),
                ChannelConfig::lan().with_duplicates(0.35).with_loss(0.2),
            );
            for i in 0..80i64 {
                b.inject(0, client, PortId(0), Message::data([k * 1_000 + i]));
            }
        }
        let stats = b.build().run();
        assert!(
            stats.duplicates > 0,
            "duplicates fired (stealing={stealing})"
        );
        assert_eq!(
            r1.messages(),
            r2.messages(),
            "replicas diverged under stealing={stealing}"
        );
        assert_eq!(r1.message_set().len(), 240, "every distinct input arrived");
    }
}

/// The commit barrier under faulty control channels: readiness
/// announcements arrive duplicated and retransmission-delayed, and the
/// grant stream itself replays — grants must stay strictly batch-ordered
/// and each batch must be granted exactly once by the coordinator.
#[test]
fn commit_coordinator_survives_faulty_control_messages() {
    use blazes::coord::CommitCoordinator;

    let committers = 2usize;
    let batches = 12i64;
    let mut b = SimBuilder::new(47);
    let coord = b.add_instance(Box::new(CommitCoordinator::new(committers, 0)));
    let grants = CollectorSink::new();
    let g = b.add_instance(Box::new(grants.clone()));
    // The grant stream replays too (at-least-once grant delivery) on the
    // ordered link the engine uses for grants; replayed copies may still
    // trail the stream position slightly.
    b.connect_with(
        coord,
        PortId(0),
        g,
        PortId(0),
        ChannelConfig::ordered(1_000).with_duplicates(0.5),
    );
    for c in 0..committers {
        let committer = b.add_instance(echo());
        b.connect_with(
            committer,
            PortId(0),
            coord,
            PortId(0),
            ChannelConfig::lan()
                .with_jitter(20_000)
                .with_duplicates(0.4)
                .with_loss(0.3),
        );
        // Announce readiness out of batch order (descending), duplicated
        // by the channel on top.
        for batch in (0..batches).rev() {
            b.inject(
                (batches - batch) as u64 * 50,
                committer,
                PortId(0),
                Message::data([batch, c as i64]),
            );
        }
    }
    let stats = b.build().run(None);
    assert!(
        stats.duplicates > 0 && stats.retransmits > 0,
        "faults fired"
    );

    let granted: Vec<i64> = grants
        .messages()
        .iter()
        .filter_map(|m| m.as_data().and_then(|t| t.get(0)).and_then(Value::as_int))
        .collect();
    assert!(
        granted.len() > batches as usize,
        "replayed grants must be visible: {granted:?}"
    );
    // An idempotent committer acts on first occurrences only (exactly
    // what `BoltAdapter::on_grant` does); that deduplicated sequence must
    // be the strict batch order, each batch granted exactly once.
    let mut seen = std::collections::BTreeSet::new();
    let first_occurrences: Vec<i64> = granted
        .iter()
        .copied()
        .filter(|b_| seen.insert(*b_))
        .collect();
    assert_eq!(
        first_occurrences,
        (0..batches).collect::<Vec<_>>(),
        "deduplicated grant order must be the strict batch order"
    );
}

/// End-to-end barrier test: a *transactional* wordcount over duplicating
/// channels. Readiness, grants and seals all replay, yet commits stay in
/// strict batch order and every (word, batch) group commits exactly the
/// clean run's content keys.
#[test]
fn transactional_wordcount_survives_duplicating_channels() {
    use blazes::apps::wordcount::{run_wordcount, WordcountScenario};
    use blazes::apps::workload::TweetWorkload;
    use blazes::storm::topology::TransactionalConfig;

    let sc = WordcountScenario {
        workers: 3,
        transactional: true,
        workload: TweetWorkload {
            batches: 4,
            tweets_per_batch: 8,
            vocabulary: 30,
            ..TweetWorkload::default()
        },
        seed: 15,
        ..WordcountScenario::default()
    };
    let clean = run_wordcount(&sc);

    // The same transactional topology, with the committer→coordinator
    // control wiring (readiness announcements) over a duplicating AND
    // lossy channel.
    use blazes::apps::wordcount::wordcount_topology;
    let (mut t, committed) = wordcount_topology(&sc);
    let commit = t
        .describe()
        .nodes
        .iter()
        .position(|n| n.name == "Commit")
        .map(blazes::storm::topology::NodeHandle)
        .expect("wordcount topology has a Commit bolt");
    t.make_transactional(
        commit,
        TransactionalConfig {
            channel: ChannelConfig::lan().with_duplicates(0.3).with_loss(0.2),
            ..TransactionalConfig::default()
        },
    );
    let stats = t.build().run(None);
    assert!(stats.duplicates > 0, "duplicates fired");

    let mut max_batch = i64::MIN;
    let mut keys = std::collections::BTreeSet::new();
    for m in committed.messages() {
        let Some(tu) = m.as_data() else { continue };
        let b = tu.get(1).and_then(Value::as_int).unwrap();
        assert!(b >= max_batch, "commit order violated under duplication");
        max_batch = max_batch.max(b);
        keys.insert((tu.get(0).and_then(Value::as_str).unwrap().to_string(), b));
    }
    for key in clean.counts().keys() {
        assert!(keys.contains(key), "batch content committed: {key:?}");
    }
}
