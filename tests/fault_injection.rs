//! Fault-injection tests: the at-least-once behaviors that motivate the
//! paper's Section III anomalies, exercised on the live runtime.

use blazes::apps::wordcount::{run_wordcount, WordcountScenario};
use blazes::apps::workload::TweetWorkload;
use blazes::dataflow::channel::ChannelConfig;
use blazes::dataflow::component::{Component, Context, FnComponent};
use blazes::dataflow::message::Message;
use blazes::dataflow::sim::SimBuilder;
use blazes::dataflow::sinks::CollectorSink;

fn echo() -> Box<dyn Component> {
    Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
        ctx.emit(0, msg)
    }))
}

/// Duplicate delivery (Storm-style replay) inflates stateful counts when no
/// coordination or deduplication is in place — the motivating anomaly of
/// Section I-B ("it is up to the programmer to ensure that accurate counts
/// are committed to the store despite at-least-once delivery").
#[test]
fn duplication_overcounts_without_coordination() {
    let n = 200usize;
    let mut b = SimBuilder::new(42);
    let e = b.add_instance(echo());
    let sink = CollectorSink::new();
    let s = b.add_instance(Box::new(sink.clone()));
    b.connect_with(e, 0, s, 0, ChannelConfig::lan().with_duplicates(0.3));
    for i in 0..n {
        b.inject(0, e, 0, Message::data([i as i64]));
    }
    let stats = b.build().run(None);
    assert!(stats.duplicates > 0, "duplication must have occurred");
    assert!(
        sink.len() > n,
        "at-least-once delivery inflates the count: {} > {n}",
        sink.len()
    );
    // The *set* of distinct messages is still exact — which is why
    // confluent (set-semantics) components tolerate replay.
    assert_eq!(sink.message_set().len(), n);
}

/// Message loss with retransmission delays but never drops content.
#[test]
fn loss_is_masked_by_retransmission() {
    let n = 150usize;
    let mut b = SimBuilder::new(7);
    let e = b.add_instance(echo());
    let sink = CollectorSink::new();
    let s = b.add_instance(Box::new(sink.clone()));
    b.connect_with(e, 0, s, 0, ChannelConfig::lan().with_loss(0.4));
    for i in 0..n {
        b.inject(0, e, 0, Message::data([i as i64]));
    }
    let stats = b.build().run(None);
    assert!(stats.retransmits > 0);
    assert_eq!(sink.len(), n, "every message eventually delivered");
    // FIFO holds even across retransmissions (head-of-line blocking).
    let expected: Vec<Message> = (0..n).map(|i| Message::data([i as i64])).collect();
    assert_eq!(sink.messages(), expected);
}

/// The wordcount's batch machinery survives duplicate-prone channels: the
/// engine deduplicates seal votes by producer id, so every batch still
/// completes exactly once and the run terminates.
#[test]
fn batch_completion_survives_duplication() {
    let mut sc = WordcountScenario {
        workers: 3,
        workload: TweetWorkload {
            batches: 4,
            tweets_per_batch: 8,
            vocabulary: 30,
            ..TweetWorkload::default()
        },
        seed: 5,
        ..WordcountScenario::default()
    };
    sc.transactional = false;
    // Run a clean reference first.
    let clean = run_wordcount(&sc);
    let clean_counts = clean.counts();

    // Now the same scenario over duplicating channels. (We rebuild the
    // topology by hand since the scenario fixes channels; the point is the
    // engine-level dedup of seals.)
    use blazes::apps::wordcount::{CommitBolt, CountBolt, SplitterBolt};
    use blazes::dataflow::sim::Time;
    use blazes::dataflow::value::Value;
    use blazes::storm::grouping::Grouping;
    use blazes::storm::runtime::batch_seal;
    use blazes::storm::topology::TopologyBuilder;

    let mut t = TopologyBuilder::new("wc-dup", 5);
    t.set_default_channel(ChannelConfig::lan().with_duplicates(0.25));
    let spout = t.add_spout("tweets", sc.spouts);
    for inst in 0..sc.spouts {
        let mut sched: Vec<(Time, Message)> = Vec::new();
        let mut last_batch = -1i64;
        let mut last_time: Time = 0;
        for (at, tweet) in sc.workload.generate(inst) {
            let batch = tweet.get(1).and_then(Value::as_int).unwrap();
            if batch != last_batch && last_batch >= 0 {
                sched.push((last_time + 1, batch_seal(last_batch)));
            }
            last_batch = batch;
            last_time = at;
            sched.push((at, Message::Data(tweet)));
        }
        if last_batch >= 0 {
            sched.push((last_time + 1, batch_seal(last_batch)));
        }
        t.spout_schedule(spout, inst, sched);
    }
    let splitter = t.add_bolt(
        "Splitter",
        3,
        || Box::new(SplitterBolt),
        vec![(spout, Grouping::Shuffle)],
    );
    let count = t.add_bolt(
        "Count",
        3,
        || Box::new(CountBolt::default()),
        vec![(splitter, Grouping::Fields(vec![0]))],
    );
    let commit = t.add_bolt(
        "Commit",
        2,
        || Box::new(CommitBolt::default()),
        vec![(count, Grouping::Shuffle)],
    );
    let committed = CollectorSink::new();
    t.add_collector_sink("store", committed.clone(), commit);
    let stats = t.build().run(None);

    assert!(stats.duplicates > 0, "duplication occurred");
    // Every (word, batch) key from the clean run still commits...
    let dup_counts: std::collections::BTreeMap<(String, i64), i64> = committed
        .messages()
        .iter()
        .filter_map(Message::as_data)
        .filter_map(|t| {
            Some((
                (
                    t.get(0).and_then(Value::as_str)?.to_string(),
                    t.get(1).and_then(Value::as_int)?,
                ),
                t.get(2).and_then(Value::as_int)?,
            ))
        })
        .collect();
    for key in clean_counts.keys() {
        assert!(
            dup_counts.contains_key(key),
            "batch content committed despite duplicates"
        );
    }
    // ...but counts are inflated — the accuracy anomaly replay causes when
    // the topology is not transactional and tuples are not deduplicated.
    let clean_total: i64 = clean_counts.values().sum();
    let dup_total: i64 = dup_counts.values().sum();
    assert!(
        dup_total > clean_total,
        "duplicates must inflate counts: {dup_total} vs {clean_total}"
    );
}

/// Fault injection on the *parallel* backend has reproducible schedules:
/// fault draws come from per-wire seeded RNG streams, so the k-th send on
/// a wire sees the same loss/duplicate decisions whatever the worker
/// count, the scheduler, or the thread interleaving. In this single-input
/// chain the producer's emission order is deterministic too, so entire
/// runs (delivered sequences included) reproduce exactly; at fan-in
/// components only the per-wire decision sequence — not the record each
/// decision lands on — is interleaving-independent.
#[test]
fn parallel_fault_schedules_are_reproducible_across_schedulers() {
    use blazes::dataflow::par::{ParBuilder, ParTuning};

    let run = |workers: usize, tuning: ParTuning| {
        let mut b = ParBuilder::new(77)
            .with_workers(workers)
            .with_tuning(tuning)
            .unwrap();
        let src = b.add_instance(echo());
        let relay = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(
            src,
            0,
            relay,
            0,
            ChannelConfig::lan().with_loss(0.25).with_duplicates(0.25),
        );
        b.connect_with(relay, 0, s, 0, ChannelConfig::lan().with_duplicates(0.4));
        for i in 0..400i64 {
            b.inject(0, src, 0, Message::data([i]));
        }
        let stats = b.build().run();
        (stats.duplicates, stats.retransmits, sink.messages())
    };

    let baseline = run(1, ParTuning::default());
    assert!(baseline.0 > 0, "duplicates must fire");
    assert!(baseline.1 > 0, "losses must fire");
    for workers in [2usize, 4] {
        for tuning in [
            ParTuning::default(),
            ParTuning {
                stealing: false,
                ..ParTuning::default()
            },
            ParTuning {
                channel_capacity: Some(4),
                batch_size: 2,
                ..ParTuning::default()
            },
        ] {
            assert_eq!(
                run(workers, tuning),
                baseline,
                "fault schedule diverged: {workers} workers, {tuning:?}"
            );
        }
    }
}
