//! The observability differential: tracing must be **free when off** and
//! **invisible when on**.
//!
//! Off: a full auto-coordinated parallel run records zero events and
//! allocates zero rings — the proof counters stay at zero, pinning the
//! claim that every disabled probe costs one relaxed atomic load.
//!
//! On: the same run (and a real 2-process distributed run) produces
//! response digests bit-identical to the untraced reference, while the
//! merged Chrome export carries scheduler, seal and wire-frame spans from
//! every process.
//!
//! Everything lives in ONE `#[test]`: the obs hub is process-wide and
//! libtest runs tests as threads of one process, so the phases must run
//! sequentially — and the disabled-mode proof needs this binary to itself
//! (any sibling test that enabled tracing would allocate rings).

use blazes::apps::adreport::AdScenario;
use blazes::apps::autocoord::{response_digests, run_ad_auto};
use blazes::apps::dist::dist_registry;
use blazes::apps::queries::ReportQuery;
use blazes::apps::workload::{CampaignPlacement, ClickWorkload};
use blazes::dataflow::backend::BackendSpec;
use blazes::dataflow::dist::{libtest_worker_command, worker_main, DistSpec};
use blazes::dataflow::par::ParTuning;

/// Worker-process entry point: `run_dist` re-executes this test binary
/// selecting exactly this test. Inert in normal sweeps (no parent env).
#[test]
#[ignore = "dist worker entry: only runs when spawned by a dist parent"]
fn trace_worker_entry() {
    let _ = worker_main(&dist_registry());
}

fn scenario() -> AdScenario {
    AdScenario {
        workload: ClickWorkload {
            ad_servers: 3,
            entries_per_server: 40,
            batch_size: 20,
            sleep_between_batches: 50_000,
            entry_interval: 200,
            campaigns: 6,
            ads_per_campaign: 4,
            placement: CampaignPlacement::Spread,
            seed: 5,
        },
        query: ReportQuery::Campaign,
        replicas: 3,
        requests: 6,
        tick_every: 1,
        click_duplicates: 0.2,
        requests_via_analyst: true,
        seed: 3,
        ..AdScenario::default()
    }
}

#[test]
fn tracing_is_free_when_off_and_invisible_when_on() {
    let obs = blazes::obs::global();
    let sc = scenario();
    let par = BackendSpec::Par {
        workers: 2,
        tuning: ParTuning::default(),
    };

    // Phase 1 — disabled-mode proof: a full run through the parallel
    // scheduler, seal gates and sinks records nothing and allocates
    // nothing.
    assert!(!obs.enabled(), "tracing must start disabled");
    let (res, _) = run_ad_auto(&sc, &par);
    let reference = response_digests(&res.responses);
    assert!(
        reference.iter().any(|d| !d.is_empty()),
        "reference run produced no answers"
    );
    assert_eq!(obs.events_recorded(), 0, "disabled probes recorded events");
    assert_eq!(obs.rings_allocated(), 0, "disabled probes allocated rings");
    let (sim_res, _) = run_ad_auto(&sc, &BackendSpec::Sim);
    assert_eq!(
        response_digests(&sim_res.responses),
        reference,
        "par reference diverged from the simulator"
    );
    assert_eq!(obs.events_recorded(), 0);

    // Phase 2 — enabled, same parallel run: digests bit-identical, and
    // the probes actually fired (events, rings, the latency histogram the
    // sinks populate, the par.* metric export).
    obs.set_enabled(true);
    let (traced, _) = run_ad_auto(&sc, &par);
    assert_eq!(
        response_digests(&traced.responses),
        reference,
        "tracing changed the parallel run's digests"
    );
    assert!(obs.events_recorded() > 0, "enabled probes recorded nothing");
    assert!(obs.rings_allocated() > 0);
    let lat = obs.registry().histogram("latency.tuple_ns").snapshot();
    assert!(lat.count > 0, "no sink recorded tuple latency");
    assert!(lat.p50 <= lat.p99 && lat.p99 <= lat.p999);
    let rendered = obs.registry().render();
    assert!(rendered.contains("par.deliveries"), "par metrics missing");
    assert!(rendered.contains("seal.votes"), "seal metrics missing");

    // Phase 3 — enabled, over the wire: a real 2-process run stays
    // bit-identical and the workers ship their trace lanes back.
    let mut spec = DistSpec::new("", "", libtest_worker_command("trace_worker_entry"));
    spec.processes = 2;
    spec.workers_per_process = 2;
    spec.seed = sc.seed;
    let (dist_res, _) = run_ad_auto(&sc, &BackendSpec::Dist(spec));
    assert_eq!(
        response_digests(&dist_res.responses),
        reference,
        "tracing changed the distributed run's digests"
    );
    assert!(
        obs.remote_lane_count() > 0,
        "no worker process shipped trace lanes back"
    );

    // Phase 4 — the merged export is one document with scheduler, seal
    // and wire-frame spans, and lanes from a worker process (pid >= 1).
    let json = obs.chrome_json();
    assert!(json.starts_with("[\n") && json.trim_end().ends_with(']'));
    assert!(json.contains("\"activation\""));
    assert!(json.contains("\"seal_vote\""));
    assert!(json.contains("\"frame_send\""));
    assert!(json.contains("blazes process 1") || json.contains("blazes process 2"));
    assert!(!json.contains(",,"));

    // Phase 5 — disabled again: probes go quiet immediately.
    obs.set_enabled(false);
    obs.clear();
    let before = obs.events_recorded();
    let (_, _) = run_ad_auto(&sc, &par);
    assert_eq!(
        obs.events_recorded(),
        before,
        "probes kept recording after disable"
    );
}
