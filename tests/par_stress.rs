//! Adversarial stress tests for the lock-free mailbox hot path: many
//! concurrent producers hammering bounded consumers with the fault RNG
//! active. These are the proof obligations of the lock-free rework —
//! per-wire FIFO survives, nothing is lost or duplicated beyond what the
//! fault channels injected, cyclic topologies still quiesce under
//! backpressure, and digests stay identical across
//! `{1,2,4,8} x {stealing,static}` and (as sets — the simulator draws
//! faults from one global stream, the parallel backend from per-wire
//! streams) against the simulator.
//!
//! CI runs this file in release mode, single-threaded, in a repeat loop,
//! to shake out interleavings one run misses.

use blazes::dataflow::backend::PortId;
use blazes::dataflow::channel::ChannelConfig;
use blazes::dataflow::component::{Component, Context, FnComponent};
use blazes::dataflow::message::Message;
use blazes::dataflow::par::{ParBuilder, ParStats, ParTuning};
use blazes::dataflow::sim::SimBuilder;
use blazes::dataflow::sinks::CollectorSink;
use blazes::dataflow::value::Value;
use std::collections::BTreeSet;

/// CI's speculation matrix dimension: `BLAZES_SPECULATION=1` reruns the
/// whole file with the speculation-aware delivery path enabled. No gate
/// ever opens an epoch here, so every assertion must hold unchanged — the
/// time-warp machinery must cost nothing but its branch when idle.
fn speculation() -> bool {
    std::env::var("BLAZES_SPECULATION").is_ok_and(|v| v == "1")
}

fn echo() -> Box<dyn Component> {
    Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
        ctx.emit(0, msg)
    }))
}

/// `(producer, seq)` of a delivered tuple.
fn tag(msg: &Message) -> (i64, i64) {
    let t = msg.as_data().expect("data tuple");
    (
        t.get(0).and_then(Value::as_int).expect("producer column"),
        t.get(1).and_then(Value::as_int).expect("seq column"),
    )
}

/// N concurrent producers, each on its own faulty wire into one bounded
/// consumer: per-wire FIFO must hold at the consumer, every send must
/// arrive (losses are retried), and nothing may arrive beyond the sends
/// plus the duplicates the fault RNG injected.
#[test]
fn producers_hammer_one_bounded_consumer_without_loss_or_reorder() {
    let producers = 8i64;
    let per = 300i64;
    let mut b = ParBuilder::new(0xB10C)
        .with_workers(4)
        .with_speculation(speculation())
        .with_channel_capacity(4)
        .unwrap()
        .with_batch_size(3)
        .unwrap();
    let sink = CollectorSink::new();
    let s = b.add_instance(Box::new(sink.clone()));
    for p in 0..producers {
        let e = b.add_instance(echo());
        b.connect_with(
            e,
            PortId(0),
            s,
            PortId(0),
            ChannelConfig::lan().with_loss(0.2).with_duplicates(0.15),
        );
        for i in 0..per {
            b.inject(0, e, PortId(0), Message::data([p, i]));
        }
    }
    let stats = b.build().run();

    // At-least-once, exactly the injected payloads: every (p, i) arrives,
    // and total arrivals equal sends plus injected duplicates.
    let total_sent = (producers * per) as u64;
    assert_eq!(sink.len() as u64, total_sent + stats.duplicates);
    assert!(stats.retransmits > 0, "loss must have fired");
    assert!(stats.duplicates > 0, "duplication must have fired");

    // Per-wire FIFO: each producer's subsequence at the consumer is
    // non-decreasing (duplicates repeat a seq, nothing overtakes), and
    // complete.
    let mut last = vec![-1i64; producers as usize];
    let mut seen: Vec<BTreeSet<i64>> = vec![BTreeSet::new(); producers as usize];
    for msg in sink.messages() {
        let (p, i) = tag(&msg);
        assert!(
            i >= last[p as usize],
            "wire {p} reordered: {i} after {}",
            last[p as usize]
        );
        last[p as usize] = i;
        seen[p as usize].insert(i);
    }
    let full: BTreeSet<i64> = (0..per).collect();
    for (p, s) in seen.iter().enumerate() {
        assert_eq!(s, &full, "wire {p} lost messages");
    }
}

/// One fan-in topology under faults, swept over
/// `{1,2,4,8} x {stealing,static}` (plus a bounded variant): the
/// delivered multiset and the fault counts must be bit-identical across
/// every parallel configuration (per-wire RNG streams), and the delivered
/// *set* must match the seeded simulator (at-least-once collapses to the
/// same set even though the simulator draws faults from one global
/// stream).
#[test]
fn digest_identity_across_worker_counts_schedulers_and_sim() {
    let assemble = |b: &mut dyn blazes::dataflow::backend::ExecutorBuilder| {
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        for p in 0..3i64 {
            let e = b.add_instance(echo());
            let mid = b.add_instance(echo());
            let ch = b.add_channel(ChannelConfig::lan().with_loss(0.3).with_duplicates(0.2));
            b.connect(e, PortId(0), mid, PortId(0), ch);
            let ch2 = b.add_channel(ChannelConfig::lan().with_duplicates(0.25));
            b.connect(mid, PortId(0), s, PortId(0), ch2);
            for i in 0..200i64 {
                b.inject(0, e, PortId(0), Message::data([p, i]));
            }
        }
        sink
    };

    let mut sim = SimBuilder::new(42);
    let sim_sink = assemble(&mut sim);
    let _ = sim.build().run(None);
    let sim_set = sim_sink.message_set();
    let expected: BTreeSet<Message> = (0..3i64)
        .flat_map(|p| (0..200i64).map(move |i| Message::data([p, i])))
        .collect();
    assert_eq!(sim_set, expected, "simulator digest wrong");

    let run_par = |workers: usize, tuning: ParTuning| -> (Vec<Message>, ParStats) {
        let mut b = ParBuilder::new(42)
            .with_workers(workers)
            .with_tuning(tuning.with_speculation(speculation()))
            .unwrap();
        let sink = assemble(&mut b);
        let stats = b.build().run();
        let mut msgs = sink.messages();
        msgs.sort();
        (msgs, stats)
    };

    let (baseline_msgs, baseline_stats) = run_par(1, ParTuning::default());
    assert!(baseline_stats.duplicates > 0 && baseline_stats.retransmits > 0);
    for workers in [1usize, 2, 4, 8] {
        for stealing in [true, false] {
            for capacity in [None, Some(3)] {
                let tuning = ParTuning {
                    stealing,
                    channel_capacity: capacity,
                    batch_size: 5,
                    ..ParTuning::default()
                };
                let (msgs, stats) = run_par(workers, tuning);
                let set: BTreeSet<Message> = msgs.iter().cloned().collect();
                assert_eq!(
                    set, sim_set,
                    "par set diverged from sim at {workers}w stealing={stealing} cap={capacity:?}"
                );
                assert_eq!(
                    msgs, baseline_msgs,
                    "multiset diverged at {workers}w stealing={stealing} cap={capacity:?}"
                );
                assert_eq!(
                    (stats.duplicates, stats.retransmits),
                    (baseline_stats.duplicates, baseline_stats.retransmits),
                    "fault schedule diverged at {workers}w stealing={stealing} cap={capacity:?}"
                );
            }
        }
    }
}

/// The backpressure regression test for the lock-free send path: a cyclic
/// topology under a tiny capacity with the fault RNG active must still
/// quiesce (never park the last runnable worker), across schedulers and
/// worker counts.
#[test]
fn bounded_cycles_quiesce_under_faults() {
    let run = |workers: usize, stealing: bool| {
        let mut b = ParBuilder::new(7)
            .with_workers(workers)
            .with_stealing(stealing)
            .with_speculation(speculation())
            .with_channel_capacity(2)
            .unwrap()
            .with_batch_size(1)
            .unwrap();
        // A ring of decrementers: a token circulates until it hits zero.
        // Duplicated control-channel deliveries multiply tokens; each
        // duplicate decrements monotonically, so the run still terminates.
        let hops: Vec<_> = (0..3)
            .map(|h| {
                b.add_instance(Box::new(FnComponent::new(
                    format!("hop[{h}]"),
                    |_, msg: Message, ctx: &mut Context| {
                        if let Some(t) = msg.as_data() {
                            let v = t.get(0).and_then(Value::as_int).unwrap();
                            if v > 0 {
                                ctx.emit(0, Message::data([v - 1]));
                            }
                        }
                    },
                )))
            })
            .collect();
        for h in 0..3 {
            b.connect_with(
                hops[h],
                PortId(0),
                hops[(h + 1) % 3],
                PortId(0),
                ChannelConfig::lan().with_loss(0.3).with_duplicates(0.1),
            );
        }
        for t in 0..4i64 {
            b.inject(0, hops[0], PortId(0), Message::data([30 + t]));
        }
        let stats = b.build().run();
        // Termination IS the assertion; sanity-check volume: each token
        // takes at least `value` hops.
        assert!(
            stats.messages_delivered >= 4 * 30,
            "ring quiesced too early at {workers}w stealing={stealing}"
        );
    };
    for workers in [1usize, 2, 4, 8] {
        for stealing in [true, false] {
            run(workers, stealing);
        }
    }
}

/// Tiny capacity, batch size 1, more workers than cores: maximum
/// scheduler churn against one consumer. The depth bound must hold up to
/// the documented photo-finish and last-runnable-worker escapes, and
/// nothing may be lost.
#[test]
fn contended_fanin_with_tiny_capacity_holds_the_bound() {
    let workers = 8usize;
    let mut b = ParBuilder::new(0xFEED)
        .with_workers(workers)
        .with_speculation(speculation())
        .with_channel_capacity(2)
        .unwrap()
        .with_batch_size(1)
        .unwrap();
    let sink = CollectorSink::new();
    let s = b.add_instance(Box::new(sink.clone()));
    for p in 0..12i64 {
        let e = b.add_instance(echo());
        b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::lan());
        for i in 0..250i64 {
            b.inject(0, e, PortId(0), Message::data([p, i]));
        }
    }
    let stats = b.build().run();
    assert_eq!(sink.len(), 12 * 250);
    let overflow: u64 = stats.per_worker.iter().map(|w| w.overflow_sends).sum();
    assert!(
        stats.max_mailbox_depth <= 2 + workers + 1 + overflow as usize,
        "depth {} exceeds bound + racing senders + {overflow} escapes",
        stats.max_mailbox_depth
    );
}
