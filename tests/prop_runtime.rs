//! Property-based tests for the runtime substrates: the simulator, the
//! seal protocol and the Bloom interpreter must uphold the semantic
//! guarantees the analysis relies on.

use blazes::bloom::interp::ModuleInstance;
use blazes::bloom::parser::parse_module;
use blazes::coord::registry::ProducerRegistry;
use blazes::coord::seal::{SealManager, SealOutcome};
use blazes::dataflow::backend::PortId;
use blazes::dataflow::channel::ChannelConfig;
use blazes::dataflow::component::{Component, Context, FnComponent};
use blazes::dataflow::message::Message;
use blazes::dataflow::sim::SimBuilder;
use blazes::dataflow::sinks::CollectorSink;
use blazes::dataflow::value::{Tuple, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn echo() -> Box<dyn Component> {
    Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
        ctx.emit(0, msg)
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-once lossless delivery: every injected message arrives
    /// exactly once, whatever the jitter and seed.
    #[test]
    fn lossless_channels_deliver_exactly_once(
        seed in any::<u64>(),
        jitter in 0u64..50_000,
        n in 1usize..60,
    ) {
        let mut b = SimBuilder::new(seed);
        let e = b.add_instance(echo());
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(e, PortId(0), s, PortId(0), ChannelConfig::lan().with_jitter(jitter));
        for i in 0..n {
            b.inject(0, e, PortId(0), Message::data([i as i64]));
        }
        b.build().run(None);
        prop_assert_eq!(sink.len(), n);
        // Order-insensitive contents match exactly.
        let expected: std::collections::BTreeSet<Message> =
            (0..n).map(|i| Message::data([i as i64])).collect();
        prop_assert_eq!(sink.message_set(), expected);
    }

    /// Determinism: identical (topology, workload, seed) triples produce
    /// identical delivery orders.
    #[test]
    fn same_seed_same_trace(seed in any::<u64>(), n in 1usize..40) {
        let run = |seed: u64| {
            let mut b = SimBuilder::new(seed);
            let e1 = b.add_instance(echo());
            let e2 = b.add_instance(echo());
            let sink = CollectorSink::new();
            let s = b.add_instance(Box::new(sink.clone()));
            b.connect_with(e1, PortId(0), s, PortId(0), ChannelConfig::lan().with_jitter(20_000));
            b.connect_with(e2, PortId(0), s, PortId(0), ChannelConfig::lan().with_jitter(20_000));
            for i in 0..n {
                b.inject(0, e1, PortId(0), Message::data([i as i64]));
                b.inject(0, e2, PortId(0), Message::data([1_000 + i as i64]));
            }
            b.build().run(None);
            sink.messages()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// The seal protocol releases every partition exactly once, with
    /// exactly the tuples that were buffered, under any interleaving of
    /// data and votes.
    #[test]
    fn seal_manager_releases_exactly_once(
        producers in 1usize..5,
        partitions in 1usize..6,
        tuples_per_partition in 1usize..8,
        vote_order in any::<u64>(),
    ) {
        let mut mgr = SealManager::new(ProducerRegistry::all_produce(0..producers));
        let mut released: BTreeMap<i64, Vec<Tuple>> = BTreeMap::new();

        for p in 0..partitions as i64 {
            for t in 0..tuples_per_partition as i64 {
                let out = mgr.on_data(Value::Int(p), Tuple(vec![Value::Int(p), Value::Int(t)]));
                prop_assert_eq!(out, SealOutcome::Buffered);
            }
        }
        // Vote in a seed-derived order over (partition, producer) pairs.
        let mut votes: Vec<(i64, usize)> = (0..partitions as i64)
            .flat_map(|p| (0..producers).map(move |pr| (p, pr)))
            .collect();
        let len = votes.len();
        let k = (vote_order as usize % len.max(1)).max(1);
        votes.rotate_left(k % len);
        for (p, pr) in votes {
            if let SealOutcome::Released(tuples) = mgr.on_seal(Value::Int(p), pr) {
                prop_assert!(released.insert(p, tuples).is_none(), "double release");
            }
        }
        prop_assert_eq!(released.len(), partitions, "every partition released");
        for (p, tuples) in released {
            prop_assert_eq!(tuples.len(), tuples_per_partition, "partition {} complete", p);
        }
    }

    /// CALM at runtime: a monotonic Bloom module reaches the same final
    /// table contents regardless of how its inputs are split and ordered
    /// across timesteps.
    #[test]
    fn monotonic_bloom_is_order_insensitive(perm_seed in any::<u64>(), n in 1usize..12) {
        let src = "module M { input a(x) output o(x) table t(x) t <= a o <= t }";
        let run = |order: &[i64]| {
            let mut inst = ModuleInstance::new(parse_module(src).unwrap()).unwrap();
            for &x in order {
                let mut inputs = BTreeMap::new();
                inputs.insert("a".to_string(), vec![Tuple(vec![Value::Int(x)])]);
                inst.tick(inputs).unwrap();
            }
            inst.table("t")
        };
        let forward: Vec<i64> = (0..n as i64).collect();
        // A seed-derived permutation.
        let mut shuffled = forward.clone();
        let k = (perm_seed as usize % n).max(1);
        shuffled.rotate_left(k % n);
        shuffled.reverse();
        prop_assert_eq!(run(&forward), run(&shuffled));
    }

    /// Nonmonotonic queries are genuinely order-sensitive: the POOR query
    /// read at different moments gives different answers (what NDRead
    /// models). Final answers (after all input) still agree.
    #[test]
    fn poor_transient_reads_vary_but_final_agrees(split in 1usize..99) {
        let poor = blazes::apps::queries::ReportQuery::Poor.module();
        // 150 distinct clicks for ad 1: final answer is "not poor".
        let clicks: Vec<Tuple> = (0..150)
            .map(|w| Tuple(vec![Value::Int(1), Value::Int(0), Value::Int(w)]))
            .collect();
        let run = |chunks: Vec<Vec<Tuple>>| {
            let mut inst = ModuleInstance::new(poor.clone()).unwrap();
            let mut transient = Vec::new();
            for chunk in chunks {
                let mut inputs = BTreeMap::new();
                inputs.insert("click".to_string(), chunk);
                inputs.insert("request".to_string(), vec![Tuple(vec![Value::Int(1)])]);
                let out = inst.tick(inputs).unwrap();
                transient.push(out.on("response").len());
            }
            transient
        };
        let split = split.min(149);
        let early_read = run(vec![clicks[..split].to_vec(), clicks[split..].to_vec()]);
        // The early read sees ad 1 as poor (count < 100) iff split < 100;
        // the final read never does.
        prop_assert_eq!(early_read[0] > 0, split < 100);
        prop_assert_eq!(*early_read.last().unwrap(), 0, "final answer: not poor");
    }
}
