//! Differential tests: the multi-worker parallel executor must agree with
//! the seeded discrete-event simulator on every *confluent*
//! (order-insensitive) topology — the paper's CALM argument made
//! executable. Each topology is assembled once, generically over
//! [`ExecutorBuilder`], and run on both backends.

use blazes::coord::registry::ProducerRegistry;
use blazes::coord::seal::{SealManager, SealOutcome};
use blazes::dataflow::backend::ExecutorBuilder;
use blazes::dataflow::channel::ChannelConfig;
use blazes::dataflow::component::{Component, Context, FnComponent};
use blazes::dataflow::message::{Message, SealKey};
use blazes::dataflow::par::ParBuilder;
use blazes::dataflow::sim::SimBuilder;
use blazes::dataflow::sinks::CollectorSink;
use blazes::dataflow::value::{Tuple, Value};
use std::collections::BTreeSet;

fn echo() -> Box<dyn Component> {
    Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
        ctx.emit(0, msg)
    }))
}

/// Topology 1: three producers fan in to one sink (cross-producer
/// interleaving is the only nondeterminism).
fn fan_in<B: ExecutorBuilder>(b: &mut B, sink: CollectorSink) {
    let producers: Vec<_> = (0..3).map(|_| b.add_instance(echo())).collect();
    let s = b.add_instance(Box::new(sink));
    for (k, &p) in producers.iter().enumerate() {
        b.connect_with(p, 0, s, 0, ChannelConfig::lan().with_jitter(20_000));
        for i in 0..40i64 {
            b.inject(0, p, 0, Message::data([k as i64 * 1_000 + i]));
        }
    }
}

/// Topology 2: a map pipeline — echo -> doubler -> sink.
fn pipeline<B: ExecutorBuilder>(b: &mut B, sink: CollectorSink) {
    let src = b.add_instance(echo());
    let doubler = b.add_instance(Box::new(FnComponent::new(
        "doubler",
        |_, msg: Message, ctx: &mut Context| {
            if let Some(t) = msg.as_data() {
                let v = t.get(0).and_then(Value::as_int).expect("int tuple");
                ctx.emit(0, Message::data([v * 2]));
            } else {
                ctx.emit(0, msg);
            }
        },
    )));
    let s = b.add_instance(Box::new(sink));
    b.connect_with(src, 0, doubler, 0, ChannelConfig::lan().with_jitter(5_000));
    b.connect_with(doubler, 0, s, 0, ChannelConfig::lan().with_jitter(5_000));
    for i in 0..60i64 {
        b.inject(0, src, 0, Message::data([i]));
    }
}

/// An EOS-punctuated aggregator: sums tuples from `expected` upstream
/// producers and emits the grand total once every producer has signalled
/// end-of-stream. Commutative in the data, gated by punctuations.
struct EosSum {
    expected: usize,
    seen_eos: usize,
    sum: i64,
}

impl Component for EosSum {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) => {
                self.sum += t.get(0).and_then(Value::as_int).expect("int tuple");
            }
            Message::Eos => {
                self.seen_eos += 1;
                if self.seen_eos == self.expected {
                    ctx.emit(0, Message::data([self.sum]));
                }
            }
            Message::Seal(_) => {}
        }
    }

    fn name(&self) -> &str {
        "eos-sum"
    }
}

/// Topology 3: a diamond — two producers feed an EOS-gated aggregate which
/// publishes a single total.
fn diamond<B: ExecutorBuilder>(b: &mut B, sink: CollectorSink) {
    let p1 = b.add_instance(echo());
    let p2 = b.add_instance(echo());
    let agg = b.add_instance(Box::new(EosSum {
        expected: 2,
        seen_eos: 0,
        sum: 0,
    }));
    let s = b.add_instance(Box::new(sink));
    b.connect_with(p1, 0, agg, 0, ChannelConfig::lan().with_jitter(10_000));
    b.connect_with(p2, 0, agg, 0, ChannelConfig::lan().with_jitter(10_000));
    b.connect_with(agg, 0, s, 0, ChannelConfig::instant());
    for i in 1..=30i64 {
        b.inject(0, p1, 0, Message::data([i]));
        b.inject(0, p2, 0, Message::data([100 + i]));
    }
    // Punctuations close each producer's stream; per-wire FIFO guarantees
    // they arrive after the data they cover.
    b.inject(1, p1, 0, Message::Eos);
    b.inject(1, p2, 0, Message::Eos);
}

/// Assemble on the simulator and the parallel executor, run both, compare
/// final sink sets.
fn assert_backends_agree(name: &str, assemble: impl Fn(&mut dyn ExecutorBuilder, CollectorSink)) {
    let sim_sink = CollectorSink::new();
    let mut sim = SimBuilder::new(42);
    assemble(&mut sim, sim_sink.clone());
    sim.build().run(None);
    assert!(!sim_sink.is_empty(), "{name}: simulator produced no output");

    for workers in [1usize, 2, 4] {
        let par_sink = CollectorSink::new();
        let mut par = ParBuilder::new(42).with_workers(workers).with_batch_size(8);
        assemble(&mut par, par_sink.clone());
        let stats = par.build().run();
        assert!(
            stats.messages_delivered > 0,
            "{name}: no deliveries under par"
        );
        assert_eq!(
            par_sink.message_set(),
            sim_sink.message_set(),
            "{name}: parallel ({workers} workers) diverged from simulator"
        );
        // Sets cannot see duplicate deliveries — counts must match too.
        assert_eq!(
            par_sink.len(),
            sim_sink.len(),
            "{name}: parallel ({workers} workers) duplicated or dropped deliveries"
        );
    }
}

#[test]
fn fan_in_matches_simulator() {
    assert_backends_agree("fan-in", |mut b, sink| fan_in(&mut b, sink));
}

#[test]
fn pipeline_matches_simulator() {
    assert_backends_agree("pipeline", |mut b, sink| pipeline(&mut b, sink));
}

#[test]
fn diamond_matches_simulator() {
    assert_backends_agree("diamond", |mut b, sink| diamond(&mut b, sink));
}

/// A sealing consumer: buffers per-campaign tuples in a [`SealManager`]
/// and, when a partition's seal votes complete, emits one summary tuple
/// `(campaign, buffered_count)`.
struct SealingConsumer {
    mgr: SealManager,
}

impl Component for SealingConsumer {
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) => {
                let campaign = t.get(0).cloned().expect("campaign column");
                let out = self.mgr.on_data(campaign, t);
                assert!(
                    matches!(out, SealOutcome::Buffered),
                    "data after release: {out:?}"
                );
            }
            Message::Seal(key) => {
                let campaign = key.value_of("campaign").cloned().expect("campaign seal");
                if let SealOutcome::Released(tuples) = self.mgr.on_seal(campaign.clone(), port) {
                    ctx.emit(
                        0,
                        Message::Data(Tuple(vec![campaign, Value::Int(tuples.len() as i64)])),
                    );
                }
            }
            Message::Eos => {}
        }
    }

    fn name(&self) -> &str {
        "sealing-consumer"
    }
}

/// The sealing workload: `producers` servers each emit `per_partition`
/// records for every campaign, then seal it. Producer `k` feeds consumer
/// port `k` (its producer id in the registry).
fn sealed_topology<B: ExecutorBuilder>(
    b: &mut B,
    sink: CollectorSink,
    producers: usize,
    campaigns: i64,
    per_partition: usize,
) {
    let consumer = b.add_instance(Box::new(SealingConsumer {
        mgr: SealManager::new(ProducerRegistry::all_produce(0..producers)),
    }));
    let s = b.add_instance(Box::new(sink));
    b.connect_with(consumer, 0, s, 0, ChannelConfig::instant());
    for k in 0..producers {
        let p = b.add_instance(echo());
        b.connect_with(p, 0, consumer, k, ChannelConfig::lan().with_jitter(15_000));
        for c in 0..campaigns {
            for i in 0..per_partition {
                b.inject(0, p, 0, Message::data([c, k as i64, i as i64]));
            }
            // Seal follows the partition's data on the same wire.
            b.inject(1, p, 0, Message::Seal(SealKey::new([("campaign", c)])));
        }
    }
}

/// Sealing under the threaded executor: every partition is released
/// exactly once, only after unanimous votes, with its full buffer — the
/// same outcome the simulator produces.
#[test]
fn sealing_punctuations_complete_batches_under_threads() {
    let producers = 3usize;
    let campaigns = 5i64;
    let per_partition = 8usize;

    let expected: BTreeSet<Message> = (0..campaigns)
        .map(|c| {
            Message::Data(Tuple(vec![
                Value::Int(c),
                Value::Int((producers * per_partition) as i64),
            ]))
        })
        .collect();

    let sim_sink = CollectorSink::new();
    let mut sim = SimBuilder::new(7);
    sealed_topology(
        &mut sim,
        sim_sink.clone(),
        producers,
        campaigns,
        per_partition,
    );
    sim.build().run(None);
    assert_eq!(sim_sink.message_set(), expected, "simulator baseline");
    assert_eq!(
        sim_sink.len(),
        campaigns as usize,
        "released exactly once (sim)"
    );

    for workers in [2usize, 4] {
        let par_sink = CollectorSink::new();
        let mut par = ParBuilder::new(7).with_workers(workers).with_batch_size(4);
        sealed_topology(
            &mut par,
            par_sink.clone(),
            producers,
            campaigns,
            per_partition,
        );
        let _ = par.build().run();
        assert_eq!(
            par_sink.message_set(),
            expected,
            "parallel ({workers} workers) seal outcome"
        );
        assert_eq!(
            par_sink.len(),
            campaigns as usize,
            "released exactly once ({workers} workers)"
        );
    }
}
