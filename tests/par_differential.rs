//! Differential tests: the multi-worker parallel executor must agree with
//! the seeded discrete-event simulator on every *confluent*
//! (order-insensitive) topology — the paper's CALM argument made
//! executable. Each topology is assembled once, generically over
//! [`ExecutorBuilder`], and run on both backends — and on the parallel
//! backend under every scheduler variant: work stealing and static
//! sharding, unbounded and bounded (backpressured) mailboxes.

use blazes::coord::registry::ProducerRegistry;
use blazes::coord::seal::{SealManager, SealOutcome};
use blazes::dataflow::backend::{ExecutorBuilder, PortId};
use blazes::dataflow::channel::ChannelConfig;
use blazes::dataflow::component::{Component, Context, FnComponent};
use blazes::dataflow::message::{Message, SealKey};
use blazes::dataflow::par::{ParBuilder, ParTuning};
use blazes::dataflow::sim::SimBuilder;
use blazes::dataflow::sinks::CollectorSink;
use blazes::dataflow::value::{Tuple, Value};
use std::collections::BTreeSet;

fn echo() -> Box<dyn Component> {
    Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
        ctx.emit(0, msg)
    }))
}

/// Every scheduler variant a topology must agree under.
fn scheduler_variants() -> Vec<(&'static str, ParTuning)> {
    vec![
        ("stealing", ParTuning::default()),
        (
            "static",
            ParTuning {
                stealing: false,
                ..ParTuning::default()
            },
        ),
        (
            "stealing+bounded",
            ParTuning {
                channel_capacity: Some(4),
                batch_size: 3,
                ..ParTuning::default()
            },
        ),
        (
            "static+bounded",
            ParTuning {
                stealing: false,
                channel_capacity: Some(4),
                batch_size: 3,
                ..ParTuning::default()
            },
        ),
        (
            "stealing+spill",
            ParTuning {
                spill_threshold: Some(2),
                batch_size: 8,
                ..ParTuning::default()
            },
        ),
    ]
}

/// Topology 1: three producers fan in to one sink (cross-producer
/// interleaving is the only nondeterminism).
fn fan_in<B: ExecutorBuilder>(b: &mut B, sink: CollectorSink) {
    let producers: Vec<_> = (0..3).map(|_| b.add_instance(echo())).collect();
    let s = b.add_instance(Box::new(sink));
    for (k, &p) in producers.iter().enumerate() {
        b.connect_with(
            p,
            PortId(0),
            s,
            PortId(0),
            ChannelConfig::lan().with_jitter(20_000),
        );
        for i in 0..40i64 {
            b.inject(0, p, PortId(0), Message::data([k as i64 * 1_000 + i]));
        }
    }
}

/// Topology 2: a map pipeline — echo -> doubler -> sink.
fn pipeline<B: ExecutorBuilder>(b: &mut B, sink: CollectorSink) {
    let src = b.add_instance(echo());
    let doubler = b.add_instance(Box::new(FnComponent::new(
        "doubler",
        |_, msg: Message, ctx: &mut Context| {
            if let Some(t) = msg.as_data() {
                let v = t.get(0).and_then(Value::as_int).expect("int tuple");
                ctx.emit(0, Message::data([v * 2]));
            } else {
                ctx.emit(0, msg);
            }
        },
    )));
    let s = b.add_instance(Box::new(sink));
    b.connect_with(
        src,
        PortId(0),
        doubler,
        PortId(0),
        ChannelConfig::lan().with_jitter(5_000),
    );
    b.connect_with(
        doubler,
        PortId(0),
        s,
        PortId(0),
        ChannelConfig::lan().with_jitter(5_000),
    );
    for i in 0..60i64 {
        b.inject(0, src, PortId(0), Message::data([i]));
    }
}

/// An EOS-punctuated aggregator: sums tuples from `expected` upstream
/// producers and emits the grand total once every producer has signalled
/// end-of-stream. Commutative in the data, gated by punctuations.
struct EosSum {
    expected: usize,
    seen_eos: usize,
    sum: i64,
}

impl Component for EosSum {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) => {
                self.sum += t.get(0).and_then(Value::as_int).expect("int tuple");
            }
            Message::Eos => {
                self.seen_eos += 1;
                if self.seen_eos == self.expected {
                    ctx.emit(0, Message::data([self.sum]));
                }
            }
            Message::Seal(_) => {}
        }
    }

    fn name(&self) -> &str {
        "eos-sum"
    }
}

/// Topology 3: a diamond — two producers feed an EOS-gated aggregate which
/// publishes a single total.
fn diamond<B: ExecutorBuilder>(b: &mut B, sink: CollectorSink) {
    let p1 = b.add_instance(echo());
    let p2 = b.add_instance(echo());
    let agg = b.add_instance(Box::new(EosSum {
        expected: 2,
        seen_eos: 0,
        sum: 0,
    }));
    let s = b.add_instance(Box::new(sink));
    b.connect_with(
        p1,
        PortId(0),
        agg,
        PortId(0),
        ChannelConfig::lan().with_jitter(10_000),
    );
    b.connect_with(
        p2,
        PortId(0),
        agg,
        PortId(0),
        ChannelConfig::lan().with_jitter(10_000),
    );
    b.connect_with(agg, PortId(0), s, PortId(0), ChannelConfig::instant());
    for i in 1..=30i64 {
        b.inject(0, p1, PortId(0), Message::data([i]));
        b.inject(0, p2, PortId(0), Message::data([100 + i]));
    }
    // Punctuations close each producer's stream; per-wire FIFO guarantees
    // they arrive after the data they cover.
    b.inject(1, p1, PortId(0), Message::Eos);
    b.inject(1, p2, PortId(0), Message::Eos);
}

/// A hop in a cyclic topology: `[id, ttl]` tuples loop (port 0) until their
/// ttl runs out, then exit to the sink (port 1). Deterministic final
/// output whatever the interleaving: each id exits exactly once.
fn looper(name: &str) -> Box<dyn Component> {
    Box::new(FnComponent::new(
        name.to_string(),
        |_, msg: Message, ctx: &mut Context| {
            let Some(t) = msg.as_data() else { return };
            let id = t.get(0).and_then(Value::as_int).expect("id");
            let ttl = t.get(1).and_then(Value::as_int).expect("ttl");
            if ttl > 0 {
                ctx.emit(0, Message::data([id, ttl - 1]));
            } else {
                ctx.emit(1, Message::data([id]));
            }
        },
    ))
}

/// Topology 4: a cycle — A -> B -> A, with both hops exiting drained
/// messages to the sink. Cycles are where naive backpressure deadlocks and
/// naive termination detection never quiesces; the executor must handle
/// both.
fn cyclic<B: ExecutorBuilder>(b: &mut B, sink: CollectorSink) {
    let a = b.add_instance(looper("loop-a"));
    let bb = b.add_instance(looper("loop-b"));
    let s = b.add_instance(Box::new(sink));
    b.connect_with(
        a,
        PortId(0),
        bb,
        PortId(0),
        ChannelConfig::lan().with_jitter(3_000),
    );
    b.connect_with(
        bb,
        PortId(0),
        a,
        PortId(0),
        ChannelConfig::lan().with_jitter(3_000),
    );
    b.connect_with(a, PortId(1), s, PortId(0), ChannelConfig::instant());
    b.connect_with(bb, PortId(1), s, PortId(0), ChannelConfig::instant());
    for id in 0..24i64 {
        // Varied ttl so exits spread across both hops and loop depths.
        b.inject(0, a, PortId(0), Message::data([id, id % 7]));
    }
}

/// Topology 5: one producer chain replicated into three sinks — every
/// replica must observe the complete stream (per-wire FIFO per replica).
/// The three sinks are wired through one shared channel handle, matching
/// how the storm layer fans out a grouping.
fn replicated_sinks<B: ExecutorBuilder>(b: &mut B, sinks: &[CollectorSink]) {
    let src = b.add_instance(echo());
    let relay = b.add_instance(echo());
    b.connect_with(
        src,
        PortId(0),
        relay,
        PortId(0),
        ChannelConfig::lan().with_jitter(8_000),
    );
    let ch = b.add_channel(ChannelConfig::lan().with_jitter(8_000));
    for sink in sinks {
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect(relay, PortId(0), s, PortId(0), ch);
    }
    for i in 0..80i64 {
        b.inject(0, src, PortId(0), Message::data([i]));
    }
}

/// Assemble on the simulator and the parallel executor, run both under
/// every scheduler variant, compare final sink sets.
fn assert_backends_agree(name: &str, assemble: impl Fn(&mut dyn ExecutorBuilder, CollectorSink)) {
    let sim_sink = CollectorSink::new();
    let mut sim = SimBuilder::new(42);
    assemble(&mut sim, sim_sink.clone());
    sim.build().run(None);
    assert!(!sim_sink.is_empty(), "{name}: simulator produced no output");

    for (variant, tuning) in scheduler_variants() {
        for workers in [1usize, 2, 4] {
            let par_sink = CollectorSink::new();
            let mut par = ParBuilder::new(42)
                .with_workers(workers)
                .with_tuning(tuning)
                .expect("valid tuning");
            assemble(&mut par, par_sink.clone());
            let stats = par.build().run();
            assert!(
                stats.messages_delivered > 0,
                "{name}/{variant}: no deliveries under par"
            );
            assert_eq!(
                par_sink.message_set(),
                sim_sink.message_set(),
                "{name}/{variant}: parallel ({workers} workers) diverged from simulator"
            );
            // Sets cannot see duplicate deliveries — counts must match too.
            assert_eq!(
                par_sink.len(),
                sim_sink.len(),
                "{name}/{variant}: parallel ({workers} workers) duplicated or dropped deliveries"
            );
        }
    }
}

#[test]
fn fan_in_matches_simulator() {
    assert_backends_agree("fan-in", |mut b, sink| fan_in(&mut b, sink));
}

#[test]
fn pipeline_matches_simulator() {
    assert_backends_agree("pipeline", |mut b, sink| pipeline(&mut b, sink));
}

#[test]
fn diamond_matches_simulator() {
    assert_backends_agree("diamond", |mut b, sink| diamond(&mut b, sink));
}

#[test]
fn cyclic_topology_matches_simulator() {
    assert_backends_agree("cyclic", |mut b, sink| cyclic(&mut b, sink));
}

#[test]
fn replicated_sinks_match_simulator_on_every_replica() {
    const REPLICAS: usize = 3;
    let sim_sinks: Vec<CollectorSink> = (0..REPLICAS).map(|_| CollectorSink::new()).collect();
    let mut sim = SimBuilder::new(42);
    replicated_sinks(&mut sim, &sim_sinks);
    sim.build().run(None);
    let expected: Vec<Message> = (0..80i64).map(|i| Message::data([i])).collect();
    for sink in &sim_sinks {
        assert_eq!(sink.message_set().len(), 80, "simulator replica complete");
    }

    for (variant, tuning) in scheduler_variants() {
        for workers in [2usize, 4] {
            let par_sinks: Vec<CollectorSink> =
                (0..REPLICAS).map(|_| CollectorSink::new()).collect();
            let mut par = ParBuilder::new(42)
                .with_workers(workers)
                .with_tuning(tuning)
                .expect("valid tuning");
            replicated_sinks(&mut par, &par_sinks);
            let _ = par.build().run();
            for (r, sink) in par_sinks.iter().enumerate() {
                // Per-wire FIFO: each replica sees the full stream in send
                // order, not just the same set.
                assert_eq!(
                    sink.messages(),
                    expected,
                    "{variant}: replica {r} broke order or completeness ({workers} workers)"
                );
            }
        }
    }
}

/// A sealing consumer: buffers per-campaign tuples in a [`SealManager`]
/// and, when a partition's seal votes complete, emits one summary tuple
/// `(campaign, buffered_count)`. Panics on data arriving after its
/// partition released — the ordering violation bounded channels must not
/// introduce.
struct SealingConsumer {
    mgr: SealManager,
}

impl Component for SealingConsumer {
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) => {
                let campaign = t.get(0).cloned().expect("campaign column");
                let out = self.mgr.on_data(campaign, t);
                assert!(
                    matches!(out, SealOutcome::Buffered),
                    "data after release: {out:?}"
                );
            }
            Message::Seal(key) => {
                let campaign = key.value_of("campaign").cloned().expect("campaign seal");
                if let SealOutcome::Released(tuples) = self.mgr.on_seal(campaign.clone(), port) {
                    ctx.emit(
                        0,
                        Message::Data(Tuple(vec![campaign, Value::Int(tuples.len() as i64)])),
                    );
                }
            }
            Message::Eos => {}
        }
    }

    fn name(&self) -> &str {
        "sealing-consumer"
    }
}

/// The sealing workload: `producers` servers each emit `records(campaign)`
/// records for every campaign, then seal it. Producer `k` feeds consumer
/// port `k` (its producer id in the registry).
fn sealed_topology<B: ExecutorBuilder>(
    b: &mut B,
    sink: CollectorSink,
    producers: usize,
    campaigns: i64,
    records: impl Fn(i64) -> usize,
) {
    let consumer = b.add_instance(Box::new(SealingConsumer {
        mgr: SealManager::new(ProducerRegistry::all_produce(0..producers)),
    }));
    let s = b.add_instance(Box::new(sink));
    b.connect_with(consumer, PortId(0), s, PortId(0), ChannelConfig::instant());
    for k in 0..producers {
        let p = b.add_instance(echo());
        b.connect_with(
            p,
            PortId(0),
            consumer,
            PortId(k),
            ChannelConfig::lan().with_jitter(15_000),
        );
        for c in 0..campaigns {
            for i in 0..records(c) {
                b.inject(0, p, PortId(0), Message::data([c, k as i64, i as i64]));
            }
            // Seal follows the partition's data on the same wire.
            b.inject(
                1,
                p,
                PortId(0),
                Message::Seal(SealKey::new([("campaign", c)])),
            );
        }
    }
}

fn expected_releases(
    producers: usize,
    campaigns: i64,
    records: impl Fn(i64) -> usize,
) -> BTreeSet<Message> {
    (0..campaigns)
        .map(|c| {
            Message::Data(Tuple(vec![
                Value::Int(c),
                Value::Int((producers * records(c)) as i64),
            ]))
        })
        .collect()
}

fn assert_sealing_agrees(
    name: &str,
    producers: usize,
    campaigns: i64,
    records: impl Fn(i64) -> usize + Copy,
) {
    let expected = expected_releases(producers, campaigns, records);

    let sim_sink = CollectorSink::new();
    let mut sim = SimBuilder::new(7);
    sealed_topology(&mut sim, sim_sink.clone(), producers, campaigns, records);
    sim.build().run(None);
    assert_eq!(
        sim_sink.message_set(),
        expected,
        "{name}: simulator baseline"
    );
    assert_eq!(
        sim_sink.len(),
        campaigns as usize,
        "{name}: released exactly once (sim)"
    );

    for (variant, tuning) in scheduler_variants() {
        for workers in [2usize, 4] {
            let par_sink = CollectorSink::new();
            let mut par = ParBuilder::new(7)
                .with_workers(workers)
                .with_tuning(tuning)
                .expect("valid tuning");
            sealed_topology(&mut par, par_sink.clone(), producers, campaigns, records);
            let _ = par.build().run();
            assert_eq!(
                par_sink.message_set(),
                expected,
                "{name}/{variant}: seal outcome ({workers} workers)"
            );
            assert_eq!(
                par_sink.len(),
                campaigns as usize,
                "{name}/{variant}: released exactly once ({workers} workers)"
            );
        }
    }
}

/// Sealing under the threaded executor: every partition is released
/// exactly once, only after unanimous votes, with its full buffer — the
/// same outcome the simulator produces. Runs under bounded channels too:
/// backpressure parks must not let a seal overtake covered records.
#[test]
fn sealing_punctuations_complete_batches_under_threads() {
    assert_sealing_agrees("uniform-seal", 3, 5, |_| 8);
}

/// The skewed-key variant: one hot campaign carries most of the records
/// (the ad-report join skew). Load imbalance must not change seal
/// outcomes, under either scheduler, bounded or not.
#[test]
fn skewed_key_sealing_matches_simulator() {
    // Campaign 0 is ~20x hotter than the tail.
    assert_sealing_agrees("skewed-seal", 3, 6, |c| if c == 0 { 60 } else { 3 });
}

// ---------------------------------------------------------------------
// Adversarial punctuation orderings (ROADMAP "scenario breadth"): seals
// arriving before, interleaved with, and duplicated around the records
// they cover — asserted across both schedulers and the simulator.
// ---------------------------------------------------------------------

/// Run one sealed assembly on the simulator and on the parallel executor
/// under every scheduler variant, asserting identical release outcomes.
fn assert_adversarial_sealing(
    name: &str,
    expected: &BTreeSet<Message>,
    campaigns: usize,
    assemble: impl Fn(&mut dyn ExecutorBuilder, CollectorSink),
) {
    let sim_sink = CollectorSink::new();
    let mut sim = SimBuilder::new(17);
    assemble(&mut sim, sim_sink.clone());
    sim.build().run(None);
    assert_eq!(&sim_sink.message_set(), expected, "{name}: simulator");
    assert_eq!(sim_sink.len(), campaigns, "{name}: released once (sim)");

    for (variant, tuning) in scheduler_variants() {
        for workers in [2usize, 4] {
            let par_sink = CollectorSink::new();
            let mut par = ParBuilder::new(17)
                .with_workers(workers)
                .with_tuning(tuning)
                .expect("valid tuning");
            assemble(&mut par, par_sink.clone());
            let _ = par.build().run();
            assert_eq!(
                &par_sink.message_set(),
                expected,
                "{name}/{variant}: outcome ({workers} workers)"
            );
            assert_eq!(
                par_sink.len(),
                campaigns,
                "{name}/{variant}: released once ({workers} workers)"
            );
        }
    }
}

/// Seals arriving *before* any covered records from one stakeholder: a
/// producer that contributes nothing to a partition votes up front, and
/// the release must still wait for every other producer's data + seal.
#[test]
fn seals_before_covered_records_still_gate_the_release() {
    const PRODUCERS: usize = 3;
    const CAMPAIGNS: i64 = 4;
    const RECORDS: usize = 6;
    // Producer 0 contributes no data: (PRODUCERS - 1) * RECORDS each.
    let expected: BTreeSet<Message> = (0..CAMPAIGNS)
        .map(|c| {
            Message::Data(Tuple(vec![
                Value::Int(c),
                Value::Int(((PRODUCERS - 1) * RECORDS) as i64),
            ]))
        })
        .collect();
    assert_adversarial_sealing("early-seals", &expected, CAMPAIGNS as usize, |b, sink| {
        let consumer = b.add_instance(Box::new(SealingConsumer {
            mgr: SealManager::new(ProducerRegistry::all_produce(0..PRODUCERS)),
        }));
        let s = b.add_instance(Box::new(sink));
        b.connect_with(consumer, PortId(0), s, PortId(0), ChannelConfig::instant());
        for k in 0..PRODUCERS {
            let p = b.add_instance(echo());
            b.connect_with(
                p,
                PortId(0),
                consumer,
                PortId(k),
                ChannelConfig::lan().with_jitter(15_000),
            );
            if k == 0 {
                // The empty stakeholder seals everything first, before any
                // covered record exists anywhere.
                for c in 0..CAMPAIGNS {
                    b.inject(
                        0,
                        p,
                        PortId(0),
                        Message::Seal(SealKey::new([("campaign", c)])),
                    );
                }
            } else {
                for c in 0..CAMPAIGNS {
                    for i in 0..RECORDS {
                        b.inject(1, p, PortId(0), Message::data([c, k as i64, i as i64]));
                    }
                    b.inject(
                        2,
                        p,
                        PortId(0),
                        Message::Seal(SealKey::new([("campaign", c)])),
                    );
                }
            }
        }
    });
}

/// Seals interleaved with other producers' records: producers work
/// through the campaigns in rotated orders (the ad workload's "spread"
/// placement), so every seal arrives while sibling producers are still
/// emitting records for that campaign.
#[test]
fn seals_interleaved_across_producers_release_exactly_once() {
    const PRODUCERS: usize = 3;
    const CAMPAIGNS: i64 = 5;
    const RECORDS: usize = 4;
    let expected: BTreeSet<Message> = (0..CAMPAIGNS)
        .map(|c| {
            Message::Data(Tuple(vec![
                Value::Int(c),
                Value::Int((PRODUCERS * RECORDS) as i64),
            ]))
        })
        .collect();
    assert_adversarial_sealing(
        "interleaved-seals",
        &expected,
        CAMPAIGNS as usize,
        |b, sink| {
            let consumer = b.add_instance(Box::new(SealingConsumer {
                mgr: SealManager::new(ProducerRegistry::all_produce(0..PRODUCERS)),
            }));
            let s = b.add_instance(Box::new(sink));
            b.connect_with(consumer, PortId(0), s, PortId(0), ChannelConfig::instant());
            for k in 0..PRODUCERS {
                let p = b.add_instance(echo());
                b.connect_with(
                    p,
                    PortId(0),
                    consumer,
                    PortId(k),
                    ChannelConfig::lan().with_jitter(15_000),
                );
                // Rotated campaign order: producer k starts at campaign k.
                for step in 0..CAMPAIGNS {
                    let c = (step + k as i64) % CAMPAIGNS;
                    for i in 0..RECORDS {
                        b.inject(
                            step as u64 * 10,
                            p,
                            PortId(0),
                            Message::data([c, k as i64, i as i64]),
                        );
                    }
                    b.inject(
                        step as u64 * 10 + 5,
                        p,
                        PortId(0),
                        Message::Seal(SealKey::new([("campaign", c)])),
                    );
                }
            }
        },
    );
}

/// Seals (and records) duplicated around the covered records by the
/// at-least-once channel fault RNG: duplicate votes must stay idempotent
/// and every partition still releases exactly once. Outcomes are compared
/// across worker counts and schedulers — the per-wire fault schedule
/// makes them reproducible.
#[test]
fn duplicated_seals_and_records_release_exactly_once() {
    const PRODUCERS: usize = 3;
    const CAMPAIGNS: i64 = 4;
    const RECORDS: usize = 5;

    let run = |workers: usize, tuning: ParTuning| {
        let sink = CollectorSink::new();
        let mut par = ParBuilder::new(23)
            .with_workers(workers)
            .with_tuning(tuning)
            .expect("valid tuning");
        let consumer = par.add_instance(Box::new(SealingConsumer {
            mgr: SealManager::new(ProducerRegistry::all_produce(0..PRODUCERS)),
        }));
        let s = par.add_instance(Box::new(sink.clone()));
        blazes::dataflow::backend::ExecutorBuilder::connect_with(
            &mut par,
            consumer,
            PortId(0),
            s,
            PortId(0),
            ChannelConfig::instant(),
        );
        for k in 0..PRODUCERS {
            let p = par.add_instance(echo());
            // Both records AND seals replay on this wire.
            blazes::dataflow::backend::ExecutorBuilder::connect_with(
                &mut par,
                p,
                PortId(0),
                consumer,
                PortId(k),
                ChannelConfig::lan().with_duplicates(0.4),
            );
            for c in 0..CAMPAIGNS {
                for i in 0..RECORDS {
                    par.inject(0, p, PortId(0), Message::data([c, k as i64, i as i64]));
                }
                par.inject(
                    1,
                    p,
                    PortId(0),
                    Message::Seal(SealKey::new([("campaign", c)])),
                );
            }
        }
        let stats = par.build().run();
        (sink.message_set(), sink.len(), stats.duplicates)
    };

    let baseline = run(2, ParTuning::default());
    assert!(baseline.2 > 0, "duplicates must have fired");
    assert_eq!(
        baseline.1, CAMPAIGNS as usize,
        "each campaign released exactly once despite duplicate seals"
    );
    // Release sizes include duplicated records (at-least-once is visible
    // to a non-idempotent consumer), but the per-wire fault schedule
    // makes the outcome identical across worker counts and schedulers.
    for (variant, tuning) in scheduler_variants() {
        for workers in [2usize, 4] {
            assert_eq!(
                run(workers, tuning),
                baseline,
                "{variant}: duplicated-seal outcome diverged at {workers} workers"
            );
        }
    }
}
