//! Property tests for the lock-free trace ring ([`blazes::obs::TraceRing`]):
//! concurrent-writer wraparound accounting, overflow drop-counting, and
//! tear-free snapshots taken while writers are mid-push.
//!
//! Events carry a checksum over their other words so a torn read — a
//! payload mixing two different writes — is always detectable.

use blazes::obs::{Event, EventKind, TraceRing};
use proptest::prelude::*;

fn checksum(ts: u64, dur: u64, a: u64) -> u64 {
    ts.wrapping_mul(31)
        .wrapping_add(dur.wrapping_mul(17))
        .wrapping_add(a)
        ^ 0x5eed_5eed_5eed_5eed
}

/// A self-checking event: `a` carries the writer id, `b` a checksum over
/// the remaining words.
fn ev(writer: u64, i: u64) -> Event {
    let ts = writer * 1_000_000 + i + 1;
    Event {
        ts_ns: ts,
        dur_ns: i,
        kind: EventKind::Delivery,
        a: writer,
        b: checksum(ts, i, writer),
    }
}

fn is_consistent(e: &Event) -> bool {
    e.b == checksum(e.ts_ns, e.dur_ns, e.a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every concurrent push is accounted for exactly once across
    /// wraparound: it either survives into the quiesced snapshot or was
    /// counted by `overwritten` (lap eviction / stalled-writer drop).
    #[test]
    fn concurrent_wraparound_accounts_for_every_push(
        writers in 2usize..5,
        per_writer in 1u64..400,
        cap_bits in 3u32..8,
    ) {
        let ring = TraceRing::new(1 << cap_bits, 0);
        std::thread::scope(|s| {
            for w in 0..writers {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..per_writer {
                        ring.push(ev(w as u64, i));
                    }
                });
            }
        });
        let total = writers as u64 * per_writer;
        prop_assert_eq!(ring.pushed(), total);
        let snap = ring.snapshot();
        prop_assert!(snap.len() <= ring.capacity());
        prop_assert_eq!(snap.len() as u64 + ring.overwritten(), total);
        prop_assert!(snap.iter().all(is_consistent));
    }

    /// Single-writer overflow drops exactly the lapped events, keeps the
    /// newest `capacity` in order, and counts every drop.
    #[test]
    fn overflow_drops_oldest_and_counts(extra in 0u64..100) {
        let ring = TraceRing::new(8, 0);
        let total = 8 + extra;
        for i in 0..total {
            ring.push(ev(0, i));
        }
        let snap = ring.snapshot();
        prop_assert_eq!(snap.len() as u64, 8);
        prop_assert_eq!(ring.overwritten(), extra);
        prop_assert_eq!(snap.first().map(|e| e.dur_ns), Some(extra));
        prop_assert_eq!(snap.last().map(|e| e.dur_ns), Some(total - 1));
        prop_assert!(snap.iter().all(is_consistent));
    }

    /// Snapshots racing live writers never contain a torn event, and a
    /// concurrent drain never double-reports: post-quiescence, drained
    /// events plus survivors plus overwrites cover every push.
    #[test]
    fn snapshot_never_tears_under_concurrent_writes(
        writers in 1usize..4,
        per_writer in 50u64..300,
    ) {
        let ring = TraceRing::new(64, 0);
        let done = std::sync::atomic::AtomicBool::new(false);
        let snaps = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..writers {
                let ring = &ring;
                handles.push(s.spawn(move || {
                    for i in 0..per_writer {
                        ring.push(ev(w as u64 + 1, i));
                    }
                }));
            }
            let reader = s.spawn(|| {
                let mut snaps = 0u64;
                // do-while: always at least one snapshot, plus one final
                // pass after the writers quiesce.
                loop {
                    for e in ring.snapshot() {
                        assert!(is_consistent(&e), "torn event escaped the seqlock");
                    }
                    snaps += 1;
                    if done.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                }
                snaps
            });
            for h in handles {
                h.join().expect("writer thread");
            }
            done.store(true, std::sync::atomic::Ordering::Relaxed);
            reader.join().expect("reader thread")
        });
        prop_assert!(snaps > 0, "reader never got a snapshot in");
        let total = writers as u64 * per_writer;
        prop_assert_eq!(ring.pushed(), total);
        prop_assert_eq!(ring.snapshot().len() as u64 + ring.overwritten(), total);
    }
}
