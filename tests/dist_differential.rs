//! The differential proof obligation, over a real byte boundary: the
//! multi-process backend forks worker processes and routes every
//! cross-partition message through the framed Unix-socket wire, so
//!
//! * the **uncoordinated** ad-report run diverges under injected wire
//!   faults (duplicates, reorder, partition windows) — different process
//!   counts answer the same queries differently;
//! * the **auto-coordinated** run is bit-identical across `{1,2,4}`
//!   processes × `{stealing, static}` in-process schedulers *and* matches
//!   the discrete-event simulator — seal votes genuinely cross processes;
//! * the **confluent** wordcount crosses the wire rewrite-free: zero
//!   injected coordination operators, counts equal to the single-process
//!   baseline.

use blazes::apps::adreport::{AdScenario, StrategyKind};
use blazes::apps::autocoord::{response_digests, run_ad_auto, run_wordcount_auto};
use blazes::apps::dist::{dist_registry, encode_ad_params, AD_TOPOLOGY};
use blazes::apps::queries::ReportQuery;
use blazes::apps::wordcount::{run_wordcount, WordcountScenario};
use blazes::apps::workload::{CampaignPlacement, ClickWorkload, TweetWorkload};
use blazes::dataflow::backend::BackendSpec;
use blazes::dataflow::dist::{
    libtest_worker_command, run_dist, worker_main, ChaosSpec, DistError, DistSpec, DistTuning,
    FailureCause, Kill, KillPoint, Transport,
};

/// Worker-process entry point. `run_dist` re-executes this test binary
/// selecting exactly this test; without [`blazes::dataflow::dist::ENV_PARENT`]
/// in the environment it is inert, so normal test sweeps skip straight
/// through it.
#[test]
#[ignore = "dist worker entry: only runs when spawned by a dist parent"]
fn dist_worker_entry() {
    let _ = worker_main(&dist_registry());
}

fn scenario(seed: u64) -> AdScenario {
    AdScenario {
        workload: ClickWorkload {
            ad_servers: 3,
            entries_per_server: 60,
            batch_size: 20,
            sleep_between_batches: 50_000,
            entry_interval: 200,
            campaigns: 6,
            ads_per_campaign: 4,
            placement: CampaignPlacement::Spread,
            seed: 5,
        },
        query: ReportQuery::Campaign,
        replicas: 3,
        requests: 8,
        tick_every: 1,
        // At-least-once wire: clicks replay on their (now inter-process)
        // wires, driven by the shared per-wire fault RNG.
        click_duplicates: 0.2,
        requests_via_analyst: true,
        seed,
        ..AdScenario::default()
    }
}

/// A dist spec with frame-level faults on: reorder across wires and a
/// periodic partition window, on top of the per-wire loss/duplicate RNG.
fn dist_spec(processes: usize, stealing: bool, seed: u64) -> DistSpec {
    let mut spec = DistSpec::new("", "", libtest_worker_command("dist_worker_entry"));
    spec.processes = processes;
    spec.workers_per_process = 2;
    spec.stealing = stealing;
    spec.seed = seed;
    spec.reorder_prob = 0.1;
    spec.partition = Some((40, 6));
    spec
}

/// The paper's anomaly, now genuinely distributed: the same uncoordinated
/// scenario under the same fault seed answers queries differently
/// depending on how it is partitioned across processes — or replicas
/// disagree within a single run.
#[test]
fn uncoordinated_adreport_diverges_over_the_wire() {
    let reg = dist_registry();
    let mut diverged = false;
    'seeds: for seed in 0..5u64 {
        let sc = AdScenario {
            strategy: StrategyKind::Uncoordinated,
            ..scenario(seed)
        };
        let mut digests = Vec::new();
        for processes in [1usize, 2, 4] {
            let mut spec = dist_spec(processes, true, seed);
            spec.topology = AD_TOPOLOGY.to_string();
            spec.params = encode_ad_params(&sc, false, false);
            let run = run_dist(&spec, &reg).expect("distributed uncoordinated run");
            let sinks: Vec<_> = run.sinks.into_iter().map(|(_, s)| s).collect();
            let d = response_digests(&sinks);
            if d.iter().any(|x| x != &d[0]) {
                diverged = true; // replicas disagree within one run
                break 'seeds;
            }
            digests.push(d);
        }
        if digests.windows(2).any(|w| w[0] != w[1]) {
            diverged = true; // same seed, different partitioning, different answers
            break 'seeds;
        }
    }
    assert!(
        diverged,
        "uncoordinated distributed runs stayed consistent across every seed and \
         process count — the anomaly the coordination repairs did not manifest"
    );
}

/// The repaired run, over the wire: analysis-injected seal gates make
/// every process count and scheduler produce digests bit-identical to the
/// simulator, with votes and releases crossing real process boundaries.
#[test]
fn autocoord_adreport_is_bit_identical_across_process_counts() {
    let sc = scenario(3);
    let (sim_res, _) = run_ad_auto(&sc, &BackendSpec::Sim);
    let reference = response_digests(&sim_res.responses);
    assert!(
        reference.iter().any(|d| !d.is_empty()),
        "queries must produce answers"
    );

    for processes in [1usize, 2, 4] {
        for stealing in [true, false] {
            let spec = dist_spec(processes, stealing, sc.seed);
            let (res, report) = run_ad_auto(&sc, &BackendSpec::Dist(spec));
            assert_eq!(
                report.stats.injected_operators, sc.replicas,
                "one seal gate per replica ({processes} processes, stealing={stealing})"
            );
            let stats = res.stats.as_dist().expect("dist stats");
            assert_eq!(stats.processes, processes);
            if processes > 1 {
                assert!(
                    stats.frames_routed > 0,
                    "a partitioned run must route frames over the wire"
                );
            }
            assert_eq!(
                response_digests(&res.responses),
                reference,
                "digest diverged at {processes} processes, stealing={stealing}"
            );
        }
    }
}

/// Crash tolerance: SIGKILLing any single worker mid-run must leave the
/// coordinated ad-report digests bit-identical to the crash-free
/// simulator reference — respawn, deterministic replay, ingest dedup and
/// seal revotes absorb the loss completely.
#[test]
fn chaos_kill_of_any_worker_keeps_coordinated_digests_bit_identical() {
    let sc = scenario(3);
    let (sim_res, _) = run_ad_auto(&sc, &BackendSpec::Sim);
    let reference = response_digests(&sim_res.responses);

    for processes in [2usize, 4] {
        for victim in 0..processes {
            let mut spec = dist_spec(processes, true, sc.seed);
            // Fire once real traffic has reached the victim, so the
            // respawned incarnation must be rehydrated by log replay.
            spec.chaos = ChaosSpec {
                kills: vec![Kill {
                    worker: victim,
                    point: KillPoint::RoutedFrames(3),
                }],
            };
            let (res, _) = run_ad_auto(&sc, &BackendSpec::Dist(spec));
            let stats = res.stats.as_dist().expect("dist stats");
            assert!(
                stats.respawns >= 1,
                "the kill of worker {victim}/{processes} never fired"
            );
            assert_eq!(
                response_digests(&res.responses),
                reference,
                "digest diverged after killing worker {victim} of {processes}"
            );
        }
    }
}

/// The same differential over loopback TCP instead of Unix sockets: the
/// transport is interchangeable, so the coordinated digests still match
/// the simulator bit for bit.
#[test]
fn tcp_transport_carries_the_coordinated_differential() {
    let sc = scenario(3);
    let (sim_res, _) = run_ad_auto(&sc, &BackendSpec::Sim);
    let reference = response_digests(&sim_res.responses);

    let mut spec = dist_spec(2, true, sc.seed);
    spec.tuning = DistTuning::default().with_transport(Transport::Tcp);
    let (res, _) = run_ad_auto(&sc, &BackendSpec::Dist(spec));
    let stats = res.stats.as_dist().expect("dist stats");
    assert!(stats.frames_routed > 0, "frames must cross the TCP wire");
    assert_eq!(
        response_digests(&res.responses),
        reference,
        "digest diverged over loopback TCP"
    );
}

/// Recovery is bounded: with a respawn budget of zero, the first kill
/// becomes the run's verdict — a forensic `WorkerFailed` naming the
/// worker and the exhausted budget, not a stall.
#[test]
fn exhausted_respawn_budget_fails_with_a_worker_verdict() {
    let sc = AdScenario {
        strategy: StrategyKind::Uncoordinated,
        ..scenario(1)
    };
    let mut spec = dist_spec(2, true, sc.seed);
    spec.topology = AD_TOPOLOGY.to_string();
    spec.params = encode_ad_params(&sc, false, false);
    spec.tuning = DistTuning::default().with_respawn_budget(0);
    spec.chaos = ChaosSpec {
        kills: vec![Kill {
            worker: 1,
            point: KillPoint::Heartbeats(1),
        }],
    };
    match run_dist(&spec, &dist_registry()) {
        Err(DistError::WorkerFailed { worker, cause }) => {
            assert_eq!(worker, 1);
            assert!(
                matches!(cause, FailureCause::BudgetExhausted { respawns: 0, .. }),
                "unexpected cause: {cause:?}"
            );
        }
        other => panic!("expected a budget-exhausted worker verdict, got {other:?}"),
    }
}

/// The minimality half, over the wire: the sealed wordcount is CALM-safe,
/// so the pass injects nothing and the distributed run still commits
/// exactly the simulator baseline's counts.
#[test]
fn confluent_wordcount_crosses_the_wire_rewrite_free() {
    let sc = WordcountScenario {
        workers: 3,
        workload: TweetWorkload {
            vocabulary: 60,
            batches: 5,
            tweets_per_batch: 12,
            ..TweetWorkload::default()
        },
        seed: 29,
        ..WordcountScenario::default()
    };
    let baseline = run_wordcount(&sc);

    for processes in [2usize, 4] {
        let spec = dist_spec(processes, true, sc.seed);
        let (run, outcome) = run_wordcount_auto(&sc, true, &BackendSpec::Dist(spec));
        assert!(outcome.is_rewrite_free(), "{outcome:?}");
        assert_eq!(outcome.rewrite.injected_operators, 0);
        let stats = run.stats.as_dist().expect("dist stats");
        assert!(
            stats.frames_routed > 0,
            "the wordcount must actually cross the wire"
        );
        assert_eq!(
            run.counts(),
            baseline.counts(),
            "{processes} processes drifted from the simulator baseline"
        );
    }
}
