//! Differential tests for the Bloom evaluation engine: every optimized
//! mode — semi-naive and worker-sharded at several widths — must produce
//! **bit-identical** tick outputs and table state to the naive oracle, on
//! every example module shipped with the repo. This is the Bloom-engine
//! analogue of `par_differential`: the optimizations exploit monotonicity
//! (CALM) inside a stratum, and the ordered merge at stratum boundaries
//! restores determinism, so digests must never depend on the engine.

use blazes::bloom::interp::{EvalMode, ModuleInstance, TickOutput};
use blazes::bloom::parse_module;
use blazes::dataflow::value::{Tuple, Value};
use std::collections::BTreeMap;

/// Every engine variant a module must agree under.
fn engine_variants() -> Vec<(&'static str, EvalMode)> {
    vec![
        ("naive", EvalMode::Naive),
        ("semi-naive", EvalMode::SemiNaive),
        ("sharded-1", EvalMode::Sharded { workers: 1 }),
        ("sharded-2", EvalMode::Sharded { workers: 2 }),
        ("sharded-4", EvalMode::Sharded { workers: 4 }),
    ]
}

/// Load one of the checked-in example modules.
fn example(name: &str) -> String {
    let path = format!("{}/examples/blz/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn pairs(values: &[(i64, i64)]) -> Vec<Tuple> {
    values
        .iter()
        .map(|&(a, b)| Tuple(vec![Value::Int(a), Value::Int(b)]))
        .collect()
}

fn singles(values: &[i64]) -> Vec<Tuple> {
    values.iter().map(|&a| Tuple(vec![Value::Int(a)])).collect()
}

/// Run a module under one mode over a scripted sequence of ticks; return
/// the digest: every tick's full output map plus the final contents of
/// every persistent table.
fn digest(
    text: &str,
    mode: EvalMode,
    ticks: &[BTreeMap<String, Vec<Tuple>>],
) -> (Vec<TickOutput>, BTreeMap<String, Vec<Tuple>>) {
    let m = parse_module(text).expect("example must parse");
    let tables: Vec<String> = m
        .collections
        .iter()
        .filter(|c| c.kind.is_persistent())
        .map(|c| c.name.clone())
        .collect();
    let mut inst = ModuleInstance::with_mode(m, mode).expect("example must stratify");
    let outs: Vec<TickOutput> = ticks
        .iter()
        .map(|inp| inst.tick(inp.clone()).expect("tick must succeed"))
        .collect();
    let finals = tables
        .into_iter()
        .map(|t| {
            let rows = inst.table(&t);
            (t, rows)
        })
        .collect();
    (outs, finals)
}

/// Assert all engine variants agree on a module/workload, and that the
/// optimized modes do not derive more than the oracle.
fn assert_all_modes_agree(label: &str, text: &str, ticks: &[BTreeMap<String, Vec<Tuple>>]) {
    let reference = digest(text, EvalMode::Naive, ticks);
    for (name, mode) in engine_variants() {
        let got = digest(text, mode, ticks);
        assert_eq!(
            reference, got,
            "{label}: engine {name} diverged from the naive oracle"
        );
    }
}

#[test]
fn transitive_closure_digests_are_engine_independent() {
    // Chain + extra chords, split across two ticks so the table-backed
    // edge relation accumulates.
    let text = example("transitive_closure.blz");
    let tick1: Vec<(i64, i64)> = (0..30).map(|i| (i, i + 1)).collect();
    let tick2: Vec<(i64, i64)> = (0..10).map(|i| (i * 3, i * 2 + 5)).collect();
    let ticks = vec![
        BTreeMap::from([("edge".to_string(), pairs(&tick1))]),
        BTreeMap::from([("edge".to_string(), pairs(&tick2))]),
    ];
    assert_all_modes_agree("transitive_closure", &text, &ticks);
}

#[test]
fn triangle_digests_are_engine_independent() {
    let text = example("triangle.blz");
    // A clustered random-ish graph with actual triangles.
    let edges: Vec<(i64, i64)> = (0..120)
        .map(|i| (i % 20, (i * 7 + 3) % 20))
        .chain([(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)])
        .collect();
    let ticks = vec![BTreeMap::from([("edge".to_string(), pairs(&edges))])];
    assert_all_modes_agree("triangle", &text, &ticks);
}

#[test]
fn ad_report_digests_are_engine_independent() {
    let text = example("ad_report.blz");
    let clicks: Vec<(i64, i64)> = (0..60).map(|i| (i % 12, i % 5)).collect();
    let ticks = vec![
        BTreeMap::from([
            ("click".to_string(), pairs(&clicks)),
            ("request".to_string(), singles(&[1, 3, 5])),
        ]),
        BTreeMap::from([("request".to_string(), singles(&[2, 4, 11]))]),
    ];
    assert_all_modes_agree("ad_report", &text, &ticks);
}

#[test]
fn stratified_negation_digests_are_engine_independent() {
    // Negation + aggregation above a recursive stratum — the hardest mix:
    // the optimized engines must still evaluate nonmonotonic rules exactly
    // once per stratum over complete lower strata.
    let text = r#"
module Strat {
  input edge(src, dst)
  input probe(src, dst)
  output unreached(src, dst)
  output fanout(src, n)
  table e(src, dst)
  scratch p(src, dst)
  e <= edge
  p <= e
  p <= (p * e) on (p.dst = e.src) -> (p.src, e.dst)
  unreached <= probe not in p on (probe.src = p.src, probe.dst = p.dst)
  fanout <= p group by (p.src) agg count(*) as n having n < 50
}
"#;
    let edges: Vec<(i64, i64)> = (0..25).map(|i| (i, i + 1)).collect();
    let probes: Vec<(i64, i64)> = vec![(0, 10), (10, 0), (3, 26), (24, 25)];
    let ticks = vec![BTreeMap::from([
        ("edge".to_string(), pairs(&edges)),
        ("probe".to_string(), pairs(&probes)),
    ])];
    assert_all_modes_agree("stratified_negation", text, &ticks);
}

#[test]
fn sharded_crosses_the_inline_threshold() {
    // Enough delta tuples that sharded evaluation actually fans out to
    // worker threads (the engine runs probes inline below 256 tuples) —
    // the digest must still match the oracle exactly.
    let text = example("transitive_closure.blz");
    let edges: Vec<(i64, i64)> = (0..500).map(|i| (i % 250, (i * 11 + 1) % 250)).collect();
    let ticks = vec![BTreeMap::from([("edge".to_string(), pairs(&edges))])];
    let reference = digest(&text, EvalMode::SemiNaive, &ticks);
    for workers in [2usize, 4, 8] {
        let got = digest(&text, EvalMode::Sharded { workers }, &ticks);
        assert_eq!(reference, got, "sharded x{workers} diverged");
    }
}

#[test]
fn semi_naive_counters_beat_naive_on_recursion() {
    let text = example("transitive_closure.blz");
    let edges: Vec<(i64, i64)> = (0..60).map(|i| (i, i + 1)).collect();
    let inputs = BTreeMap::from([("edge".to_string(), pairs(&edges))]);

    let mut naive =
        ModuleInstance::with_mode(parse_module(&text).unwrap(), EvalMode::Naive).unwrap();
    naive.tick(inputs.clone()).unwrap();
    let mut semi =
        ModuleInstance::with_mode(parse_module(&text).unwrap(), EvalMode::SemiNaive).unwrap();
    semi.tick(inputs).unwrap();

    let (n, s) = (naive.last_tick_stats(), semi.last_tick_stats());
    assert!(
        s.derivations * 10 < n.derivations,
        "semi-naive should derive >10x fewer tuples: naive {} vs semi {}",
        n.derivations,
        s.derivations
    );
    assert!(
        s.join_probes * 100 < n.join_probes,
        "hash joins should probe >100x fewer pairs: naive {} vs semi {}",
        n.join_probes,
        s.join_probes
    );
}
