//! Property-based tests for the dist backend's recovery protocol
//! ([`blazes::dataflow::dist::recover`]): whatever the crash point and
//! however the respawned producer permutes its re-emissions, the
//! two-layer ingest filter delivers every tuple exactly once; and the
//! ack/trim discipline on egress logs never drops a frame that has not
//! been acknowledged.

use blazes::dataflow::dist::recover::{
    fnv1a, EgressLog, ReplayDedup, ReplayLog, SeqLedger, SeqVerdict,
};
use proptest::collection;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Sorted multiset of content values, for order-insensitive comparison.
fn multiset(items: &[u8]) -> BTreeMap<u8, usize> {
    let mut m = BTreeMap::new();
    for &b in items {
        *m.entry(b).or_insert(0) += 1;
    }
    m
}

/// Run one content value through the coordinator's two-layer filter:
/// sequence ledger first, content multiset second. Returns whether the
/// frame would be routed onward.
fn ingest(
    seq_ledger: &mut SeqLedger,
    dedup: &mut ReplayDedup,
    delivered_hashes: &mut Vec<u64>,
    wire: u64,
    seq: u64,
    content: u8,
) -> bool {
    match seq_ledger.accept(wire, seq) {
        SeqVerdict::Duplicate => false,
        SeqVerdict::Gap { expected } => panic!("unexpected gap: seq {seq}, expected {expected}"),
        SeqVerdict::Fresh => {
            let hash = fnv1a(&[content]);
            if dedup.admit(wire, hash) {
                delivered_hashes.push(hash);
                true
            } else {
                false
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A producer crashes after delivering an arbitrary prefix, respawns,
    /// and re-emits the whole stream in an arbitrary permutation (then
    /// resends it once more, as a reconnect would). The filter delivers
    /// exactly the original multiset — nothing lost, nothing doubled.
    #[test]
    fn replay_after_crash_is_exactly_once(
        stream in collection::vec(0u8..8, 1..24),
        crash_at_seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        let wire = 7u64;
        let crash_at = (crash_at_seed % (stream.len() as u64 + 1)) as usize;
        let mut seq_ledger = SeqLedger::new();
        let mut dedup = ReplayDedup::new();
        let mut hashes = Vec::new();
        let mut delivered: Vec<u8> = Vec::new();

        // First incarnation: the prefix before the crash.
        for (seq, &content) in stream[..crash_at].iter().enumerate() {
            if ingest(&mut seq_ledger, &mut dedup, &mut hashes, wire, seq as u64, content) {
                delivered.push(content);
            }
        }

        // Crash + respawn: arm the content filter with what the wire
        // already delivered, reset its sequence expectations.
        dedup.arm(wire, &hashes);
        seq_ledger.reset_wires(&[wire]);

        // The fresh incarnation recomputes everything and re-emits the
        // full stream in some permutation (same multiset).
        let mut replay: Vec<u8> = stream.clone();
        let mut rot = perm_seed;
        for i in (1..replay.len()).rev() {
            rot = rot.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            replay.swap(i, (rot % (i as u64 + 1)) as usize);
        }
        for (seq, &content) in replay.iter().enumerate() {
            if ingest(&mut seq_ledger, &mut dedup, &mut hashes, wire, seq as u64, content) {
                delivered.push(content);
            }
        }
        // A reconnect resend repeats the same seqs byte-for-byte; the
        // sequence ledger must swallow all of it.
        for (seq, &content) in replay.iter().enumerate() {
            let routed = ingest(&mut seq_ledger, &mut dedup, &mut hashes, wire, seq as u64, content);
            prop_assert!(!routed, "resend delivered seq {seq} twice");
        }

        prop_assert_eq!(multiset(&delivered), multiset(&stream));
        prop_assert_eq!(dedup.pending(), 0, "armed filter should be fully consumed");
    }

    /// Acking up to sequence `k` on a wire trims exactly the frames with
    /// `seq <= k` on that wire: everything unacked stays replayable, in
    /// order, whatever the interleaving of appends and acks.
    #[test]
    fn ack_trim_never_drops_an_unacked_frame(
        ops in collection::vec((0u64..3, any::<bool>(), 0u64..40), 1..40),
    ) {
        let mut log = EgressLog::new();
        let mut next_seq = [0u64; 3];
        // Reference model: an ack trims exactly the frames present at ack
        // time with `seq <= upto` on that wire — nothing more, ever.
        let mut model: Vec<(u64, u64)> = Vec::new();

        for (wire, is_ack, upto) in ops {
            if is_ack {
                log.ack(wire, upto);
                model.retain(|&(w, s)| w != wire || s > upto);
            } else {
                let seq = next_seq[wire as usize];
                next_seq[wire as usize] += 1;
                log.append(wire, seq, vec![wire as u8, seq as u8]);
                model.push((wire, seq));
            }
            let got: Vec<(u64, u64)> = log.unacked().map(|f| (f.wire, f.seq)).collect();
            prop_assert_eq!(&got, &model);
        }
    }

    /// The sequence ledger yields `Fresh` exactly once per sequence
    /// number however often a frame is resent, and flags any skip.
    #[test]
    fn seq_ledger_is_fresh_exactly_once_and_gap_safe(
        len in 1u64..30,
        resends in collection::vec((any::<u64>(), 1usize..4), 0..8),
    ) {
        let wire = 1u64;
        let mut ledger = SeqLedger::new();
        let mut extra: BTreeMap<u64, usize> = BTreeMap::new();
        for (pos_seed, times) in resends {
            *extra.entry(pos_seed % len).or_insert(0) += times;
        }
        let mut fresh = 0u64;
        for seq in 0..len {
            // Deliver the frame once, plus any scheduled resends (a
            // resend repeats an already-accepted seq → Duplicate).
            let times = 1 + extra.get(&seq).copied().unwrap_or(0);
            for attempt in 0..times {
                match ledger.accept(wire, seq) {
                    SeqVerdict::Fresh => {
                        prop_assert_eq!(attempt, 0);
                        fresh += 1;
                    }
                    SeqVerdict::Duplicate => prop_assert!(attempt > 0),
                    SeqVerdict::Gap { .. } => prop_assert!(false, "contiguous stream flagged a gap"),
                }
            }
        }
        prop_assert_eq!(fresh, len);
        prop_assert_eq!(ledger.high(wire), Some(len - 1));
        // Skipping ahead is a protocol violation, not a duplicate.
        prop_assert_eq!(
            ledger.accept(wire, len + 1),
            SeqVerdict::Gap { expected: len }
        );
    }

    /// `ReplayLog::tail(k)` replays exactly the suffix from frame `k`, in
    /// the original order, byte for byte.
    #[test]
    fn replay_log_tail_replays_the_exact_suffix(
        frames in collection::vec(collection::vec(any::<u8>(), 0..6), 0..16),
        from_seed in any::<u64>(),
    ) {
        let mut log = ReplayLog::new();
        for f in &frames {
            log.append(f.clone());
        }
        let from = from_seed % (frames.len() as u64 + 1);
        let got: Vec<Vec<u8>> = log.tail(from).map(<[u8]>::to_vec).collect();
        prop_assert_eq!(&got[..], &frames[from as usize..]);
        prop_assert_eq!(log.len(), frames.len() as u64);
    }
}
