//! Integration test: the Storm wordcount case study end to end (paper
//! Sections VI-A and VIII-A) — spec file, grey-box adapter, analysis,
//! coordination synthesis and runtime behavior must all agree.

use blazes::apps::casestudy::wordcount_graph;
use blazes::apps::wordcount::{run_wordcount, WordcountScenario};
use blazes::apps::workload::TweetWorkload;
use blazes::core::analysis::Analyzer;
use blazes::core::label::Label;
use blazes::core::spec::Spec;
use blazes::core::strategy::{plan_for, residual_labels, Strategy};

const WORDCOUNT_SPEC: &str = r#"
# Section VI-A1's annotation file, plus topology sections.
Splitter:
  annotation:
    - { from: tweets, to: words, label: CR }
Count:
  annotation:
    - { from: words, to: counts, label: OW, subscript: [word, batch] }
Commit:
  annotation: { from: counts, to: db, label: CW }
streams:
  - { name: tweets, attrs: [word, batch], to: Splitter.tweets }
connections:
  - { from: Splitter.words, to: Count.words }
  - { from: Count.counts, to: Commit.counts }
sinks:
  - { name: store, from: Commit.db }
"#;

#[test]
fn spec_file_and_adapter_agree() {
    // The same dataflow arrives two ways: via the paper-format spec file
    // and via the Storm grey-box adapter. Labels must match.
    let spec = Spec::parse(WORDCOUNT_SPEC).unwrap();
    let from_spec = spec.to_graph("wordcount").unwrap();
    let spec_label = {
        let out = Analyzer::new(&from_spec).run().unwrap();
        out.sink_label(from_spec.sink_by_name("store").unwrap())
            .cloned()
    };

    let (from_adapter, sink) = wordcount_graph(false);
    let adapter_label = Analyzer::new(&from_adapter)
        .run()
        .unwrap()
        .sink_label(sink)
        .cloned();

    assert_eq!(spec_label, adapter_label);
    assert_eq!(spec_label, Some(Label::Run));
}

#[test]
fn sealed_spec_derives_async() {
    let sealed_spec = WORDCOUNT_SPEC.replace(
        "attrs: [word, batch], to:",
        "attrs: [word, batch], seal: [batch], to:",
    );
    let spec = Spec::parse(&sealed_spec).unwrap();
    let g = spec.to_graph("wordcount").unwrap();
    let out = Analyzer::new(&g).run().unwrap();
    assert_eq!(
        out.sink_label(g.sink_by_name("store").unwrap()),
        Some(&Label::Async)
    );
}

#[test]
fn synthesis_targets_the_count_bolt() {
    let (g, _) = wordcount_graph(false);
    let plan = plan_for(&g, false).unwrap();
    let count = g.component_by_name("Count").unwrap();
    assert!(plan
        .strategies
        .iter()
        .any(|s| matches!(s, Strategy::Ordering { component, .. } if *component == count)));
    // Deploying the plan restores a consistent program.
    let residual = residual_labels(&g, &plan).unwrap();
    assert!(residual.iter().all(|(_, l)| !l.is_anomalous()));
}

#[test]
fn sealed_plan_avoids_global_coordination() {
    let (g, _) = wordcount_graph(true);
    let plan = plan_for(&g, false).unwrap();
    assert!(plan.needs_sealing());
    assert!(!plan.needs_ordering(), "sealing replaces ordering entirely");
}

fn scenario(transactional: bool, seed: u64) -> WordcountScenario {
    WordcountScenario {
        workers: 4,
        transactional,
        seed,
        workload: TweetWorkload {
            batches: 6,
            tweets_per_batch: 12,
            vocabulary: 40,
            ..TweetWorkload::default()
        },
        ..WordcountScenario::default()
    }
}

#[test]
fn runtime_confirms_the_analysis_verdict() {
    // The analysis says the *sealed* topology is deterministic (Async): the
    // committed counts must be identical across delivery interleavings.
    let counts: Vec<_> = (0..4)
        .map(|seed| run_wordcount(&scenario(false, seed)).counts())
        .collect();
    for c in &counts[1..] {
        assert_eq!(
            &counts[0], c,
            "sealed topology must be interleaving-insensitive"
        );
    }
}

#[test]
fn transactional_pays_for_equivalent_outputs() {
    let sealed = run_wordcount(&scenario(false, 11));
    let tx = run_wordcount(&scenario(true, 11));
    assert_eq!(sealed.counts(), tx.counts(), "identical committed outputs");
    assert!(
        tx.stats.end_time > sealed.stats.end_time,
        "the transactional topology must take longer ({} vs {})",
        tx.stats.end_time,
        sealed.stats.end_time
    );
}
