//! Property-based tests for the distributed backend's wire codec: every
//! frame round-trips byte-exactly through [`encode`] → [`FrameDecoder`]
//! regardless of how the stream is chunked, and corruption (garbage
//! prefixes, flipped bytes, oversized lengths, truncation) never panics
//! the decoder or desynchronizes it past the damaged region.

use blazes::dataflow::dist::wire::{encode, Frame, FrameDecoder, WireError, MAGIC, MAX_FRAME};
use blazes::dataflow::message::{Message, SealKey};
use blazes::dataflow::value::{Tuple, Value};
use proptest::collection;
use proptest::prelude::*;

/// Short strings mixing ASCII, separators the param codec uses, and
/// multi-byte UTF-8 — the cases most likely to break length accounting.
fn small_string() -> impl Strategy<Value = String> {
    collection::vec(
        prop_oneof![
            Just('a'),
            Just('B'),
            Just('0'),
            Just(' '),
            Just('='),
            Just('\n'),
            Just('é'),
            Just('λ'),
            Just('雪'),
        ],
        0..8,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        small_string().prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn message() -> impl Strategy<Value = Message> {
    prop_oneof![
        collection::vec(value(), 0..5).prop_map(|vs| Message::Data(Tuple(vs))),
        collection::vec((small_string(), value()), 0..4)
            .prop_map(|parts| Message::Seal(SealKey { parts })),
        Just(Message::Eos),
    ]
}

/// Any frame the protocol can carry, including deeply structured payloads.
fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(index, epoch, resume_recv)| {
            Frame::Hello {
                index,
                epoch,
                resume_recv,
            }
        }),
        (
            (small_string(), small_string(), any::<u64>(), any::<u32>()),
            (any::<u32>(), any::<u32>(), any::<bool>(), any::<bool>()),
            (any::<bool>(), any::<u32>(), any::<u32>()),
        )
            .prop_map(
                |(
                    (topology, params, seed, processes),
                    (index, workers, stealing, speculation),
                    (trace, epoch, heartbeat_ms),
                )| {
                    Frame::Plan {
                        topology,
                        params,
                        seed,
                        processes,
                        index,
                        workers,
                        stealing,
                        speculation,
                        trace,
                        epoch,
                        heartbeat_ms,
                    }
                }
            ),
        (any::<u64>(), any::<u64>(), message()).prop_map(|(wire, seq, msg)| Frame::Data {
            wire,
            seq,
            msg
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(sent, recv)| Frame::Idle { sent, recv }),
        any::<u64>().prop_map(|nonce| Frame::Probe { nonce }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
            |(nonce, sent, recv, idle)| Frame::ProbeAck {
                nonce,
                sent,
                recv,
                idle
            }
        ),
        Just(Frame::Collect),
        (
            any::<u32>(),
            collection::vec((any::<u64>(), message()), 0..5)
        )
            .prop_map(|(sink, entries)| Frame::SinkResult { sink, entries }),
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>()),
        )
            .prop_map(
                |((events, delivered, duplicates), (retransmits, rescue_passes, late))| {
                    Frame::Done {
                        events,
                        delivered,
                        duplicates,
                        retransmits,
                        rescue_passes,
                        late,
                    }
                }
            ),
        Just(Frame::Shutdown),
        small_string().prop_map(|m| Frame::Error { message: m }),
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
            |(epoch, sent, recv, idle)| Frame::Heartbeat {
                epoch,
                sent,
                recv,
                idle,
            }
        ),
        collection::vec((any::<u64>(), any::<u64>()), 0..5).prop_map(|acks| Frame::Ack { acks }),
        (
            any::<u32>(),
            any::<u32>(),
            collection::vec(
                (
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                ),
                0..5,
            ),
        )
            .prop_map(|(pid, tid, events)| Frame::Trace {
                pid,
                tid,
                events: events
                    .into_iter()
                    .map(|(ts, dur, kind, a, b)| [ts, dur, kind, a, b])
                    .collect(),
            }),
    ]
}

fn concat(frames: &[Frame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for f in frames {
        bytes.extend_from_slice(&encode(f));
    }
    bytes
}

/// Byte offsets at which each encoded frame ends within the stream.
fn frame_ends(frames: &[Frame]) -> Vec<usize> {
    let mut ends = Vec::with_capacity(frames.len());
    let mut total = 0;
    for f in frames {
        total += encode(f).len();
        ends.push(total);
    }
    ends
}

/// Drain the decoder to quiescence, tolerating (and counting) errors.
/// Every error path consumes at least the magic, so this terminates.
fn drain_lossy(dec: &mut FrameDecoder) -> (Vec<Frame>, usize) {
    let mut got = Vec::new();
    let mut errors = 0;
    loop {
        match dec.next_frame() {
            Ok(Some(f)) => got.push(f),
            Ok(None) => return (got, errors),
            Err(_) => errors += 1,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame sequence round-trips exactly, whatever the chunking.
    #[test]
    fn round_trips_any_frames_across_any_chunking(
        frames in collection::vec(frame(), 1..7),
        chunk in 1usize..23,
    ) {
        let bytes = concat(&frames);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            while let Some(f) = dec.next_frame().expect("clean stream decodes cleanly") {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// A garbage prefix that cannot contain the magic is skipped without
    /// losing a single following frame or raising an error.
    #[test]
    fn magic_free_garbage_prefix_is_skipped_losslessly(
        garbage in collection::vec(any::<u8>(), 1..24),
        frames in collection::vec(frame(), 1..5),
    ) {
        // Strip the magic's first byte so the junk can never look like a
        // frame boundary, even across the junk/stream seam.
        let mut bytes: Vec<u8> = garbage
            .into_iter()
            .map(|b| if b == MAGIC[0] { !b } else { b })
            .collect();
        bytes.extend_from_slice(&concat(&frames));
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let (got, errors) = drain_lossy(&mut dec);
        prop_assert_eq!(errors, 0);
        prop_assert_eq!(got, frames);
    }

    /// Cutting the stream anywhere yields exactly the frames that fit
    /// before the cut; pushing the remainder completes the sequence. The
    /// decoder never reports an error on a merely-truncated stream.
    #[test]
    fn a_split_stream_yields_an_exact_prefix_then_completes(
        frames in collection::vec(frame(), 1..6),
        cut_seed in any::<u64>(),
    ) {
        let bytes = concat(&frames);
        let ends = frame_ends(&frames);
        #[allow(clippy::cast_possible_truncation)]
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let whole = ends.iter().filter(|&&e| e <= cut).count();

        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..cut]);
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame().expect("truncation is not corruption") {
            got.push(f);
        }
        prop_assert_eq!(&got[..], &frames[..whole]);

        dec.push(&bytes[cut..]);
        while let Some(f) = dec.next_frame().expect("completed stream decodes cleanly") {
            got.push(f);
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Flipping one bit anywhere never panics the decoder, and every frame
    /// that lies entirely before the damaged byte still decodes exactly.
    #[test]
    fn a_flipped_bit_never_panics_and_earlier_frames_survive(
        frames in collection::vec(frame(), 1..6),
        pos_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut bytes = concat(&frames);
        let ends = frame_ends(&frames);
        #[allow(clippy::cast_possible_truncation)]
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let intact = ends.iter().filter(|&&e| e <= pos).count();

        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let (got, _errors) = drain_lossy(&mut dec);
        prop_assert!(got.len() >= intact);
        prop_assert_eq!(&got[..intact], &frames[..intact]);
    }

    /// An oversized length field is rejected as [`WireError::Oversized`]
    /// without allocating, and the decoder resynchronizes on the very next
    /// valid frame.
    #[test]
    fn oversized_lengths_error_then_resync(
        tag in any::<u8>(),
        extra in 1u64..1_000_000,
        frames in collection::vec(frame(), 1..4),
    ) {
        // Keep the bogus header magic-free past byte 0 so resync lands on
        // the real frames deterministically.
        let tag = if tag == MAGIC[0] { !tag } else { tag };
        #[allow(clippy::cast_possible_truncation)]
        let len = (MAX_FRAME as u64 + extra) as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(tag);
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&concat(&frames));

        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        prop_assert_eq!(dec.next_frame(), Err(WireError::Oversized(len as usize)));
        let (got, errors) = drain_lossy(&mut dec);
        prop_assert_eq!(errors, 0);
        prop_assert_eq!(got, frames);
    }
}
