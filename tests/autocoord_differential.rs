//! The differential proof obligation of the `blazes-autocoord` subsystem
//! (paper Sections III & V, end to end):
//!
//! * the **uncoordinated** ad-report run exhibits the paper's
//!   replica-divergence / cross-run nondeterminism anomaly under the
//!   fault-injection RNG — different worker counts and schedulers produce
//!   different answers to the same queries;
//! * the **auto-coordinated** run (analysis → spec → injected seal gates)
//!   is bit-identical across `{1,2,4,8}` workers × `{stealing, static}`
//!   schedulers *and* matches the discrete-event simulator;
//! * the **confluent** wordcount comes through the pass rewrite-free —
//!   zero injected operators, identical outputs — the "minimal" in
//!   minimal coordination.

use blazes::apps::adreport::{run_scenario_parallel, AdScenario, StrategyKind};
use blazes::apps::autocoord::{response_digests, run_ad_auto, run_wordcount_auto, wordcount_spec};
use blazes::apps::queries::ReportQuery;
use blazes::apps::wordcount::{run_wordcount, run_wordcount_parallel, WordcountScenario};
use blazes::apps::workload::{CampaignPlacement, ClickWorkload, TweetWorkload};
use blazes::core::placement::CoordDirective;
use blazes::dataflow::backend::BackendSpec;
use blazes::dataflow::message::Message;
use blazes::dataflow::par::ParTuning;

/// Every configuration the determinism claim must hold across.
fn configs() -> Vec<(usize, ParTuning)> {
    let mut out = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        for stealing in [true, false] {
            out.push((
                workers,
                ParTuning {
                    stealing,
                    ..ParTuning::default()
                },
            ));
        }
    }
    out
}

fn scenario(seed: u64) -> AdScenario {
    AdScenario {
        workload: ClickWorkload {
            ad_servers: 3,
            entries_per_server: 60,
            batch_size: 20,
            sleep_between_batches: 50_000,
            entry_interval: 200,
            campaigns: 6,
            ads_per_campaign: 4,
            placement: CampaignPlacement::Spread,
            seed: 5,
        },
        query: ReportQuery::Campaign,
        replicas: 3,
        requests: 8,
        // Answer every query against the instantaneous state, so the
        // uncoordinated run's race is maximally visible.
        tick_every: 1,
        // The at-least-once fault model: clicks replay on the wire.
        click_duplicates: 0.2,
        // The analyst races with click ingestion on the workers.
        requests_via_analyst: true,
        seed,
        ..AdScenario::default()
    }
}

/// The paper's anomaly, live: without coordination, the same scenario
/// under the same fault seed answers queries differently depending on the
/// scheduler — across configurations, or even between replicas of one run.
#[test]
fn uncoordinated_adreport_diverges_across_schedulers() {
    let mut diverged = false;
    'seeds: for seed in 0..5u64 {
        let mut digests = Vec::new();
        for (workers, tuning) in configs() {
            let res = run_scenario_parallel(
                &AdScenario {
                    strategy: StrategyKind::Uncoordinated,
                    ..scenario(seed)
                },
                workers,
                tuning,
            );
            if !res.responses_consistent() {
                diverged = true; // replicas disagree within one run
                break 'seeds;
            }
            digests.push(response_digests(&res.responses));
        }
        if digests.windows(2).any(|w| w[0] != w[1]) {
            diverged = true; // same seed, different schedule, different answers
            break 'seeds;
        }
    }
    assert!(
        diverged,
        "uncoordinated runs stayed consistent across every seed and scheduler — \
         the anomaly the coordination exists to repair did not manifest"
    );
}

/// The repaired run: the analysis seals the Report replicas, and the
/// injected gates make every configuration produce bit-identical digests
/// — which also equal the simulator's.
#[test]
fn autocoord_adreport_is_deterministic_across_schedulers_and_backends() {
    let sc = scenario(3);
    let (sim_res, sim_report) = run_ad_auto(&sc, &BackendSpec::Sim);
    assert!(
        matches!(
            sim_report.spec.directive_for("Report"),
            Some(CoordDirective::Seal { .. })
        ),
        "CAMPAIGN + campaign punctuations must resolve to the seal protocol"
    );
    let reference = response_digests(&sim_res.responses);
    assert!(
        reference.iter().any(|d| !d.is_empty()),
        "queries must produce answers"
    );

    for (workers, tuning) in configs() {
        let (res, report) = run_ad_auto(&sc, &BackendSpec::Par { workers, tuning });
        assert_eq!(
            report.stats.injected_operators, sc.replicas,
            "one seal gate per replica ({workers} workers, {tuning:?})"
        );
        for s in &res.series {
            assert!(
                s.total() >= res.expected_records,
                "all partitions released ({workers} workers, {tuning:?})"
            );
        }
        assert_eq!(
            response_digests(&res.responses),
            reference,
            "auto-coordinated digest diverged at {workers} workers, {tuning:?}"
        );
    }
}

/// Sanity anchor for the digests themselves: the coordinated answers are
/// real responses, computed from *final* partition contents only.
#[test]
fn autocoord_adreport_answers_from_sealed_partitions() {
    let (res, _) = run_ad_auto(&scenario(3), &BackendSpec::Sim);
    assert!(res.responses_consistent(), "replicas agree");
    let any_response = res
        .responses
        .iter()
        .flat_map(|r| r.messages())
        .find_map(|m| m.as_data().cloned())
        .expect("at least one response");
    assert_eq!(any_response.arity(), 2, "(id, n) response shape");
}

fn wc_scenario() -> WordcountScenario {
    WordcountScenario {
        workers: 3,
        workload: TweetWorkload {
            vocabulary: 60,
            batches: 5,
            tweets_per_batch: 12,
            ..TweetWorkload::default()
        },
        seed: 29,
        ..WordcountScenario::default()
    }
}

/// The minimality half: the sealed wordcount is already CALM-safe, so the
/// coordinated build must inject nothing — on either backend — and commit
/// exactly the uncoordinated baseline's counts.
#[test]
fn confluent_wordcount_is_left_rewrite_free_on_both_backends() {
    let sc = wc_scenario();
    let spec = wordcount_spec(true);
    assert!(
        matches!(
            spec.directive_for("Count"),
            Some(CoordDirective::Seal { .. })
        ),
        "batch punctuations satisfy the analysis: {spec:?}"
    );

    let baseline = run_wordcount(&sc);
    let (sim, outcome) = run_wordcount_auto(&sc, true, &BackendSpec::Sim);
    assert!(outcome.is_rewrite_free(), "{outcome:?}");
    assert_eq!(outcome.rewrite.injected_operators, 0);
    assert_eq!(sim.counts(), baseline.counts());

    let par_baseline = run_wordcount_parallel(&sc, 4, ParTuning::default());
    let (par, outcome) = run_wordcount_auto(&sc, true, &BackendSpec::par(4));
    assert!(outcome.is_rewrite_free(), "{outcome:?}");
    assert_eq!(par.counts(), par_baseline.counts());
    assert_eq!(par.counts(), baseline.counts());
}

/// The unsealed wordcount is *not* confluent: the same pipeline then
/// orders the Count bolt (engine-native transactional commits) and still
/// reproduces the baseline's answers, across worker counts.
#[test]
fn unsealed_wordcount_gets_ordered_and_stays_exact() {
    let sc = wc_scenario();
    let spec = wordcount_spec(false);
    assert!(
        matches!(
            spec.directive_for("Count"),
            Some(CoordDirective::Order { .. })
        ),
        "{spec:?}"
    );
    let baseline = run_wordcount(&sc);
    let (sim, outcome) = run_wordcount_auto(&sc, false, &BackendSpec::Sim);
    assert_eq!(outcome.ordered, vec!["Count".to_string()]);
    assert_eq!(sim.counts(), baseline.counts());
    // Transactional commits arrive in batch order. Checked on the
    // deterministic simulator: commit *decisions* serialize on every
    // backend, but on the threaded backend two committers' already-granted
    // deliveries can interleave on the way into the shared sink, so sink
    // arrival order is not the serialized quantity there.
    let mut max_batch = i64::MIN;
    for m in sim.committed.messages() {
        let Some(t) = m.as_data() else { continue };
        let b = t
            .get(1)
            .and_then(blazes::dataflow::value::Value::as_int)
            .unwrap();
        assert!(b >= max_batch, "batch order violated on the simulator");
        max_batch = max_batch.max(b);
    }

    for workers in [2usize, 4] {
        let (par, _) = run_wordcount_auto(&sc, false, &BackendSpec::par(workers));
        assert_eq!(par.counts(), baseline.counts(), "{workers} workers");
    }
}

/// Digest helper sanity: sorting makes delivery order irrelevant but
/// preserves multiplicity.
#[test]
fn response_digest_is_order_insensitive_but_multiset_exact() {
    use blazes::dataflow::component::Component;
    use blazes::dataflow::sim::InstanceId;
    use blazes::dataflow::sinks::CollectorSink;

    let a = CollectorSink::new();
    let b = CollectorSink::new();
    let mut ctx = blazes::dataflow::component::Context::new(0, InstanceId(0));
    let m1 = Message::data([1i64]);
    let m2 = Message::data([2i64]);
    a.clone().on_message(0, m1.clone(), &mut ctx);
    a.clone().on_message(0, m2.clone(), &mut ctx);
    b.clone().on_message(0, m2, &mut ctx);
    b.clone().on_message(0, m1.clone(), &mut ctx);
    assert_eq!(
        response_digests(std::slice::from_ref(&a)),
        response_digests(std::slice::from_ref(&b))
    );
    b.clone().on_message(0, m1, &mut ctx);
    assert_ne!(response_digests(&[a]), response_digests(&[b]));
}
