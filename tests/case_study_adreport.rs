//! Integration test: the ad-reporting case study (paper Sections VI-B and
//! VIII-B) — the white-box Bloom pipeline, the Section VI label table, and
//! the runtime behavior of all four strategies.

use blazes::apps::adreport::{run_scenario, AdScenario, StrategyKind};
use blazes::apps::casestudy::ad_network_graph;
use blazes::apps::queries::ReportQuery;
use blazes::apps::workload::{CampaignPlacement, ClickWorkload};
use blazes::core::analysis::Analyzer;
use blazes::core::label::Label;

/// The Section VI-B2 derivation table, via the full white-box pipeline
/// (Bloom source → static analysis → dataflow graph → Blazes analyzer).
#[test]
fn section_vi_label_table() {
    let cases = [
        (ReportQuery::Thresh, None, Label::Async),
        (ReportQuery::Poor, None, Label::Diverge),
        (ReportQuery::Poor, Some(&["campaign"][..]), Label::Diverge),
        (ReportQuery::Window, None, Label::Diverge),
        (ReportQuery::Window, Some(&["window"][..]), Label::Async),
        (ReportQuery::Window, Some(&["id"][..]), Label::Async),
        (ReportQuery::Campaign, None, Label::Diverge),
        (ReportQuery::Campaign, Some(&["campaign"][..]), Label::Async),
    ];
    for (query, seal, expected) in cases {
        let (g, sink) = ad_network_graph(query, seal);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(
            out.sink_label(sink),
            Some(&expected),
            "{} seal={seal:?}",
            query.name()
        );
    }
}

fn scenario(strategy: StrategyKind, placement: CampaignPlacement, seed: u64) -> AdScenario {
    AdScenario {
        workload: ClickWorkload {
            ad_servers: 4,
            entries_per_server: 80,
            batch_size: 20,
            sleep_between_batches: 100_000,
            entry_interval: 200,
            campaigns: 8,
            ads_per_campaign: 3,
            placement,
            seed: 70 + seed,
        },
        strategy,
        replicas: 3,
        requests: 8,
        tick_every: 10,
        seed,
        ..AdScenario::default()
    }
}

#[test]
fn all_strategies_process_the_full_log() {
    for (strategy, placement) in [
        (StrategyKind::Uncoordinated, CampaignPlacement::Spread),
        (StrategyKind::Ordered, CampaignPlacement::Spread),
        (StrategyKind::Sealed, CampaignPlacement::Spread),
        (StrategyKind::Sealed, CampaignPlacement::Independent),
    ] {
        let res = run_scenario(&scenario(strategy, placement, 1));
        for (r, s) in res.series.iter().enumerate() {
            assert_eq!(
                s.total(),
                res.expected_records,
                "{} replica {r} must process every record",
                strategy.label(placement)
            );
        }
    }
}

#[test]
fn sealed_campaign_is_deterministic_across_interleavings() {
    // The analysis says CAMPAIGN + Seal_campaign is Async (deterministic):
    // response sets must not depend on the delivery interleaving.
    let sets: Vec<_> = (0..3)
        .map(|seed| {
            let res = run_scenario(&scenario(
                StrategyKind::Sealed,
                CampaignPlacement::Spread,
                seed,
            ));
            assert!(res.responses_consistent(), "replicas agree within a run");
            res.responses[0].message_set()
        })
        .collect();
    // Note: request *arrival times* differ per seed only in delivery
    // jitter; the request schedule itself is fixed, so final response sets
    // agree.
    for s in &sets[1..] {
        assert_eq!(
            &sets[0], s,
            "sealed responses must be interleaving-insensitive"
        );
    }
}

#[test]
fn ordered_replicas_always_agree() {
    for seed in 0..3 {
        let res = run_scenario(&scenario(
            StrategyKind::Ordered,
            CampaignPlacement::Spread,
            seed,
        ));
        assert!(res.responses_consistent());
    }
}

#[test]
fn ordering_is_the_slowest_strategy() {
    let unc = run_scenario(&scenario(
        StrategyKind::Uncoordinated,
        CampaignPlacement::Spread,
        5,
    ));
    let ord = run_scenario(&scenario(
        StrategyKind::Ordered,
        CampaignPlacement::Spread,
        5,
    ));
    let seal = run_scenario(&scenario(
        StrategyKind::Sealed,
        CampaignPlacement::Spread,
        5,
    ));
    let t = |r: &blazes::apps::adreport::AdRunResult| r.completion_time().unwrap();
    assert!(t(&ord) > t(&unc), "ordering must cost time");
    // Sealing stays close to uncoordinated (within 2x here; the paper's
    // runs "closely track" it).
    assert!(t(&seal) < t(&ord), "sealing must beat ordering");
}

#[test]
fn white_box_annotations_flow_into_the_graph() {
    // The Report component in the generated graph carries the
    // white-box-derived annotations, including the lineage maps.
    let (g, _) = ad_network_graph(ReportQuery::Campaign, Some(&["campaign"]));
    let report = g.component_by_name("Report").unwrap();
    let paths = &g.component(report).paths;
    assert_eq!(paths.len(), 2, "click and request paths");
    let request = paths.iter().find(|p| p.from == "request").unwrap();
    assert_eq!(request.annotation.to_string(), "OR_{campaign,id}");
    let click = paths.iter().find(|p| p.from == "click").unwrap();
    assert_eq!(click.annotation.to_string(), "CW");
    assert!(click.lineage.is_some(), "lineage derived from the catalog");
}
