//! Minimal stand-in for `parking_lot`, vendored so the workspace builds
//! offline. Wraps `std::sync` primitives behind the `parking_lot` API the
//! workspace uses (no-`Result` `lock()`); poisoning is ignored, matching
//! parking_lot's behavior of not poisoning on panic.

use std::fmt;
use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn survives_panic_in_critical_section() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }
}
