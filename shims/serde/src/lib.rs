//! Minimal stand-in for `serde`, vendored so the workspace builds offline.
//!
//! Only the surface the workspace uses is provided: the `Serialize` /
//! `Deserialize` derive macros (re-exported from the local no-op
//! `serde_derive`) and the marker traits of the same names. Nothing in the
//! repo serializes at runtime yet; the annotations are kept so the real
//! serde can be dropped in via `[workspace.dependencies]` without touching
//! source files.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de>: Sized {}
