//! No-op stand-in for `serde_derive`, vendored so the workspace builds
//! offline. The real derives generate `Serialize`/`Deserialize` impls; the
//! codebase only uses the derives as structural markers (no serialization
//! happens at runtime yet), so emitting nothing is sufficient. Swap this
//! shim for the real crate in `[workspace.dependencies]` once the build
//! environment has registry access.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
