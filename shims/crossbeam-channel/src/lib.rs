//! Minimal stand-in for `crossbeam-channel`, vendored so the workspace
//! builds offline. Implements MPMC FIFO channels (`unbounded` / `bounded`)
//! over a `Mutex<VecDeque>` + two `Condvar`s. Semantics mirror the real
//! crate where the workspace relies on them:
//!
//! * cloneable `Sender` / `Receiver`;
//! * per-sender FIFO delivery (a global FIFO here, which is stronger);
//! * `recv` returns `Err(RecvError)` once the channel is empty and every
//!   sender is gone; `send` fails once every receiver is gone;
//! * `bounded(n)` applies backpressure by blocking `send`.
//!
//! Performance is adequate for the batched executor (batches amortize the
//! lock), not competitive with the real lock-free implementation.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
/// Carries the unsent message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty (senders still connected).
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of a channel. Clone freely; the channel disconnects
/// for receivers when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clone freely (MPMC); each message is
/// delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded FIFO channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded FIFO channel: `send` blocks while `cap` messages are
/// queued.
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> Sender<T> {
    /// Send `msg`, blocking if the channel is bounded and full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut q = shared.lock();
        loop {
            if shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            match shared.capacity {
                Some(cap) if q.len() >= cap => {
                    q = shared
                        .not_full
                        .wait(q)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                _ => break,
            }
        }
        q.push_back(msg);
        drop(q);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of queued messages (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is empty (racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receive one message, blocking until one arrives or every sender is
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut q = shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                drop(q);
                shared.not_full.notify_one();
                return Ok(msg);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            q = shared
                .not_empty
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Receive one message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut q = shared.lock();
        if let Some(msg) = q.pop_front() {
            drop(q);
            shared.not_full.notify_one();
            return Ok(msg);
        }
        if shared.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive one message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let shared = &*self.shared;
        let deadline = Instant::now() + timeout;
        let mut q = shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                drop(q);
                shared.not_full.notify_one();
                return Ok(msg);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = shared
                .not_empty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
            if res.timed_out() && q.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of queued messages (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is empty (racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded::<u64>();
        let n_workers = 4;
        let n_msgs = 1000u64;
        let mut handles = Vec::new();
        for _ in 0..n_workers {
            let rx = rx.clone();
            handles.push(thread::spawn(move || {
                let mut sum = 0u64;
                while let Ok(v) = rx.recv() {
                    sum += v;
                }
                sum
            }));
        }
        drop(rx);
        for i in 1..=n_msgs {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, n_msgs * (n_msgs + 1) / 2);
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv frees a slot
            "sent"
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
    }
}
