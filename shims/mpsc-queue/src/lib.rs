//! A lock-free multi-producer single-consumer queue in the style of
//! Dmitry Vyukov's intrusive MPSC queue, vendored so the workspace builds
//! offline (the build container has no registry access). Pointing the
//! workspace dependency at a crates.io implementation with the same
//! `push` / `pop` / `pop_batch` surface swaps the real thing back in
//! without code changes.
//!
//! # Algorithm
//!
//! The queue is a singly linked list of heap nodes with a permanent stub:
//! `head` is the consumer's cursor (it always points at the last consumed
//! node, whose value has already been moved out), `tail` is the producer
//! end.
//!
//! * **Push** (any thread): allocate a node, then publish it with a single
//!   CAS on `tail`; the previous tail is linked to the new node with one
//!   release store. Failed CAS attempts (another producer won the race)
//!   are retried and *counted* — the retry count is the queue's honest
//!   contention signal, surfaced by the caller's stats.
//! * **Pop** (one thread at a time): follow `head->next`; if present, move
//!   the value out, advance `head`, free the old node. No RMW at all —
//!   the consumer side is plain loads and stores.
//! * **Batched drain**: [`MpscQueue::pop_batch`] pops up to `max` values
//!   into a caller-owned buffer and settles the shared length counter with
//!   *one* `fetch_sub` for the whole batch, so steady-state consumption
//!   costs one contended RMW per activation instead of one per message.
//!
//! # The inconsistent window
//!
//! Between a producer's tail CAS and its `prev.next` store, the new node
//! is reachable from `tail` but not yet from `head`: a pop can find
//! `next == null` while [`MpscQueue::len`] is already positive. Callers
//! that gate on emptiness must treat `len() > 0` (not a failed pop) as
//! "work may remain" — the producer is about to complete the link, so
//! re-polling is enough. The length counter is incremented *before* the
//! CAS and decremented only *after* values are moved out, so it never
//! under-reports: `len() == 0` reliably means every pushed value has been
//! consumed.
//!
//! # Single-consumer contract
//!
//! Concurrent `pop`/`pop_batch` calls are a protocol violation (the
//! consumer cursor is not synchronized). Callers serialize consumers
//! externally — the parallel executor does so with its per-mailbox
//! scheduled flag. Debug builds enforce the contract with a guard flag
//! and panic on violation; release builds omit the check.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::ptr;
#[cfg(debug_assertions)]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: MaybeUninit<T>,
}

impl<T> Node<T> {
    fn boxed(value: MaybeUninit<T>) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value,
        }))
    }
}

/// Pad to a cache line so the producer end, the consumer end, and the
/// shared length counter do not false-share.
#[repr(align(64))]
struct Padded<T>(T);

/// A lock-free MPSC FIFO queue. See the module docs for the algorithm and
/// the single-consumer contract.
pub struct MpscQueue<T> {
    /// Producer end: the most recently pushed node.
    tail: Padded<AtomicPtr<Node<T>>>,
    /// Consumer cursor: the last consumed node (initially the stub). Only
    /// the (externally serialized) consumer touches it.
    head: Padded<UnsafeCell<*mut Node<T>>>,
    /// Pushed-but-not-consumed count; never under-reports (see module
    /// docs).
    len: Padded<AtomicUsize>,
    /// Debug-only guard enforcing the single-consumer contract.
    #[cfg(debug_assertions)]
    draining: AtomicBool,
}

unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        MpscQueue::new()
    }
}

impl<T> MpscQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        let stub = Node::boxed(MaybeUninit::uninit());
        MpscQueue {
            tail: Padded(AtomicPtr::new(stub)),
            head: Padded(UnsafeCell::new(stub)),
            len: Padded(AtomicUsize::new(0)),
            #[cfg(debug_assertions)]
            draining: AtomicBool::new(false),
        }
    }

    /// Push a value (any thread). Returns the number of CAS retries the
    /// push needed — 0 on an uncontended queue, more as producers collide
    /// on the tail.
    pub fn push(&self, value: T) -> u64 {
        let node = Node::boxed(MaybeUninit::new(value));
        // Count the value before it is reachable, so a concurrent
        // `len() == 0` check can never miss an in-flight push.
        self.len.0.fetch_add(1, Ordering::SeqCst);
        let mut retries = 0u64;
        let mut cur = self.tail.0.load(Ordering::Relaxed);
        loop {
            match self
                .tail
                .0
                .compare_exchange_weak(cur, node, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(prev) => {
                    // Link the published node; until this store lands the
                    // queue is in the documented inconsistent window.
                    unsafe { (*prev).next.store(node, Ordering::Release) };
                    return retries;
                }
                Err(actual) => {
                    retries += 1;
                    cur = actual;
                }
            }
        }
    }

    /// Pop one value (single consumer). Returns `None` when the queue is
    /// empty *or* momentarily inconsistent — check [`MpscQueue::len`] to
    /// tell the cases apart.
    pub fn pop(&self) -> Option<T> {
        let _guard = self.consumer_guard();
        let value = unsafe { self.pop_unsynced() };
        if value.is_some() {
            self.len.0.fetch_sub(1, Ordering::SeqCst);
        }
        value
    }

    /// Pop up to `max` values into `buf` (single consumer), settling the
    /// length counter once for the whole batch. Returns the number popped.
    pub fn pop_batch(&self, buf: &mut Vec<T>, max: usize) -> usize {
        let _guard = self.consumer_guard();
        let mut popped = 0usize;
        while popped < max {
            match unsafe { self.pop_unsynced() } {
                Some(v) => {
                    buf.push(v);
                    popped += 1;
                }
                None => break,
            }
        }
        if popped > 0 {
            self.len.0.fetch_sub(popped, Ordering::SeqCst);
        }
        popped
    }

    /// Advance the consumer cursor by one node, if a linked successor
    /// exists. Caller must hold the consumer role and settle `len`.
    unsafe fn pop_unsynced(&self) -> Option<T> {
        let head = *self.head.0.get();
        let next = (*head).next.load(Ordering::Acquire);
        if next.is_null() {
            return None;
        }
        // Move the value out; `next` becomes the new (consumed) stub.
        let value = ptr::read((*next).value.as_ptr());
        *self.head.0.get() = next;
        drop(Box::from_raw(head));
        Some(value)
    }

    /// Pushed-but-not-consumed count. Exact when producers and the
    /// consumer are settled; transiently over-reports during a push or a
    /// batch drain, never under-reports.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.0.load(Ordering::SeqCst)
    }

    /// Is the queue empty? `true` is authoritative (every pushed value was
    /// consumed); `false` may also mean a push or drain is mid-flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[cfg(debug_assertions)]
    fn consumer_guard(&self) -> impl Drop + '_ {
        struct Guard<'a>(&'a AtomicBool);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        assert!(
            self.draining
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            "MpscQueue: concurrent consumers (single-consumer contract violated)"
        );
        Guard(&self.draining)
    }

    #[cfg(not(debug_assertions))]
    #[allow(clippy::unused_self)]
    fn consumer_guard(&self) {}
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: every push has completed its link, so the
        // chain from `head` is fully connected. The head node's value was
        // already moved out (or is the original stub); every later node
        // still owns its value.
        unsafe {
            let mut node = *self.head.0.get();
            let mut first = true;
            while !node.is_null() {
                let next = (*node).next.load(Ordering::Relaxed);
                let mut owned = Box::from_raw(node);
                if !first {
                    ptr::drop_in_place(owned.value.as_mut_ptr());
                }
                drop(owned);
                first = false;
                node = next;
            }
        }
    }
}

impl<T> fmt::Debug for MpscQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpscQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_single_producer() {
        let q = MpscQueue::new();
        for i in 0..100 {
            let _ = q.push(i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_respects_max_and_settles_len() {
        let q = MpscQueue::new();
        for i in 0..10 {
            let _ = q.push(i);
        }
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch(&mut buf, 4), 4);
        assert_eq!(buf, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
        assert_eq!(q.pop_batch(&mut buf, 100), 6);
        assert_eq!(buf.len(), 10);
        assert!(q.is_empty());
        assert_eq!(q.pop_batch(&mut buf, 5), 0);
    }

    #[test]
    fn values_are_dropped_on_queue_drop() {
        struct Counting(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counting {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let q = MpscQueue::new();
        for _ in 0..5 {
            let _ = q.push(Counting(Arc::clone(&drops)));
        }
        drop(q.pop()); // one consumed and dropped by us
        drop(q);
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn concurrent_producers_lose_nothing_and_keep_per_producer_fifo() {
        let q = Arc::new(MpscQueue::new());
        let producers = 8usize;
        let per = 5_000u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    let _ = q.push((p as u64) << 32 | i);
                }
            }));
        }
        // Consume concurrently with the producers (single consumer: this
        // thread), tracking per-producer sequence numbers.
        let mut last = vec![None::<u64>; producers];
        let mut seen = 0u64;
        let mut buf = Vec::new();
        while seen < per * producers as u64 {
            buf.clear();
            let n = q.pop_batch(&mut buf, 256);
            if n == 0 {
                thread::yield_now();
                continue;
            }
            for &v in &buf {
                let p = (v >> 32) as usize;
                let i = v & 0xffff_ffff;
                assert!(
                    last[p].is_none_or(|prev| prev + 1 == i),
                    "producer {p} out of order: {:?} then {i}",
                    last[p]
                );
                last[p] = Some(i);
                seen += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
        for (p, l) in last.iter().enumerate() {
            assert_eq!(*l, Some(per - 1), "producer {p} incomplete");
        }
    }

    #[test]
    fn len_never_under_reports_under_concurrency() {
        let q = Arc::new(MpscQueue::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut pushed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _ = q.push(1u64);
                    pushed += 1;
                }
                pushed
            }));
        }
        let mut consumed = 0u64;
        let mut buf = Vec::new();
        for _ in 0..2_000 {
            buf.clear();
            consumed += q.pop_batch(&mut buf, 64) as u64;
        }
        stop.store(true, Ordering::Relaxed);
        let pushed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Drain the rest: every push must be retrievable.
        loop {
            buf.clear();
            let n = q.pop_batch(&mut buf, 1024);
            consumed += n as u64;
            if n == 0 && q.is_empty() {
                break;
            }
        }
        assert_eq!(consumed, pushed);
        assert_eq!(q.len(), 0);
    }
}
