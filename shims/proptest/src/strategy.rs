//! The strategy algebra: how test inputs are generated.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn gen_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        self.inner.gen_dyn(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy { .. }")
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty option list.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        let i = rng.next_usize(self.options.len());
        self.options[i].gen_value(rng)
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// `proptest::prelude::any`: the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    /// Draw a size from the range.
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.next_usize(self.hi_inclusive - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_env();
        let s = (1usize..6).prop_map(|n| n * 10);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((10..60).contains(&v) && v % 10 == 0);
        }
    }

    #[test]
    fn union_draws_from_all_options() {
        let mut rng = TestRng::from_env();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.gen_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn subsequence_respects_bounds_and_order() {
        let mut rng = TestRng::from_env();
        let s = crate::sample::subsequence(vec![1, 2, 3, 4], 1..=3);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.windows(2).all(|w| w[0] < w[1]), "order preserved: {v:?}");
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::from_env();
        let s = crate::collection::vec(0u8..5, 1..6);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((1..=5).contains(&v.len()));
        }
    }
}
