//! Minimal stand-in for `proptest`, vendored so the workspace builds
//! offline. Implements the subset the test suite uses: the [`Strategy`]
//! trait with `prop_map`/`boxed`, `any`, `Just`, range and tuple
//! strategies, `sample::subsequence`, `collection::vec`, `option::of`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * no shrinking — a failing case panics with its values via the assert
//!   message;
//! * generation is driven by a fixed-seed deterministic RNG (override with
//!   `PROPTEST_SEED`), so failures always reproduce;
//! * `prop_assert*` panic immediately instead of returning `TestCaseError`.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections (`proptest::collection`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` with length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Strategies over `Option` (`proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OfStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`: `None` about a quarter of the time,
    /// otherwise `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy { inner }
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_usize(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Strategies sampling from existing collections (`proptest::sample`).
pub mod sample {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;

    /// A strategy producing order-preserving random subsequences.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    /// `proptest::sample::subsequence`: a random subsequence of `values`
    /// (order preserved) whose length falls in `size`.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.values.len();
            let k = self.size.pick(rng).min(len);
            // Choose k distinct indices, then emit them in order.
            let mut chosen: Vec<usize> = (0..len).collect();
            for i in 0..k {
                let j = i + rng.next_usize(len - i);
                chosen.swap(i, j);
            }
            let mut picked = chosen[..k].to_vec();
            picked.sort_unstable();
            picked.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

/// The commonly imported surface (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// `prop_assert!`: assert inside a property (panics in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!`: equality assert inside a property (panics in the
/// shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_oneof!`: choose uniformly between the given strategies, which
/// must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// `proptest!`: run each contained `#[test]` function over generated
/// inputs. Supports the `#![proptest_config(..)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_env();
            for _case in 0..config.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::gen_value(&($strategy), &mut rng),)+
                );
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}
