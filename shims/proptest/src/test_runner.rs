//! Test-run configuration and the deterministic RNG driving generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` configuration. Only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generation RNG: deterministic, seedable via `PROPTEST_SEED`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeded from `PROPTEST_SEED` if set, else a fixed default so runs
    /// are reproducible.
    #[must_use]
    pub fn from_env() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5eed_cafe);
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn next_usize(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
