//! Stand-in for `crossbeam-deque`, vendored so the workspace builds
//! offline. Implements the work-stealing deque API surface the parallel
//! executor uses:
//!
//! * [`Worker`] — a per-thread deque (FIFO or LIFO flavor) with `push` /
//!   `pop` for the owner;
//! * [`Stealer`] — a cloneable handle through which other threads steal
//!   from the opposite end;
//! * [`Injector`] — a shared MPMC FIFO queue for tasks with no owner;
//! * [`Steal`] — the three-valued steal result (`Empty` / `Success` /
//!   `Retry`).
//!
//! Unlike the first-generation shim (a `Mutex<VecDeque>`), this is the
//! real thing: [`Worker`]/[`Stealer`] are a Chase–Lev deque with atomic
//! `top`/`bottom` indices and a growable ring buffer, and [`Injector`] is
//! a linked list of fixed-size slot blocks in the style of the crossbeam
//! injector — every push, pop and steal is lock-free.
//!
//! # Memory reclamation
//!
//! The real crate reclaims memory with epoch GC (`crossbeam-epoch`),
//! which the offline image does not have. Two simpler schemes stand in:
//!
//! * **Deque buffers** grown out of are *retired, not freed*: a stealer
//!   holding a stale buffer pointer only ever dereferences indices that
//!   were live when the buffer was current, so keeping retired buffers
//!   until the deque drops makes those reads safe. The retire list is
//!   behind a `Mutex`, but it is touched only on the (amortized-rare)
//!   grow path and at drop — never on push/pop/steal. Those acquisitions
//!   are counted in [`lock_acquisitions`] so tests can assert the hot
//!   path stays lock-free.
//! * **Injector blocks** reclaim themselves through per-slot state bits
//!   (`WRITE`/`READ`/`DESTROY`): the last reader out of a block frees it,
//!   with a hand-off baton for readers still mid-slot. No locks at all.
//!
//! Pointing the workspace dependency at crates.io swaps the epoch-based
//! implementation back in without code changes.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::{self, MaybeUninit};
use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Batch cap for `steal_batch_and_pop` (the real crate uses a similar
/// small constant to bound latency of one steal operation).
const MAX_BATCH: usize = 32;

/// Cold-path `Mutex` acquisitions (deque-buffer retire list) since process
/// start. The parallel executor's lock-audit tests assert this stays
/// proportional to buffer growths, not to messages.
static LOCK_ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

/// Number of cold-path lock acquisitions this crate has performed (buffer
/// retirement on deque growth and teardown). Diagnostics for lock-freedom
/// audits; the steady-state push/pop/steal paths never contribute.
#[must_use]
pub fn lock_acquisitions() -> u64 {
    LOCK_ACQUISITIONS.load(Ordering::SeqCst)
}

fn count_lock() {
    LOCK_ACQUISITIONS.fetch_add(1, Ordering::SeqCst);
}

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// Did the steal find the queue empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Did the steal succeed?
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Should the steal be retried?
    #[must_use]
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// The stolen task, if any.
    #[must_use]
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Chain steal sources: keep `self` unless it is `Empty`, in which case
    /// evaluate `f`. `Retry` from either side is preserved.
    #[must_use]
    pub fn or_else<F>(self, f: F) -> Steal<T>
    where
        F: FnOnce() -> Steal<T>,
    {
        match self {
            Steal::Empty => f(),
            s => s,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

// ---------------------------------------------------------------------------
// Chase–Lev deque (Worker / Stealer)
// ---------------------------------------------------------------------------

/// Initial ring capacity (power of two).
const MIN_CAP: usize = 32;

/// A fixed-capacity ring the deque indexes modulo `cap`.
struct RingBuf<T> {
    ptr: *mut MaybeUninit<T>,
    cap: usize,
}

impl<T> RingBuf<T> {
    fn alloc(cap: usize) -> *mut RingBuf<T> {
        debug_assert!(cap.is_power_of_two());
        let mut slots = Vec::<MaybeUninit<T>>::with_capacity(cap);
        let ptr = slots.as_mut_ptr();
        mem::forget(slots);
        Box::into_raw(Box::new(RingBuf { ptr, cap }))
    }

    /// Free the ring storage. Caller guarantees no element inside is still
    /// logically owned (tasks are moved out by `ptr::read`).
    unsafe fn dealloc(this: *mut RingBuf<T>) {
        let me = Box::from_raw(this);
        drop(Vec::from_raw_parts(me.ptr, 0, me.cap));
    }

    unsafe fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
        self.ptr.add(index as usize & (self.cap - 1))
    }

    unsafe fn write(&self, index: isize, value: T) {
        ptr::write(self.slot(index), MaybeUninit::new(value));
    }

    /// Read the (possibly stale or torn — a racing owner may be
    /// rewriting the position) bytes at `index`. The caller may
    /// `assume_init` only after winning the claiming CAS on `top`, which
    /// proves the read observed a live task.
    unsafe fn read(&self, index: isize) -> MaybeUninit<T> {
        ptr::read(self.slot(index))
    }
}

struct DequeInner<T> {
    /// Steal end. Claimed (only ever incremented) by CAS.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it (LIFO pop decrements).
    bottom: AtomicIsize,
    /// Current ring; replaced on growth, old rings retired below.
    buf: AtomicPtr<RingBuf<T>>,
    /// Rings grown out of, kept alive so stale stealer reads stay valid.
    /// Locked only on growth and at drop — never on push/pop/steal.
    retired: Mutex<Vec<*mut RingBuf<T>>>,
}

unsafe impl<T: Send> Send for DequeInner<T> {}
unsafe impl<T: Send> Sync for DequeInner<T> {}

impl<T> Drop for DequeInner<T> {
    fn drop(&mut self) {
        // Exclusive access: drop unconsumed tasks, then every ring.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        let buf = *self.buf.get_mut();
        unsafe {
            for i in t..b {
                ptr::drop_in_place((*buf).slot(i).cast::<T>());
            }
            RingBuf::dealloc(buf);
            count_lock();
            let retired = mem::take(
                &mut *self
                    .retired
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            for old in retired {
                RingBuf::dealloc(old);
            }
        }
    }
}

/// A worker's own end of a work-stealing deque.
///
/// `Send` but deliberately not `Sync`: owner operations are unsynchronized
/// against each other, so exactly one thread may hold the handle at a
/// time (it can move between threads freely).
pub struct Worker<T> {
    inner: Arc<DequeInner<T>>,
    flavor: Flavor,
    /// Suppresses the auto `Sync` impl without affecting `Send`.
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl<T> Worker<T> {
    fn with_flavor(flavor: Flavor) -> Self {
        Worker {
            inner: Arc::new(DequeInner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buf: AtomicPtr::new(RingBuf::alloc(MIN_CAP)),
                retired: Mutex::new(Vec::new()),
            }),
            flavor,
            _not_sync: std::marker::PhantomData,
        }
    }

    /// A deque whose owner pops in push order (queue-like).
    #[must_use]
    pub fn new_fifo() -> Self {
        Worker::with_flavor(Flavor::Fifo)
    }

    /// A deque whose owner pops the most recent push (stack-like).
    #[must_use]
    pub fn new_lifo() -> Self {
        Worker::with_flavor(Flavor::Lifo)
    }

    /// Double the ring, copying live indices `t..b`. Owner-only; the old
    /// ring is retired (kept alive), so concurrent stealers reading from a
    /// stale pointer stay safe.
    #[cold]
    fn grow(&self, t: isize, b: isize) {
        let inner = &*self.inner;
        let old = inner.buf.load(Ordering::Relaxed);
        unsafe {
            let new = RingBuf::alloc((*old).cap * 2);
            for i in t..b {
                ptr::copy_nonoverlapping((*old).slot(i), (*new).slot(i), 1);
            }
            inner.buf.store(new, Ordering::Release);
            count_lock();
            inner
                .retired
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(old);
        }
    }

    /// Push a task onto the owner's end.
    pub fn push(&self, task: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let buf = inner.buf.load(Ordering::Relaxed);
        if b - t >= unsafe { (*buf).cap } as isize {
            self.grow(t, b);
        }
        let buf = inner.buf.load(Ordering::Relaxed);
        unsafe { (*buf).write(b, task) };
        // Publish: the slot write must be visible before the new bottom.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pop a task from the owner's end.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        match self.flavor {
            Flavor::Fifo => loop {
                // FIFO owners take from the steal end and thus compete on
                // the same CAS as stealers (as in the real crate).
                match steal_one(&self.inner) {
                    Steal::Success(t) => return Some(t),
                    Steal::Empty => return None,
                    Steal::Retry => {}
                }
            },
            Flavor::Lifo => self.pop_lifo(),
        }
    }

    fn pop_lifo(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        inner.bottom.store(b, Ordering::Relaxed);
        // The bottom store must be visible to stealers before we read top
        // (the classic Chase–Lev SC fence).
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let buf = inner.buf.load(Ordering::Relaxed);
        if t < b {
            // More than one task: ours uncontended (the owner's slot is
            // live and no stealer can claim past `b - 1`).
            return Some(unsafe { (*buf).read(b).assume_init() });
        }
        // Last task: race stealers for it via the top CAS.
        let won = inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        inner.bottom.store(b + 1, Ordering::Relaxed);
        won.then(|| unsafe { (*buf).read(b).assume_init() })
    }

    /// Is the deque empty (racy snapshot)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of queued tasks (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        usize::try_from(b - t).unwrap_or(0)
    }

    /// A handle other threads use to steal from this deque.
    #[must_use]
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
            flavor: self.flavor,
        }
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Worker { .. }")
    }
}

/// Steal the task at `top`, if any. Shared by stealers and FIFO owners.
fn steal_one<T>(inner: &DequeInner<T>) -> Steal<T> {
    let t = inner.top.load(Ordering::Acquire);
    fence(Ordering::SeqCst);
    let b = inner.bottom.load(Ordering::Acquire);
    if t >= b {
        return Steal::Empty;
    }
    // Loading the buffer *after* bottom makes the slot read safe to
    // perform: any index below the observed bottom is live in (or was
    // copied into) the buffer observed afterwards, and retired rings are
    // never freed early. The bytes stay `MaybeUninit` until the CAS
    // proves we claimed a live task.
    let buf = inner.buf.load(Ordering::Acquire);
    let task = unsafe { (*buf).read(t) };
    if inner
        .top
        .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
        .is_ok()
    {
        Steal::Success(unsafe { task.assume_init() })
    } else {
        // Lost the race: the value belongs to whoever won; our
        // `MaybeUninit` copy is dropped without running T's destructor.
        Steal::Retry
    }
}

/// Steal up to `max` tasks starting at `top` with one claiming CAS,
/// delivering the first to the caller and the rest into `dest`.
///
/// Only safe for FIFO victims: a LIFO owner pops from `bottom` *without*
/// a top CAS, so a batch read could overlap an owner pop. LIFO victims
/// fall back to single-task steals.
fn steal_batch<T>(inner: &DequeInner<T>, flavor: Flavor, dest: &Worker<T>, max: usize) -> Steal<T> {
    if flavor == Flavor::Lifo {
        return steal_one(inner);
    }
    let t = inner.top.load(Ordering::Acquire);
    fence(Ordering::SeqCst);
    let b = inner.bottom.load(Ordering::Acquire);
    let available = b - t;
    if available <= 0 {
        return Steal::Empty;
    }
    // Take about half, like the real crate, to leave the victim working.
    let take = usize::try_from((available + 1) / 2)
        .unwrap_or(1)
        .min(max)
        .max(1);
    let buf = inner.buf.load(Ordering::Acquire);
    let mut batch = Vec::with_capacity(take);
    for i in 0..take {
        batch.push(unsafe { (*buf).read(t + i as isize) });
    }
    if inner
        .top
        .compare_exchange(t, t + take as isize, Ordering::SeqCst, Ordering::Relaxed)
        .is_ok()
    {
        // The CAS proves every read observed a live task: initialize.
        let mut it = batch.into_iter();
        let first = unsafe { it.next().expect("take >= 1").assume_init() };
        for task in it {
            dest.push(unsafe { task.assume_init() });
        }
        Steal::Success(first)
    } else {
        // Lost the race: none of the read bytes are ours; dropping the
        // `MaybeUninit`s runs no destructors.
        Steal::Retry
    }
}

/// The stealing end of a [`Worker`]'s deque.
pub struct Stealer<T> {
    inner: Arc<DequeInner<T>>,
    flavor: Flavor,
}

impl<T> Stealer<T> {
    /// Steal one task from the top (the end opposite a LIFO owner).
    #[must_use]
    pub fn steal(&self) -> Steal<T> {
        steal_one(&self.inner)
    }

    /// Steal up to half the tasks (capped) into `dest`, returning one.
    #[must_use]
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        steal_batch(&self.inner, self.flavor, dest, MAX_BATCH)
    }

    /// Is the source deque empty (racy snapshot)? `SeqCst` loads so
    /// callers using this as a park-side re-check (sleep if every source
    /// looks empty) get the strongest cross-thread visibility available.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::SeqCst);
        b - t <= 0
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
            flavor: self.flavor,
        }
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Stealer { .. }")
    }
}

// ---------------------------------------------------------------------------
// Injector: a lock-free segmented MPMC FIFO queue
// ---------------------------------------------------------------------------

/// Slot state bits.
const WRITE: usize = 1;
const READ: usize = 2;
const DESTROY: usize = 4;

/// Index positions per block: `BLOCK_CAP` real slots plus one phantom
/// offset that marks "next block being installed".
const LAP: usize = 64;
const BLOCK_CAP: usize = LAP - 1;

struct InjSlot<T> {
    task: UnsafeCell<MaybeUninit<T>>,
    state: AtomicUsize,
}

impl<T> InjSlot<T> {
    /// Spin until the producer that claimed this slot finishes writing.
    fn wait_write(&self) {
        while self.state.load(Ordering::Acquire) & WRITE == 0 {
            std::hint::spin_loop();
        }
    }
}

struct Block<T> {
    next: AtomicPtr<Block<T>>,
    slots: [InjSlot<T>; BLOCK_CAP],
}

impl<T> Block<T> {
    fn alloc() -> *mut Block<T> {
        let block: Box<Block<T>> = unsafe {
            // Zeroed is a valid initial state: null `next`, zero slot
            // states, uninit tasks.
            Box::new(mem::zeroed())
        };
        Box::into_raw(block)
    }

    /// Spin until the next block is installed by the producer that claimed
    /// the last slot of this one.
    fn wait_next(&self) -> *mut Block<T> {
        loop {
            let next = self.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            std::hint::spin_loop();
        }
    }

    /// Mark slots `0..count` destroyed and free the block once every
    /// reader is out. A slot whose reader is still mid-read inherits the
    /// destruction baton (it sees `DESTROY` when it marks `READ`).
    unsafe fn destroy(this: *mut Block<T>, count: usize) {
        for i in (0..count).rev() {
            let slot = &(*this).slots[i];
            if slot.state.load(Ordering::Acquire) & READ == 0
                && slot.state.fetch_or(DESTROY, Ordering::AcqRel) & READ == 0
            {
                // A reader is still inside this slot; it will continue the
                // destruction when it leaves.
                return;
            }
        }
        drop(Box::from_raw(this));
    }
}

struct Position<T> {
    index: AtomicUsize,
    block: AtomicPtr<Block<T>>,
}

/// Pad the two ends onto separate cache lines.
#[repr(align(64))]
struct PaddedPos<T>(Position<T>);

/// A shared FIFO queue feeding tasks to any worker (the global run queue).
///
/// Lock-free: a linked list of [`BLOCK_CAP`]-slot blocks; producers claim
/// slots by CAS on the tail index, consumers by CAS on the head index, and
/// blocks free themselves when their last reader leaves.
pub struct Injector<T> {
    head: PaddedPos<T>,
    tail: PaddedPos<T>,
}

unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    #[must_use]
    pub fn new() -> Self {
        let first = Block::alloc();
        Injector {
            head: PaddedPos(Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(first),
            }),
            tail: PaddedPos(Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(first),
            }),
        }
    }

    /// Push a task.
    pub fn push(&self, task: T) {
        let mut tail = self.tail.0.index.load(Ordering::Acquire);
        let mut block = self.tail.0.block.load(Ordering::Acquire);
        let mut spare: Option<*mut Block<T>> = None;
        loop {
            let offset = tail % LAP;
            if offset == BLOCK_CAP {
                // Another producer claimed the last slot and is installing
                // the next block; wait for the index to move there.
                std::hint::spin_loop();
                tail = self.tail.0.index.load(Ordering::Acquire);
                block = self.tail.0.block.load(Ordering::Acquire);
                continue;
            }
            // Pre-allocate the successor before claiming the final slot so
            // the install window (which stalls other producers) is short.
            if offset + 1 == BLOCK_CAP && spare.is_none() {
                spare = Some(Block::alloc());
            }
            match self.tail.0.index.compare_exchange_weak(
                tail,
                tail + 1,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => unsafe {
                    if offset + 1 == BLOCK_CAP {
                        // We claimed the final slot: install the next block
                        // (block pointer first, then the index that frees
                        // the spinning producers, then the link consumers
                        // follow).
                        let next = spare.take().expect("preallocated above");
                        self.tail.0.block.store(next, Ordering::Release);
                        self.tail.0.index.store(tail + 2, Ordering::Release);
                        (*block).next.store(next, Ordering::Release);
                    }
                    let slot = &(*block).slots[offset];
                    slot.task.get().write(MaybeUninit::new(task));
                    slot.state.fetch_or(WRITE, Ordering::Release);
                    if let Some(unused) = spare {
                        drop(Box::from_raw(unused));
                    }
                    return;
                },
                Err(current) => {
                    tail = current;
                    block = self.tail.0.block.load(Ordering::Acquire);
                }
            }
        }
    }

    /// Steal one task.
    #[must_use]
    pub fn steal(&self) -> Steal<T> {
        let head = self.head.0.index.load(Ordering::Acquire);
        let block = self.head.0.block.load(Ordering::Acquire);
        let offset = head % LAP;
        if offset == BLOCK_CAP {
            // A consumer is installing the next head block.
            return Steal::Retry;
        }
        fence(Ordering::SeqCst);
        let tail = self.tail.0.index.load(Ordering::Acquire);
        if head == tail {
            return Steal::Empty;
        }
        match self.head.0.index.compare_exchange(
            head,
            head + 1,
            Ordering::SeqCst,
            Ordering::Acquire,
        ) {
            Ok(_) => unsafe { Steal::Success(self.consume(block, head, offset, 1)) },
            Err(_) => Steal::Retry,
        }
    }

    /// Steal up to half a block of tasks with one claiming CAS, delivering
    /// the first to the caller and the rest into `dest`.
    #[must_use]
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let head = self.head.0.index.load(Ordering::Acquire);
        let block = self.head.0.block.load(Ordering::Acquire);
        let offset = head % LAP;
        if offset == BLOCK_CAP {
            return Steal::Retry;
        }
        fence(Ordering::SeqCst);
        let tail = self.tail.0.index.load(Ordering::Acquire);
        if head == tail {
            return Steal::Empty;
        }
        // Claimable run: stop at the block edge; across blocks only the
        // current block's remainder is claimable in one CAS.
        let in_block = if head / LAP == tail / LAP {
            tail - head
        } else {
            BLOCK_CAP - offset
        };
        let take = in_block.div_ceil(2).clamp(1, MAX_BATCH.min(in_block));
        match self.head.0.index.compare_exchange(
            head,
            head + take,
            Ordering::SeqCst,
            Ordering::Acquire,
        ) {
            Ok(_) => unsafe {
                let ends_block = offset + take == BLOCK_CAP;
                let first = self.consume(block, head, offset, take);
                for i in 1..take {
                    let slot = &(*block).slots[offset + i];
                    slot.wait_write();
                    let task = slot.task.get().read().assume_init();
                    if ends_block && i + 1 == take {
                        // The block's final slot: its reader initiates the
                        // destruction sweep (its own slot needs no mark).
                        Block::destroy(block, offset + i);
                    } else if slot.state.fetch_or(READ, Ordering::AcqRel) & DESTROY != 0 {
                        Block::destroy(block, offset + i);
                    }
                    dest.push(task);
                }
                Steal::Success(first)
            },
            Err(_) => Steal::Retry,
        }
    }

    /// Read the first task of a claimed run `offset..offset + take`,
    /// advancing the head block if the run reaches the block's end, and
    /// participating in block destruction. Caller must have claimed the
    /// run via the head-index CAS.
    unsafe fn consume(&self, block: *mut Block<T>, head: usize, offset: usize, take: usize) -> T {
        if offset + take == BLOCK_CAP {
            // Our run ends the block: move head to the successor. Other
            // consumers spin on the phantom offset until the index store.
            let next = (*block).wait_next();
            self.head.0.block.store(next, Ordering::Release);
            self.head.0.index.store(head + take + 1, Ordering::Release);
        }
        let slot = &(*block).slots[offset];
        slot.wait_write();
        let task = slot.task.get().read().assume_init();
        if offset + take == BLOCK_CAP && take == 1 {
            // Final slot of the block: we begin its destruction (our own
            // slot needs no READ mark — destruction starts below it).
            Block::destroy(block, offset);
        } else if slot.state.fetch_or(READ, Ordering::AcqRel) & DESTROY != 0 {
            Block::destroy(block, offset);
        }
        task
    }

    /// Is the queue empty (racy snapshot)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let head = self.head.0.index.load(Ordering::SeqCst);
        let tail = self.tail.0.index.load(Ordering::SeqCst);
        head == tail
    }

    /// Number of queued tasks (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        let real = |index: usize| index / LAP * BLOCK_CAP + (index % LAP).min(BLOCK_CAP);
        let tail = self.tail.0.index.load(Ordering::SeqCst);
        let head = self.head.0.index.load(Ordering::SeqCst);
        real(tail).saturating_sub(real(head))
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // Exclusive access: drop every unconsumed task, then the blocks.
        let mut head = self.head.0.index.load(Ordering::Relaxed);
        let tail = self.tail.0.index.load(Ordering::Relaxed);
        let mut block = *self.head.0.block.get_mut();
        unsafe {
            while head != tail {
                let offset = head % LAP;
                if offset < BLOCK_CAP {
                    let slot = &(*block).slots[offset];
                    ptr::drop_in_place(slot.task.get().cast::<T>());
                    head += 1;
                } else {
                    let next = (*block).next.load(Ordering::Relaxed);
                    drop(Box::from_raw(block));
                    block = next;
                    head += 1;
                }
            }
            drop(Box::from_raw(block));
        }
    }
}

impl<T> fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Injector { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_owner_pops_in_push_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn lifo_owner_pops_most_recent() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_from_the_front() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn steal_batch_moves_about_half() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        for i in 0..10 {
            w.push(i);
        }
        let thief = Worker::new_fifo();
        assert_eq!(s.steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(thief.len(), 4, "half of 10, minus the popped one");
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn deque_grows_past_initial_capacity() {
        let w = Worker::new_fifo();
        let n = MIN_CAP * 5;
        for i in 0..n {
            w.push(i);
        }
        assert_eq!(w.len(), n);
        for i in 0..n {
            assert_eq!(w.pop(), Some(i), "FIFO order across growth");
        }
        assert!(w.is_empty());
    }

    #[test]
    fn lifo_grows_and_drops_unconsumed() {
        let w = Worker::new_lifo();
        for i in 0..MIN_CAP * 3 {
            w.push(i);
        }
        assert_eq!(w.pop(), Some(MIN_CAP * 3 - 1));
        // The rest dropped with the deque.
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success("a"));
        assert!(inj.steal().or_else(|| Steal::Success("z")).is_success());
    }

    #[test]
    fn injector_crosses_block_boundaries() {
        let inj = Injector::new();
        let n = LAP * 4 + 7;
        for i in 0..n {
            inj.push(i);
        }
        assert_eq!(inj.len(), n);
        for i in 0..n {
            loop {
                match inj.steal() {
                    Steal::Success(v) => {
                        assert_eq!(v, i, "FIFO across blocks");
                        break;
                    }
                    Steal::Retry => {}
                    Steal::Empty => panic!("lost task {i}"),
                }
            }
        }
        assert!(inj.is_empty());
    }

    #[test]
    fn injector_drop_releases_unconsumed_tasks() {
        struct Counting(Arc<AtomicUsize>);
        impl Drop for Counting {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let inj = Injector::new();
        for _ in 0..LAP * 2 + 3 {
            inj.push(Counting(Arc::clone(&drops)));
        }
        for _ in 0..5 {
            let _ = inj.steal();
        }
        drop(inj);
        assert_eq!(drops.load(Ordering::SeqCst), LAP * 2 + 3);
    }

    #[test]
    fn every_task_delivered_exactly_once_under_contention() {
        let w = Worker::new_fifo();
        let stealers: Vec<_> = (0..3).map(|_| w.stealer()).collect();
        let n = 10_000u64;
        for i in 1..=n {
            w.push(i);
        }
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for s in stealers {
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                let local = Worker::new_fifo();
                loop {
                    let task = local.pop().or_else(|| match s.steal_batch_and_pop(&local) {
                        Steal::Success(t) => Some(t),
                        Steal::Retry => Some(u64::MAX), // sentinel: retry
                        Steal::Empty => None,
                    });
                    match task {
                        Some(u64::MAX) => continue,
                        Some(v) => {
                            total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        }
                        None => break,
                    }
                }
            }));
        }
        let mut own = 0u64;
        while let Some(v) = w.pop() {
            own += v;
        }
        for h in handles {
            h.join().unwrap();
        }
        let sum = own + total.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(sum, n * (n + 1) / 2);
    }

    #[test]
    fn injector_mpmc_delivers_exactly_once() {
        let inj = Arc::new(Injector::new());
        let producers = 4usize;
        let consumers = 4usize;
        let per = 20_000u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let inj = Arc::clone(&inj);
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    inj.push((p as u64) << 32 | i);
                }
            }));
        }
        let seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut takers = Vec::new();
        for _ in 0..consumers {
            let inj = Arc::clone(&inj);
            let seen = Arc::clone(&seen);
            let sum = Arc::clone(&sum);
            takers.push(thread::spawn(move || {
                let local = Worker::new_fifo();
                let target = per * producers as u64;
                loop {
                    if let Some(v) = local.pop() {
                        sum.fetch_add(v & 0xffff_ffff, Ordering::Relaxed);
                        seen.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    match inj.steal_batch_and_pop(&local) {
                        Steal::Success(v) => {
                            sum.fetch_add(v & 0xffff_ffff, Ordering::Relaxed);
                            seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => {
                            if seen.load(Ordering::Relaxed) >= target {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for h in takers {
            h.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::Relaxed), per * producers as u64);
        assert_eq!(
            sum.load(Ordering::Relaxed),
            producers as u64 * (per * (per - 1) / 2)
        );
        assert!(inj.is_empty());
    }

    #[test]
    fn hot_paths_do_not_lock() {
        // The lock counter is process-global and sibling tests run
        // concurrently (each Worker drop or growth contributes a few
        // acquisitions), so assert a bound a per-operation lock would
        // blow through by orders of magnitude, not strict equality.
        let ops = 30_000usize;
        let before = lock_acquisitions();
        let w = Worker::new_fifo();
        let s = w.stealer();
        let inj = Injector::new();
        for round in 0..ops / (MIN_CAP / 2) {
            // Stay within MIN_CAP so no growth happens in `w`.
            for i in 0..MIN_CAP / 2 {
                w.push(round * MIN_CAP + i);
                inj.push(i);
            }
            for _ in 0..MIN_CAP / 2 {
                let _ = w.pop();
                let _ = s.steal();
                let _ = inj.steal();
            }
        }
        let delta = lock_acquisitions() - before;
        assert!(
            delta < ops as u64 / 100,
            "push/pop/steal must not touch a Mutex: {delta} locks over ~{ops} ops"
        );
    }
}
