//! Minimal stand-in for `crossbeam-deque`, vendored so the workspace builds
//! offline. Implements the work-stealing deque API surface the parallel
//! executor uses:
//!
//! * [`Worker`] — a per-thread deque (FIFO or LIFO flavor) with `push` /
//!   `pop` for the owner;
//! * [`Stealer`] — a cloneable handle through which other threads steal
//!   from the opposite end;
//! * [`Injector`] — a shared MPMC FIFO queue for tasks with no owner;
//! * [`Steal`] — the three-valued steal result (`Empty` / `Success` /
//!   `Retry`).
//!
//! The real crate is a lock-free Chase-Lev deque; this shim guards a
//! `VecDeque` with a `Mutex`, which has identical observable semantics
//! (every pushed task is popped or stolen exactly once) at lower
//! throughput. Pointing the workspace dependency at crates.io swaps the
//! real implementation back in without code changes.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Batch cap for `steal_batch_and_pop` (the real crate uses a similar
/// small constant to bound latency of one steal operation).
const MAX_BATCH: usize = 32;

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// Did the steal find the queue empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Did the steal succeed?
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Should the steal be retried?
    #[must_use]
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// The stolen task, if any.
    #[must_use]
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Chain steal sources: keep `self` unless it is `Empty`, in which case
    /// evaluate `f`. `Retry` from either side is preserved.
    #[must_use]
    pub fn or_else<F>(self, f: F) -> Steal<T>
    where
        F: FnOnce() -> Steal<T>,
    {
        match self {
            Steal::Empty => f(),
            s => s,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

struct Buffer<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Buffer<T> {
    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A worker's own end of a work-stealing deque.
pub struct Worker<T> {
    buf: Arc<Buffer<T>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// A deque whose owner pops in push order (queue-like).
    #[must_use]
    pub fn new_fifo() -> Self {
        Worker {
            buf: Arc::new(Buffer {
                queue: Mutex::new(VecDeque::new()),
            }),
            flavor: Flavor::Fifo,
        }
    }

    /// A deque whose owner pops the most recent push (stack-like).
    #[must_use]
    pub fn new_lifo() -> Self {
        Worker {
            buf: Arc::new(Buffer {
                queue: Mutex::new(VecDeque::new()),
            }),
            flavor: Flavor::Lifo,
        }
    }

    /// Push a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.buf.lock().push_back(task);
    }

    /// Pop a task from the owner's end.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        let mut q = self.buf.lock();
        match self.flavor {
            Flavor::Fifo => q.pop_front(),
            Flavor::Lifo => q.pop_back(),
        }
    }

    /// Is the deque empty (racy snapshot)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Number of queued tasks (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// A handle other threads use to steal from this deque.
    #[must_use]
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Worker { .. }")
    }
}

/// The stealing end of a [`Worker`]'s deque.
pub struct Stealer<T> {
    buf: Arc<Buffer<T>>,
}

impl<T> Stealer<T> {
    /// Steal one task from the front (the end opposite a LIFO owner).
    #[must_use]
    pub fn steal(&self) -> Steal<T> {
        match self.buf.lock().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal up to half the tasks into `dest`, returning one of them.
    #[must_use]
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let batch = {
            let mut src = self.buf.lock();
            let take = (src.len().div_ceil(2)).min(MAX_BATCH);
            src.drain(..take).collect::<Vec<T>>()
        };
        let mut it = batch.into_iter();
        let Some(first) = it.next() else {
            return Steal::Empty;
        };
        let mut dst = dest.buf.lock();
        for t in it {
            dst.push_back(t);
        }
        Steal::Success(first)
    }

    /// Is the source deque empty (racy snapshot)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Stealer { .. }")
    }
}

/// A shared FIFO queue feeding tasks to any worker (the global run queue).
pub struct Injector<T> {
    buf: Buffer<T>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    #[must_use]
    pub fn new() -> Self {
        Injector {
            buf: Buffer {
                queue: Mutex::new(VecDeque::new()),
            },
        }
    }

    /// Push a task.
    pub fn push(&self, task: T) {
        self.buf.lock().push_back(task);
    }

    /// Steal one task.
    #[must_use]
    pub fn steal(&self) -> Steal<T> {
        match self.buf.lock().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal up to half the tasks into `dest`, returning one of them.
    #[must_use]
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let batch = {
            let mut src = self.buf.lock();
            let take = (src.len().div_ceil(2)).min(MAX_BATCH);
            src.drain(..take).collect::<Vec<T>>()
        };
        let mut it = batch.into_iter();
        let Some(first) = it.next() else {
            return Steal::Empty;
        };
        let mut dst = dest.buf.lock();
        for t in it {
            dst.push_back(t);
        }
        Steal::Success(first)
    }

    /// Is the queue empty (racy snapshot)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Number of queued tasks (racy snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }
}

impl<T> fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Injector { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_owner_pops_in_push_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn lifo_owner_pops_most_recent() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
    }

    #[test]
    fn stealer_takes_from_the_front() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn steal_batch_moves_about_half() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        for i in 0..10 {
            w.push(i);
        }
        let thief = Worker::new_fifo();
        assert_eq!(s.steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(thief.len(), 4, "half of 10, minus the popped one");
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success("a"));
        assert!(inj.steal().or_else(|| Steal::Success("z")).is_success());
    }

    #[test]
    fn every_task_delivered_exactly_once_under_contention() {
        let w = Worker::new_fifo();
        let stealers: Vec<_> = (0..3).map(|_| w.stealer()).collect();
        let n = 10_000u64;
        for i in 1..=n {
            w.push(i);
        }
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for s in stealers {
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                let local = Worker::new_fifo();
                loop {
                    let task = local
                        .pop()
                        .or_else(|| s.steal_batch_and_pop(&local).success());
                    match task {
                        Some(v) => {
                            total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        }
                        None => break,
                    }
                }
            }));
        }
        let mut own = 0u64;
        while let Some(v) = w.pop() {
            own += v;
        }
        for h in handles {
            h.join().unwrap();
        }
        let sum = own + total.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(sum, n * (n + 1) / 2);
    }
}
