//! Minimal stand-in for `rand` 0.9, vendored so the workspace builds
//! offline. Provides the surface the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::random`] /
//! [`Rng::random_range`] — backed by xoshiro256++ seeded through
//! SplitMix64. Deterministic for a given seed, which is all the simulator
//! requires; it is NOT cryptographically secure.

use std::ops::{Bound, RangeBounds};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Derive a generator state from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG ("standard"
/// distribution): `f64` in `[0, 1)`, integers over their full range.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable with [`Rng::random_range`].
pub trait UniformSample: Copy + PartialEq {
    /// Draw a value uniformly from `[lo, hi]` (inclusive bounds).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Smallest representable value.
    const MIN: Self;
    /// Largest representable value.
    const MAX: Self;
    /// The value one below `self`, saturating.
    fn prev(self) -> Self;
    /// The value one above `self`, saturating.
    fn next(self) -> Self;
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (e.g. `0..n`, `0..=max`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: RangeBounds<T>,
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => {
                // `next()` saturates; an excluded MAX start means the range
                // is empty and must panic like the real crate.
                assert!(x != T::MAX, "random_range: cannot sample empty range");
                x.next()
            }
            Bound::Unbounded => T::MIN,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => {
                // `prev()` saturates; `lo..lo` with lo == MIN (e.g. `0..0`)
                // would otherwise silently collapse to `0..=0`.
                assert!(x != T::MIN, "random_range: cannot sample empty range");
                x.prev()
            }
            Bound::Unbounded => T::MAX,
        };
        T::sample_inclusive(self, lo, hi)
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pre-made generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (deterministic, non-crypto).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            const MIN: $t = <$t>::MIN;
            const MAX: $t = <$t>::MAX;

            fn prev(self) -> $t {
                self.saturating_sub(1)
            }

            fn next(self) -> $t {
                self.saturating_add(1)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                if span == u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                // Modulo reduction; bias is negligible for the simulator's
                // span sizes (all far below 2^64).
                let v = u128::from(rng.next_u64()) % (span + 1);
                ((lo as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int!(u64 => u64, i64 => u64, u32 => u64, i32 => u64, usize => u64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(0..=10u64);
            assert!(x <= 10);
            let y = rng.random_range(5..8i64);
            assert!((5..8).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_at_type_min_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.random_range(0..0u64);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_elsewhere_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.random_range(5..5i64);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
