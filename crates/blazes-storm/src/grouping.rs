//! Stream groupings: how a producing instance picks the consuming instance
//! for each tuple (Storm's partitioning modes).

use blazes_dataflow::value::Tuple;
use std::hash::{Hash, Hasher};

/// A stream grouping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grouping {
    /// Round-robin across consumer instances (Storm's shuffle grouping,
    /// made deterministic for reproducibility).
    Shuffle,
    /// Hash-partition on the tuple fields at the given positions.
    Fields(Vec<usize>),
    /// Always instance 0.
    Global,
    /// Broadcast to every consumer instance.
    All,
}

impl Grouping {
    /// Pick target instance(s) among `fanout` consumers for `tuple`.
    /// Returns `None` to broadcast. `rr` is the caller's round-robin
    /// counter state for shuffle grouping.
    #[must_use]
    pub fn route(&self, tuple: &Tuple, fanout: usize, rr: &mut usize) -> Option<usize> {
        assert!(fanout > 0, "grouping over zero consumers");
        match self {
            Grouping::Shuffle => {
                let t = *rr % fanout;
                *rr = rr.wrapping_add(1);
                Some(t)
            }
            Grouping::Fields(positions) => {
                let mut h = Fnv1a::new();
                for &p in positions {
                    if let Some(v) = tuple.get(p) {
                        v.hash(&mut h);
                    }
                }
                Some((h.finish() % fanout as u64) as usize)
            }
            Grouping::Global => Some(0),
            Grouping::All => None,
        }
    }
}

/// A tiny FNV-1a hasher: deterministic across runs and Rust versions
/// (unlike `DefaultHasher`, whose algorithm is unspecified).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazes_dataflow::value::Value;

    fn t(word: &str, batch: i64) -> Tuple {
        Tuple::new([Value::str(word), Value::Int(batch)])
    }

    #[test]
    fn shuffle_round_robins() {
        let g = Grouping::Shuffle;
        let mut rr = 0;
        let targets: Vec<_> = (0..6)
            .map(|_| g.route(&t("x", 0), 3, &mut rr).unwrap())
            .collect();
        assert_eq!(targets, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn fields_grouping_is_stable_per_key() {
        let g = Grouping::Fields(vec![0]);
        let mut rr = 0;
        let a1 = g.route(&t("apple", 1), 4, &mut rr).unwrap();
        let a2 = g.route(&t("apple", 2), 4, &mut rr).unwrap();
        assert_eq!(a1, a2, "same key, same target regardless of other fields");
    }

    #[test]
    fn fields_grouping_spreads_keys() {
        let g = Grouping::Fields(vec![0]);
        let mut rr = 0;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..100 {
            let word = format!("word-{i}");
            seen.insert(g.route(&t(&word, 0), 8, &mut rr).unwrap());
        }
        assert!(
            seen.len() >= 6,
            "expected most of 8 targets used, got {}",
            seen.len()
        );
    }

    #[test]
    fn global_always_zero() {
        let g = Grouping::Global;
        let mut rr = 5;
        assert_eq!(g.route(&t("x", 0), 7, &mut rr), Some(0));
    }

    #[test]
    fn all_broadcasts() {
        let g = Grouping::All;
        let mut rr = 0;
        assert_eq!(g.route(&t("x", 0), 3, &mut rr), None);
    }

    #[test]
    #[should_panic(expected = "zero consumers")]
    fn zero_fanout_panics() {
        let mut rr = 0;
        let _ = Grouping::Shuffle.route(&t("x", 0), 0, &mut rr);
    }
}
