//! The grey-box Blazes adapter for Storm topologies.
//!
//! The paper extracts dataflow metadata from Storm "via a reusable adapter"
//! and combines it with manually supplied annotations (Section VI). This
//! module does the same: [`TopologyAnnotations`] holds the programmer's
//! C.O.W.R. annotations plus spout schemas/seals, and
//! [`dataflow_graph`] converts a [`TopologyDescription`] into a
//! `blazes_core::DataflowGraph` ready for analysis.

use crate::topology::TopologyDescription;
use blazes_core::annotation::ComponentAnnotation;
use blazes_core::error::{BlazesError, Result};
use blazes_core::graph::DataflowGraph;
use std::collections::BTreeMap;

/// Annotations the programmer supplies for a topology.
#[derive(Debug, Clone, Default)]
pub struct TopologyAnnotations {
    bolt_annotations: BTreeMap<String, ComponentAnnotation>,
    spout_attrs: BTreeMap<String, Vec<String>>,
    spout_seals: BTreeMap<String, Vec<String>>,
}

impl TopologyAnnotations {
    /// Empty annotation set.
    #[must_use]
    pub fn new() -> Self {
        TopologyAnnotations::default()
    }

    /// Annotate a bolt's single (input→output) path.
    pub fn annotate_bolt(
        &mut self,
        name: impl Into<String>,
        annotation: ComponentAnnotation,
    ) -> &mut Self {
        self.bolt_annotations.insert(name.into(), annotation);
        self
    }

    /// Declare the record attributes a spout emits.
    pub fn spout_attrs<I, S>(&mut self, name: impl Into<String>, attrs: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.spout_attrs
            .insert(name.into(), attrs.into_iter().map(Into::into).collect());
        self
    }

    /// Declare that a spout's stream is sealed on `key`.
    pub fn seal_spout<I, S>(&mut self, name: impl Into<String>, key: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.spout_seals
            .insert(name.into(), key.into_iter().map(Into::into).collect());
        self
    }
}

/// Convert a topology description plus annotations into a logical dataflow
/// graph for the Blazes analyzer.
///
/// Conventions: every bolt becomes a component with one `in` → `out` path;
/// spouts become sources; sink nodes become graph sinks. Bolts without an
/// annotation default to `OW_*` (unknown partitions, stateful,
/// order-sensitive) — the conservative choice for un-reviewed code.
pub fn dataflow_graph(
    desc: &TopologyDescription,
    ann: &TopologyAnnotations,
) -> Result<DataflowGraph> {
    let mut g = DataflowGraph::new(desc.name.clone());
    let mut sources = BTreeMap::new();
    let mut components = BTreeMap::new();
    let mut sinks = BTreeMap::new();

    for (i, node) in desc.nodes.iter().enumerate() {
        match node.kind {
            "spout" => {
                let attrs: Vec<&str> = ann
                    .spout_attrs
                    .get(&node.name)
                    .map(|v| v.iter().map(String::as_str).collect())
                    .unwrap_or_default();
                let src = g.add_source(&node.name, &attrs);
                if let Some(key) = ann.spout_seals.get(&node.name) {
                    g.seal_source(src, key.iter().cloned());
                }
                sources.insert(i, src);
            }
            "bolt" => {
                let c = g.add_component(&node.name);
                let annotation = ann
                    .bolt_annotations
                    .get(&node.name)
                    .cloned()
                    .unwrap_or_else(ComponentAnnotation::ow_star);
                g.add_path(c, "in", "out", annotation);
                components.insert(i, c);
            }
            "sink" => {
                let s = g.add_sink(&node.name);
                sinks.insert(i, s);
            }
            other => {
                return Err(BlazesError::MalformedGraph(format!(
                    "unknown node kind {other:?}"
                )))
            }
        }
    }

    for (i, node) in desc.nodes.iter().enumerate() {
        for &src in &node.sources {
            match (sources.get(&src), components.get(&src)) {
                (Some(&source), _) => {
                    if let Some(&c) = components.get(&i) {
                        g.connect_source(source, c, "in");
                    } else if sinks.contains_key(&i) {
                        return Err(BlazesError::MalformedGraph(format!(
                            "sink {:?} subscribed directly to a spout",
                            node.name
                        )));
                    }
                }
                (None, Some(&from)) => {
                    if let Some(&c) = components.get(&i) {
                        g.connect(from, "out", c, "in");
                    } else if let Some(&k) = sinks.get(&i) {
                        g.connect_sink(from, "out", k);
                    }
                }
                (None, None) => {
                    return Err(BlazesError::MalformedGraph(format!(
                        "node {:?} subscribes to a sink",
                        node.name
                    )))
                }
            }
        }
    }
    g.validate()?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bolt::IdentityBolt;
    use crate::grouping::Grouping;
    use crate::topology::TopologyBuilder;
    use blazes_core::analysis::Analyzer;
    use blazes_core::label::Label;
    use blazes_dataflow::sinks::CollectorSink;

    fn wordcount_builder() -> TopologyBuilder {
        let mut t = TopologyBuilder::new("wordcount", 0);
        let spout = t.add_spout("tweets", 3);
        let splitter = t.add_bolt(
            "Splitter",
            3,
            || Box::new(IdentityBolt),
            vec![(spout, Grouping::Shuffle)],
        );
        let count = t.add_bolt(
            "Count",
            3,
            || Box::new(IdentityBolt),
            vec![(splitter, Grouping::Fields(vec![0]))],
        );
        let commit = t.add_bolt(
            "Commit",
            2,
            || Box::new(IdentityBolt),
            vec![(count, Grouping::Shuffle)],
        );
        t.add_collector_sink("store", CollectorSink::new(), commit);
        t
    }

    fn wordcount_annotations(sealed: bool) -> TopologyAnnotations {
        let mut ann = TopologyAnnotations::new();
        ann.spout_attrs("tweets", ["word", "batch"])
            .annotate_bolt("Splitter", ComponentAnnotation::cr())
            .annotate_bolt("Count", ComponentAnnotation::ow(["word", "batch"]))
            .annotate_bolt("Commit", ComponentAnnotation::cw());
        if sealed {
            ann.seal_spout("tweets", ["batch"]);
        }
        ann
    }

    #[test]
    fn unsealed_wordcount_analyzes_to_run() {
        let desc = wordcount_builder().describe();
        let g = dataflow_graph(&desc, &wordcount_annotations(false)).unwrap();
        let out = Analyzer::new(&g).run().unwrap();
        let sink = g.sink_by_name("store").unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Run));
    }

    #[test]
    fn sealed_wordcount_analyzes_to_async() {
        let desc = wordcount_builder().describe();
        let g = dataflow_graph(&desc, &wordcount_annotations(true)).unwrap();
        let out = Analyzer::new(&g).run().unwrap();
        let sink = g.sink_by_name("store").unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
    }

    #[test]
    fn unannotated_bolts_default_conservative() {
        let desc = wordcount_builder().describe();
        let mut ann = TopologyAnnotations::new();
        ann.spout_attrs("tweets", ["word", "batch"]);
        let g = dataflow_graph(&desc, &ann).unwrap();
        let c = g.component_by_name("Count").unwrap();
        assert_eq!(
            g.component(c).paths[0].annotation,
            ComponentAnnotation::ow_star()
        );
    }

    #[test]
    fn parallelism_is_erased_in_logical_graph() {
        // The logical dataflow has one component per bolt regardless of
        // parallelism (paper Section II: logical vs physical dataflow).
        let desc = wordcount_builder().describe();
        let g = dataflow_graph(&desc, &wordcount_annotations(false)).unwrap();
        assert_eq!(g.components().len(), 3);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }
}
