//! The engine-side host for bolts: routing, batch tracking and
//! transactional commit deferral.
//!
//! Every spout and bolt instance is wrapped in a [`BoltAdapter`], a
//! `blazes-dataflow` component that:
//!
//! * feeds data tuples to the user bolt and routes its emissions downstream
//!   per the topology's groupings (one output-port block per downstream
//!   node, one port per consumer instance);
//! * tracks batch completion: a batch is locally complete when a seal for
//!   it has arrived from **every distinct upstream producer** (duplicate
//!   seals from at-least-once channels are deduplicated by producer id);
//! * on completion, either finishes the batch immediately
//!   ([`BatchHandling::Streaming`] — the paper's sealed topology) or asks
//!   the commit coordinator and waits for an in-order grant
//!   ([`BatchHandling::Transactional`] — Storm's coordinated baseline);
//! * after finishing a batch, forwards its own seal downstream, stamped
//!   with this instance's producer id — the same punctuation-driven
//!   unanimous vote, repeated hop by hop.

use crate::bolt::{Bolt, BoltContext};
use crate::grouping::Grouping;
use blazes_dataflow::component::{Component, Context};
use blazes_dataflow::message::{Message, SealKey};
use blazes_dataflow::value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Reserved seal-key attribute naming the batch.
pub const BATCH_ATTR: &str = "batch";
/// Reserved seal-key attribute carrying the emitting producer id.
pub const PRODUCER_ATTR: &str = "producer";
/// Producer id used for seals injected from outside the topology (spout
/// schedules).
pub const INJECTED_PRODUCER: i64 = -1;

/// Input port carrying upstream data and seals.
pub const PORT_UPSTREAM: usize = 0;
/// Input port carrying commit grants from the coordinator (transactional
/// bolts only).
pub const PORT_GRANT: usize = 1;

/// How the adapter treats batch completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchHandling {
    /// Finish the batch as soon as it is locally complete (sealed /
    /// uncoordinated topologies).
    Streaming,
    /// Announce readiness to the commit coordinator and finish only when
    /// the in-order grant arrives (transactional topologies).
    Transactional,
}

/// A downstream subscription of this node.
#[derive(Debug, Clone)]
pub struct Downstream {
    /// First output port of the block reserved for this subscription.
    pub base_port: usize,
    /// Number of consumer instances.
    pub fanout: usize,
    /// The grouping for data tuples.
    pub grouping: Grouping,
}

#[derive(Debug, Default)]
struct BatchState {
    sealed_by: BTreeSet<i64>,
    finished: bool,
    ready_sent: bool,
}

/// The engine component hosting one bolt instance.
pub struct BoltAdapter {
    bolt: Box<dyn Bolt>,
    name: String,
    /// Globally unique producer id of this instance.
    producer_id: i64,
    /// Index within this node's parallelism group.
    instance_index: usize,
    /// Number of distinct upstream producers whose seal is required per
    /// batch.
    expected_producers: usize,
    mode: BatchHandling,
    downstream: Vec<Downstream>,
    /// Output port for readiness messages (transactional only).
    coord_port: Option<usize>,
    rr: Vec<usize>,
    batches: BTreeMap<i64, BatchState>,
}

impl BoltAdapter {
    /// Wrap `bolt` for execution.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bolt: Box<dyn Bolt>,
        name: impl Into<String>,
        producer_id: i64,
        instance_index: usize,
        expected_producers: usize,
        mode: BatchHandling,
        downstream: Vec<Downstream>,
        coord_port: Option<usize>,
    ) -> Self {
        let rr = vec![0; downstream.len()];
        BoltAdapter {
            bolt,
            name: name.into(),
            producer_id,
            instance_index,
            expected_producers,
            mode,
            downstream,
            coord_port,
            rr,
            batches: BTreeMap::new(),
        }
    }

    fn route_outputs(&mut self, bctx: BoltContext, ctx: &mut Context) {
        let BoltContext {
            emitted,
            emitted_seals,
            ..
        } = bctx;
        for tuple in emitted {
            for (di, d) in self.downstream.iter().enumerate() {
                match d.grouping.route(&tuple, d.fanout, &mut self.rr[di]) {
                    Some(target) => {
                        ctx.emit(d.base_port + target, Message::Data(tuple.clone()));
                    }
                    None => {
                        for t in 0..d.fanout {
                            ctx.emit(d.base_port + t, Message::Data(tuple.clone()));
                        }
                    }
                }
            }
        }
        for seal in emitted_seals {
            self.broadcast_seal(seal, ctx);
        }
    }

    fn broadcast_seal(&self, key: SealKey, ctx: &mut Context) {
        for d in &self.downstream {
            for t in 0..d.fanout {
                ctx.emit(d.base_port + t, Message::Seal(key.clone()));
            }
        }
    }

    /// Execute `finish_batch` on the user bolt and propagate the seal.
    fn finish_batch(&mut self, batch: i64, ctx: &mut Context) {
        let mut bctx = BoltContext::new(ctx.now, self.instance_index);
        self.bolt.finish_batch(batch, &mut bctx);
        self.route_outputs(bctx, ctx);
        self.broadcast_seal(
            SealKey::new([
                (BATCH_ATTR, Value::Int(batch)),
                (PRODUCER_ATTR, Value::Int(self.producer_id)),
            ]),
            ctx,
        );
    }

    fn on_seal(&mut self, key: &SealKey, ctx: &mut Context) {
        let Some(batch) = key.value_of(BATCH_ATTR).and_then(Value::as_int) else {
            // Non-batch seals are forwarded verbatim (rare).
            self.broadcast_seal(key.clone(), ctx);
            return;
        };
        let producer = key
            .value_of(PRODUCER_ATTR)
            .and_then(Value::as_int)
            .unwrap_or(INJECTED_PRODUCER);
        let expected = self.expected_producers;
        let state = self.batches.entry(batch).or_default();
        if state.finished {
            return; // duplicate seal after completion
        }
        state.sealed_by.insert(producer);
        if state.sealed_by.len() < expected {
            return;
        }
        match self.mode {
            BatchHandling::Streaming => {
                state.finished = true;
                self.finish_batch(batch, ctx);
            }
            BatchHandling::Transactional => {
                if !state.ready_sent {
                    state.ready_sent = true;
                    let port = self
                        .coord_port
                        .expect("transactional bolt requires a coordinator port");
                    ctx.emit(port, Message::data([batch, self.instance_index as i64]));
                }
            }
        }
    }

    fn on_grant(&mut self, msg: &Message, ctx: &mut Context) {
        let Some(batch) = msg.as_data().and_then(|t| t.get(0)).and_then(Value::as_int) else {
            return;
        };
        let state = self.batches.entry(batch).or_default();
        if state.finished {
            return;
        }
        state.finished = true;
        self.finish_batch(batch, ctx);
    }
}

impl Component for BoltAdapter {
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context) {
        match (port, &msg) {
            (PORT_GRANT, _) => self.on_grant(&msg, ctx),
            (_, Message::Data(tuple)) => {
                let mut bctx = BoltContext::new(ctx.now, self.instance_index);
                self.bolt.execute(tuple.clone(), &mut bctx);
                self.route_outputs(bctx, ctx);
            }
            (_, Message::Seal(key)) => {
                let key = key.clone();
                self.on_seal(&key, ctx);
            }
            (_, Message::Eos) => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Build a batch-completion seal for injection into spout schedules.
#[must_use]
pub fn batch_seal(batch: i64) -> Message {
    Message::Seal(SealKey::new([(BATCH_ATTR, Value::Int(batch))]))
}

/// A commit-gated spout for transactional topologies.
///
/// Storm's transactional spouts keep at most `max_pending` batches in
/// flight: batch `b + max_pending` is not emitted until batch `b` has
/// committed. This closed loop is what puts the coordination round-trip on
/// the critical path — the throughput cost Figure 11 measures.
///
/// Any message on a non-grant port starts emission; commit grants (from the
/// coordinator, on [`PORT_GRANT`]) advance the window.
pub struct GatedSpout {
    name: String,
    producer_id: i64,
    downstream: Vec<Downstream>,
    rr: Vec<usize>,
    /// Batches in emission order: `(batch id, tuples)`.
    batches: Vec<(i64, Vec<Tuple>)>,
    next_idx: usize,
    committed: usize,
    max_pending: usize,
    started: bool,
}

impl GatedSpout {
    /// Build a gated spout from an ordered batch list.
    pub fn new(
        name: impl Into<String>,
        producer_id: i64,
        downstream: Vec<Downstream>,
        batches: Vec<(i64, Vec<Tuple>)>,
        max_pending: usize,
    ) -> Self {
        let rr = vec![0; downstream.len()];
        GatedSpout {
            name: name.into(),
            producer_id,
            downstream,
            rr,
            batches,
            next_idx: 0,
            committed: 0,
            max_pending: max_pending.max(1),
            started: false,
        }
    }

    /// Group a flat spout schedule into batches: data tuples accumulate
    /// until a `batch_seal` closes the batch.
    #[must_use]
    pub fn group_schedule(
        schedule: &[(blazes_dataflow::sim::Time, Message)],
    ) -> Vec<(i64, Vec<Tuple>)> {
        let mut batches = Vec::new();
        let mut current: Vec<Tuple> = Vec::new();
        for (_, msg) in schedule {
            match msg {
                Message::Data(t) => current.push(t.clone()),
                Message::Seal(key) => {
                    if let Some(b) = key.value_of(BATCH_ATTR).and_then(Value::as_int) {
                        batches.push((b, std::mem::take(&mut current)));
                    }
                }
                Message::Eos => {}
            }
        }
        if !current.is_empty() {
            // Trailing unsealed data: close it as a final implicit batch.
            let next = batches.last().map_or(0, |(b, _)| b + 1);
            batches.push((next, current));
        }
        batches
    }

    fn pump(&mut self, ctx: &mut Context) {
        while self.next_idx < self.batches.len()
            && self.next_idx - self.committed < self.max_pending
        {
            let (batch, tuples) = self.batches[self.next_idx].clone();
            self.next_idx += 1;
            for tuple in tuples {
                for (di, d) in self.downstream.iter().enumerate() {
                    match d.grouping.route(&tuple, d.fanout, &mut self.rr[di]) {
                        Some(target) => {
                            ctx.emit(d.base_port + target, Message::Data(tuple.clone()));
                        }
                        None => {
                            for t in 0..d.fanout {
                                ctx.emit(d.base_port + t, Message::Data(tuple.clone()));
                            }
                        }
                    }
                }
            }
            let seal = SealKey::new([
                (BATCH_ATTR, Value::Int(batch)),
                (PRODUCER_ATTR, Value::Int(self.producer_id)),
            ]);
            for d in &self.downstream {
                for t in 0..d.fanout {
                    ctx.emit(d.base_port + t, Message::Seal(seal.clone()));
                }
            }
        }
    }
}

impl Component for GatedSpout {
    fn on_message(&mut self, port: usize, _msg: Message, ctx: &mut Context) {
        if port == PORT_GRANT {
            if self.started {
                self.committed = (self.committed + 1).min(self.next_idx);
                self.pump(ctx);
            }
        } else {
            self.started = true;
            self.pump(ctx);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bolt::IdentityBolt;
    use blazes_dataflow::sim::InstanceId;

    fn adapter(expected: usize, mode: BatchHandling, coord: Option<usize>) -> BoltAdapter {
        BoltAdapter::new(
            Box::new(IdentityBolt),
            "test",
            7,
            0,
            expected,
            mode,
            vec![Downstream {
                base_port: 0,
                fanout: 2,
                grouping: Grouping::All,
            }],
            coord,
        )
    }

    fn ctx() -> Context {
        Context::new(0, InstanceId(0))
    }

    // NOTE: Context's emission buffer is private to blazes-dataflow, so the
    // adapter's routing behavior is exercised through full simulations in
    // `topology.rs` tests. The tests here cover pure seal bookkeeping.

    #[test]
    fn seal_requires_all_producers() {
        let mut a = adapter(2, BatchHandling::Streaming, None);
        let mut c = ctx();
        a.on_seal(
            &SealKey::new([(BATCH_ATTR, Value::Int(0)), (PRODUCER_ATTR, Value::Int(1))]),
            &mut c,
        );
        assert!(!a.batches[&0].finished);
        a.on_seal(
            &SealKey::new([(BATCH_ATTR, Value::Int(0)), (PRODUCER_ATTR, Value::Int(2))]),
            &mut c,
        );
        assert!(a.batches[&0].finished);
    }

    #[test]
    fn duplicate_seals_from_same_producer_ignored() {
        let mut a = adapter(2, BatchHandling::Streaming, None);
        let mut c = ctx();
        for _ in 0..5 {
            a.on_seal(
                &SealKey::new([(BATCH_ATTR, Value::Int(0)), (PRODUCER_ATTR, Value::Int(1))]),
                &mut c,
            );
        }
        assert!(
            !a.batches[&0].finished,
            "one producer cannot complete a 2-producer batch"
        );
    }

    #[test]
    fn injected_seal_uses_sentinel_producer() {
        let mut a = adapter(1, BatchHandling::Streaming, None);
        let mut c = ctx();
        a.on_seal(&SealKey::new([(BATCH_ATTR, Value::Int(3))]), &mut c);
        assert!(a.batches[&3].finished);
    }

    #[test]
    fn transactional_defers_until_grant() {
        let mut a = adapter(1, BatchHandling::Transactional, Some(9));
        let mut c = ctx();
        a.on_seal(&SealKey::new([(BATCH_ATTR, Value::Int(0))]), &mut c);
        assert!(!a.batches[&0].finished, "must wait for the grant");
        assert!(a.batches[&0].ready_sent);
        a.on_grant(&Message::data([0i64]), &mut c);
        assert!(a.batches[&0].finished);
        // A duplicate grant is idempotent.
        a.on_grant(&Message::data([0i64]), &mut c);
        assert!(a.batches[&0].finished);
    }

    #[test]
    fn batch_seal_helper_shape() {
        let Message::Seal(k) = batch_seal(5) else {
            panic!()
        };
        assert_eq!(k.value_of(BATCH_ATTR), Some(&Value::Int(5)));
    }
}
