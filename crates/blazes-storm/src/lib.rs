//! # blazes-storm
//!
//! A miniature Storm-like stream processing engine on top of the
//! `blazes-dataflow` simulator — the host platform for the paper's first
//! case study (the streaming wordcount of Sections I-B, VI-A and VIII-A).
//!
//! Supported Storm concepts:
//!
//! * **Spouts** ([`topology::TopologyBuilder::add_spout`]): stream sources
//!   with a per-instance injection schedule. Batches are delimited by seal
//!   punctuations on the batch attribute, mirroring Storm's numbered batches
//!   (the unit of replay).
//! * **Bolts** ([`bolt::Bolt`]): user processing logic with configurable
//!   parallelism and [`grouping::Grouping`]s (shuffle / fields / global /
//!   all).
//! * **Batch tracking**: every bolt instance counts the seal punctuations of
//!   its upstream instances (a local unanimous vote) to learn when a batch
//!   is complete, then forwards its own seal downstream.
//! * **Transactional topologies**
//!   ([`topology::TopologyBuilder::make_transactional`]): committer bolts
//!   route batch-completion through a [`blazes_coord::CommitCoordinator`],
//!   which grants commits in strict batch order — Storm's coordinated
//!   baseline in Figure 11.
//! * **Grey-box adapter** ([`adapter`]): extract the topology's logical
//!   dataflow as a `blazes_core::DataflowGraph`, apply C.O.W.R. annotations
//!   and run the Blazes analysis, as the paper's reusable Storm adapter
//!   does.

pub mod adapter;
pub mod bolt;
pub mod grouping;
pub mod runtime;
pub mod topology;

pub use adapter::TopologyAnnotations;
pub use bolt::{Bolt, BoltContext};
pub use grouping::Grouping;
pub use runtime::{BatchHandling, BoltAdapter};
pub use topology::prelude_for_tests;
pub use topology::{
    NodeHandle, ParStormRun, StormExecution, StormRun, TopologyBuilder, TransactionalConfig,
};
