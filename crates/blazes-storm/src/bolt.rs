//! The bolt abstraction: user processing logic hosted by the engine.

use blazes_dataflow::message::SealKey;
use blazes_dataflow::sim::Time;
use blazes_dataflow::value::Tuple;

/// Emission buffer handed to bolts. The hosting [`crate::BoltAdapter`]
/// routes emitted tuples to downstream instances per the topology's
/// groupings.
#[derive(Debug, Default)]
pub struct BoltContext {
    /// Virtual time of the current event.
    pub now: Time,
    /// Index of this bolt instance within its parallelism group.
    pub instance_index: usize,
    pub(crate) emitted: Vec<Tuple>,
    pub(crate) emitted_seals: Vec<SealKey>,
}

impl BoltContext {
    pub(crate) fn new(now: Time, instance_index: usize) -> Self {
        BoltContext {
            now,
            instance_index,
            ..BoltContext::default()
        }
    }

    /// Emit a tuple downstream.
    pub fn emit(&mut self, tuple: Tuple) {
        self.emitted.push(tuple);
    }

    /// Emit an extra seal punctuation downstream (rarely needed: the engine
    /// emits batch seals automatically after `finish_batch`).
    pub fn emit_seal(&mut self, key: SealKey) {
        self.emitted_seals.push(key);
    }
}

/// A Storm-style bolt.
pub trait Bolt: Send {
    /// Process one tuple.
    fn execute(&mut self, tuple: Tuple, ctx: &mut BoltContext);

    /// Called when a batch is complete at this instance (all upstream seals
    /// for the batch have arrived — and, in a transactional topology, the
    /// coordinator has granted the commit).
    fn finish_batch(&mut self, _batch: i64, _ctx: &mut BoltContext) {}

    /// Bolt name for traces.
    fn name(&self) -> &str {
        "bolt"
    }
}

/// A bolt that forwards tuples unchanged (used for spout adapters and in
/// tests).
#[derive(Debug, Default)]
pub struct IdentityBolt;

impl Bolt for IdentityBolt {
    fn execute(&mut self, tuple: Tuple, ctx: &mut BoltContext) {
        ctx.emit(tuple);
    }

    fn name(&self) -> &str {
        "identity"
    }
}

/// A bolt defined by a closure (convenience for tests and examples).
pub struct FnBolt<F> {
    name: String,
    f: F,
}

impl<F> FnBolt<F>
where
    F: FnMut(Tuple, &mut BoltContext) + Send,
{
    /// Wrap a closure as a bolt.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnBolt {
            name: name.into(),
            f,
        }
    }
}

impl<F> Bolt for FnBolt<F>
where
    F: FnMut(Tuple, &mut BoltContext) + Send,
{
    fn execute(&mut self, tuple: Tuple, ctx: &mut BoltContext) {
        (self.f)(tuple, ctx);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazes_dataflow::value::Value;

    #[test]
    fn identity_forwards() {
        let mut b = IdentityBolt;
        let mut ctx = BoltContext::new(0, 0);
        b.execute(Tuple::new([Value::Int(1)]), &mut ctx);
        assert_eq!(ctx.emitted, vec![Tuple::new([Value::Int(1)])]);
    }

    #[test]
    fn fn_bolt_runs_closure() {
        let mut b = FnBolt::new("double", |t: Tuple, ctx: &mut BoltContext| {
            let v = t.get(0).and_then(Value::as_int).unwrap_or(0);
            ctx.emit(Tuple::new([Value::Int(v * 2)]));
        });
        let mut ctx = BoltContext::new(0, 0);
        b.execute(Tuple::new([Value::Int(21)]), &mut ctx);
        assert_eq!(ctx.emitted, vec![Tuple::new([Value::Int(42)])]);
        assert_eq!(b.name(), "double");
    }

    #[test]
    fn context_collects_seals() {
        let mut ctx = BoltContext::new(9, 2);
        ctx.emit_seal(SealKey::new([("batch", 1i64)]));
        assert_eq!(ctx.emitted_seals.len(), 1);
        assert_eq!(ctx.instance_index, 2);
        assert_eq!(ctx.now, 9);
    }
}
