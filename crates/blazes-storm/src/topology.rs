//! Topology construction and execution.
//!
//! [`TopologyBuilder`] assembles spouts, bolts and sinks into a simulated
//! Storm cluster:
//!
//! ```
//! use blazes_storm::prelude_for_tests::*;
//!
//! let mut t = TopologyBuilder::new("demo", 42);
//! let spout = t.add_spout("tweets", 1);
//! t.spout_schedule(spout, 0, vec![
//!     (0, Message::data(["hello", "0"])),
//!     (10, batch_seal(0)),
//! ]);
//! let sink = CollectorSink::new();
//! let bolt = t.add_bolt("echo", 1, || Box::new(IdentityBolt), vec![(spout, Grouping::Shuffle)]);
//! t.add_collector_sink("out", sink.clone(), bolt);
//! let mut run = t.build();
//! run.run(None);
//! assert_eq!(sink.messages().iter().filter(|m| m.as_data().is_some()).count(), 1);
//! ```

use crate::bolt::{Bolt, IdentityBolt};
use crate::grouping::Grouping;
use crate::runtime::{
    BatchHandling, BoltAdapter, Downstream, GatedSpout, BATCH_ATTR, PORT_GRANT, PORT_UPSTREAM,
};
use blazes_coord::CommitCoordinator;
use blazes_core::placement::{CoordDirective, CoordinationSpec};
use blazes_dataflow::backend::{
    BackendRunStats, BackendSpec, ExecutorBuilder, NoopPass, PortId, RewriteStats, RewritingBuilder,
};
use blazes_dataflow::channel::ChannelConfig;
use blazes_dataflow::component::Component;
use blazes_dataflow::message::Message;
use blazes_dataflow::metrics::RunStats;
use blazes_dataflow::par::{ParBuilder, ParExecutor, ParStats, ParTuning};
use blazes_dataflow::sim::{InstanceId, SimBuilder, Simulator, Time};
use std::error::Error;
use std::fmt;

/// Handle to a topology node (spout, bolt or sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeHandle(pub usize);

/// Transactional-coordination parameters (the simulated Zookeeper).
#[derive(Debug, Clone)]
pub struct TransactionalConfig {
    /// Coordinator service time per readiness/grant message (the cost of a
    /// Zookeeper write).
    pub service_time: Time,
    /// Channel between committers and the coordinator.
    pub channel: ChannelConfig,
    /// First batch id the coordinator will grant.
    pub first_batch: i64,
    /// Maximum batches in flight: spouts hold batch `b + max_pending` until
    /// batch `b` commits (Storm's transactional spout window). `0` disables
    /// spout gating (commits still serialize, but emission is open-loop).
    pub max_pending: usize,
}

impl Default for TransactionalConfig {
    fn default() -> Self {
        TransactionalConfig {
            service_time: 2_000,
            channel: ChannelConfig::lan(),
            first_batch: 0,
            max_pending: 1,
        }
    }
}

enum NodeKind {
    Spout {
        schedules: Vec<Vec<(Time, Message)>>,
    },
    Bolt {
        factory: Box<dyn FnMut(usize) -> Box<dyn Bolt>>,
        transactional: bool,
    },
    Sink {
        component: Option<Box<dyn Component>>,
    },
}

struct NodeSpec {
    name: String,
    parallelism: usize,
    kind: NodeKind,
    subs: Vec<(usize, Grouping, ChannelConfig)>,
    service_time: Time,
}

/// A description of the topology structure, used by the grey-box adapter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyDescription {
    /// Topology name.
    pub name: String,
    /// One entry per node.
    pub nodes: Vec<NodeDescription>,
}

/// Structure of one node for the grey-box adapter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDescription {
    /// Node name.
    pub name: String,
    /// Parallelism (instance count).
    pub parallelism: usize,
    /// `"spout"`, `"bolt"` or `"sink"`.
    pub kind: &'static str,
    /// Indices of subscribed source nodes.
    pub sources: Vec<usize>,
}

/// Why a [`CoordinationSpec`] could not be applied to this topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinationError {
    /// A directive names a component that is not a topology node.
    UnknownComponent(String),
    /// A directive targets a node that is not a bolt.
    NotABolt(String),
    /// A seal directive uses a key the engine's punctuation protocol does
    /// not speak (bolts track completion on the `batch` attribute).
    UnsupportedSealKey {
        /// The flagged component.
        component: String,
        /// The rejected key, rendered.
        key: String,
    },
}

impl fmt::Display for CoordinationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinationError::UnknownComponent(name) => {
                write!(f, "coordination directive names unknown component {name:?}")
            }
            CoordinationError::NotABolt(name) => {
                write!(f, "coordination directive targets non-bolt node {name:?}")
            }
            CoordinationError::UnsupportedSealKey { component, key } => write!(
                f,
                "seal directive at {component:?} keyed {{{key}}} — engine punctuations seal on \
                 `{BATCH_ATTR}`"
            ),
        }
    }
}

impl Error for CoordinationError {}

/// What [`TopologyBuilder::apply_coordination`] did — the storm-side
/// overhead ledger of the annotate→analyze→inject pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoordinationOutcome {
    /// Bolts made transactional to satisfy `Order` directives (the
    /// engine-native static ordering service: readiness/grant rounds
    /// through a [`CommitCoordinator`]).
    pub ordered: Vec<String>,
    /// `(component, input)` pairs whose `Seal` directives are satisfied by
    /// the punctuation protocol every [`BoltAdapter`] already runs — no
    /// operator injected, which is the "minimal" in minimal coordination.
    pub seal_native: Vec<(String, String)>,
    /// Accounting of the graph-rewrite pass the build ran through. For
    /// engine-native coordination this must read untouched.
    pub rewrite: RewriteStats,
}

impl CoordinationOutcome {
    /// Did the spec require injecting nothing at all?
    #[must_use]
    pub fn is_rewrite_free(&self) -> bool {
        self.ordered.is_empty() && self.rewrite.is_untouched()
    }
}

/// Builder for a simulated Storm topology.
pub struct TopologyBuilder {
    name: String,
    seed: u64,
    nodes: Vec<NodeSpec>,
    default_channel: ChannelConfig,
    transactional: Option<TransactionalConfig>,
}

impl TopologyBuilder {
    /// Start a topology with the given simulation seed.
    #[must_use]
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        TopologyBuilder {
            name: name.into(),
            seed,
            nodes: Vec::new(),
            default_channel: ChannelConfig::lan(),
            transactional: None,
        }
    }

    /// Override the default channel used by subscriptions.
    pub fn set_default_channel(&mut self, cfg: ChannelConfig) {
        self.default_channel = cfg;
    }

    /// Add a spout with `parallelism` instances (schedule them with
    /// [`TopologyBuilder::spout_schedule`]).
    pub fn add_spout(&mut self, name: impl Into<String>, parallelism: usize) -> NodeHandle {
        assert!(parallelism > 0);
        let h = NodeHandle(self.nodes.len());
        self.nodes.push(NodeSpec {
            name: name.into(),
            parallelism,
            kind: NodeKind::Spout {
                schedules: vec![Vec::new(); parallelism],
            },
            subs: Vec::new(),
            service_time: 0,
        });
        h
    }

    /// Set the injection schedule of one spout instance: `(time, message)`
    /// pairs. Use [`crate::runtime::batch_seal`] to close batches.
    pub fn spout_schedule(
        &mut self,
        spout: NodeHandle,
        instance: usize,
        schedule: Vec<(Time, Message)>,
    ) {
        match &mut self.nodes[spout.0].kind {
            NodeKind::Spout { schedules } => schedules[instance] = schedule,
            _ => panic!("node {:?} is not a spout", self.nodes[spout.0].name),
        }
    }

    /// Add a bolt; `factory` builds one `Bolt` per instance.
    pub fn add_bolt<F>(
        &mut self,
        name: impl Into<String>,
        parallelism: usize,
        mut factory: F,
        subs: Vec<(NodeHandle, Grouping)>,
    ) -> NodeHandle
    where
        F: FnMut() -> Box<dyn Bolt> + 'static,
    {
        assert!(parallelism > 0);
        let h = NodeHandle(self.nodes.len());
        let channel = self.default_channel.clone();
        self.nodes.push(NodeSpec {
            name: name.into(),
            parallelism,
            kind: NodeKind::Bolt {
                factory: Box::new(move |_| factory()),
                transactional: false,
            },
            subs: subs
                .into_iter()
                .map(|(src, g)| (src.0, g, channel.clone()))
                .collect(),
            service_time: 0,
        });
        h
    }

    /// Add a sink node hosting an arbitrary dataflow component (e.g. a
    /// `CollectorSink` or `CountingSink` clone).
    pub fn add_sink(
        &mut self,
        name: impl Into<String>,
        component: Box<dyn Component>,
        source: NodeHandle,
    ) -> NodeHandle {
        let h = NodeHandle(self.nodes.len());
        let channel = self.default_channel.clone();
        self.nodes.push(NodeSpec {
            name: name.into(),
            parallelism: 1,
            kind: NodeKind::Sink {
                component: Some(component),
            },
            subs: vec![(source.0, Grouping::Global, channel)],
            service_time: 0,
        });
        h
    }

    /// Convenience: add a `CollectorSink` clone as a sink node.
    pub fn add_collector_sink(
        &mut self,
        name: impl Into<String>,
        sink: blazes_dataflow::sinks::CollectorSink,
        source: NodeHandle,
    ) -> NodeHandle {
        self.add_sink(name, Box::new(sink), source)
    }

    /// Set the per-message service time of every instance of a node.
    pub fn set_service_time(&mut self, node: NodeHandle, service: Time) {
        self.nodes[node.0].service_time = service;
    }

    /// Override the channel of a node's subscription to `source`.
    pub fn set_channel(&mut self, node: NodeHandle, source: NodeHandle, cfg: ChannelConfig) {
        for (src, _, ch) in &mut self.nodes[node.0].subs {
            if *src == source.0 {
                *ch = cfg.clone();
            }
        }
    }

    /// Make `node` a transactional committer: its batches commit in strict
    /// batch order through a simulated coordination service.
    pub fn make_transactional(&mut self, node: NodeHandle, cfg: TransactionalConfig) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Bolt { transactional, .. } => *transactional = true,
            _ => panic!("only bolts can be transactional"),
        }
        self.transactional = Some(cfg);
    }

    /// Apply an analysis-derived [`CoordinationSpec`] to this topology,
    /// mapping each directive onto the engine-native mechanism:
    ///
    /// * [`CoordDirective::Order`] — the named bolt becomes transactional:
    ///   its batches commit in one total order through the simulated
    ///   coordination service configured by `ordering` (paper
    ///   Section V-B2, Storm's "transactional topology").
    /// * [`CoordDirective::Seal`] — verified against the engine's native
    ///   punctuation protocol: every [`BoltAdapter`] already buffers
    ///   batches and releases them on a unanimous per-producer seal vote,
    ///   so nothing is injected (the directive's key must be the engine's
    ///   `batch` attribute).
    ///
    /// Use [`TopologyBuilder::build_coordinated`] /
    /// [`TopologyBuilder::build_coordinated_parallel`] to also run the
    /// assembly through the graph-rewrite pass and obtain the full
    /// [`CoordinationOutcome`].
    ///
    /// # Errors
    /// When a directive names an unknown node, targets a non-bolt, or
    /// seals on a key the punctuation protocol does not speak. On error
    /// the builder is left exactly as it was — validation happens before
    /// any directive is applied.
    pub fn apply_coordination(
        &mut self,
        spec: &CoordinationSpec,
        ordering: &TransactionalConfig,
    ) -> Result<CoordinationOutcome, CoordinationError> {
        // Resolve and validate every directive first, so a failure cannot
        // leave the builder half-coordinated.
        let mut resolved: Vec<(usize, &CoordDirective)> = Vec::with_capacity(spec.directives.len());
        for directive in &spec.directives {
            let name = directive.component();
            let node = self
                .nodes
                .iter()
                .position(|n| n.name == name)
                .ok_or_else(|| CoordinationError::UnknownComponent(name.to_string()))?;
            if !matches!(self.nodes[node].kind, NodeKind::Bolt { .. }) {
                return Err(CoordinationError::NotABolt(name.to_string()));
            }
            if let CoordDirective::Seal { key, .. } = directive {
                if !key.contains(BATCH_ATTR) {
                    return Err(CoordinationError::UnsupportedSealKey {
                        component: name.to_string(),
                        key: key.to_string(),
                    });
                }
            }
            resolved.push((node, directive));
        }

        let mut outcome = CoordinationOutcome::default();
        for (node, directive) in resolved {
            let name = directive.component().to_string();
            match directive {
                CoordDirective::Order { .. } => {
                    match &mut self.nodes[node].kind {
                        NodeKind::Bolt { transactional, .. } => *transactional = true,
                        _ => unreachable!("validated above"),
                    }
                    self.transactional = Some(ordering.clone());
                    outcome.ordered.push(name);
                }
                CoordDirective::Seal { input, .. } => {
                    outcome.seal_native.push((name, input.clone()));
                }
            }
        }
        Ok(outcome)
    }

    /// Apply `spec` and instantiate onto the discrete-event simulator,
    /// assembling through the graph-rewrite pass so the outcome carries
    /// the pass accounting (zero injected operators for engine-native
    /// coordination — the proof obligation of the "minimal" claim).
    ///
    /// # Errors
    /// See [`TopologyBuilder::apply_coordination`].
    pub fn build_coordinated(
        self,
        spec: &CoordinationSpec,
        ordering: &TransactionalConfig,
    ) -> Result<(StormRun, CoordinationOutcome), CoordinationError> {
        let (exec, outcome) = self.build_coordinated_on(spec, ordering, &BackendSpec::Sim)?;
        match exec {
            StormExecution::Sim(run) => Ok((run, outcome)),
            StormExecution::Par(_) => unreachable!("Sim spec builds a Sim execution"),
        }
    }

    /// Like [`TopologyBuilder::build_coordinated`], onto the multi-worker
    /// parallel executor: the *same* rewritten graph, on `workers` OS
    /// threads.
    ///
    /// # Errors
    /// See [`TopologyBuilder::apply_coordination`].
    ///
    /// # Panics
    /// Panics when `workers` is zero or `tuning` is invalid.
    pub fn build_coordinated_parallel(
        self,
        spec: &CoordinationSpec,
        ordering: &TransactionalConfig,
        workers: usize,
        tuning: ParTuning,
    ) -> Result<(ParStormRun, CoordinationOutcome), CoordinationError> {
        let (exec, outcome) =
            self.build_coordinated_on(spec, ordering, &BackendSpec::Par { workers, tuning })?;
        match exec {
            StormExecution::Par(run) => Ok((run, outcome)),
            StormExecution::Sim(_) => unreachable!("Par spec builds a Par execution"),
        }
    }

    /// Apply `spec` and instantiate onto the backend selected by
    /// `backend`, assembling through the graph-rewrite pass so the
    /// outcome carries the pass accounting (zero injected operators for
    /// engine-native coordination). This is the single coordinated entry
    /// point behind [`TopologyBuilder::build_coordinated`] and
    /// [`TopologyBuilder::build_coordinated_parallel`].
    ///
    /// # Errors
    /// See [`TopologyBuilder::apply_coordination`].
    ///
    /// # Panics
    /// Panics on [`BackendSpec::Dist`]: a `TopologyBuilder` holds
    /// component closures that cannot cross a process boundary, so
    /// distributed runs instead name a deterministic assembly function in
    /// a [`blazes_dataflow::dist::Registry`] (which may call
    /// [`TopologyBuilder::assemble`] internally). Also panics when a
    /// `Par` spec has zero workers or invalid tuning.
    pub fn build_coordinated_on(
        mut self,
        spec: &CoordinationSpec,
        ordering: &TransactionalConfig,
        backend: &BackendSpec,
    ) -> Result<(StormExecution, CoordinationOutcome), CoordinationError> {
        let mut outcome = self.apply_coordination(spec, ordering)?;
        let seed = self.seed;
        let exec = match backend {
            BackendSpec::Sim => {
                let mut sim = SimBuilder::new(seed);
                let mut rb = RewritingBuilder::new(&mut sim, NoopPass);
                let (instances, name) = self.assemble(&mut rb);
                let (_, stats) = rb.finish();
                outcome.rewrite = stats;
                StormExecution::Sim(StormRun {
                    sim: sim.build(),
                    instances,
                    name,
                })
            }
            BackendSpec::Par { workers, tuning } => {
                assert!(*workers > 0, "need at least one worker");
                let mut par = ParBuilder::new(seed)
                    .with_workers(*workers)
                    .with_tuning(*tuning)
                    .expect("valid parallel tuning");
                let mut rb = RewritingBuilder::new(&mut par, NoopPass);
                let (instances, name) = self.assemble(&mut rb);
                let (_, stats) = rb.finish();
                outcome.rewrite = stats;
                StormExecution::Par(ParStormRun {
                    exec: Some(par.build()),
                    instances,
                    name,
                })
            }
            BackendSpec::Dist(_) => panic!(
                "TopologyBuilder cannot ship closures across processes; \
                 register an assembly function in blazes_dataflow::dist::Registry \
                 and run it with blazes_dataflow::dist::run_dist"
            ),
        };
        Ok((exec, outcome))
    }

    /// Structure description for the grey-box Blazes adapter.
    #[must_use]
    pub fn describe(&self) -> TopologyDescription {
        TopologyDescription {
            name: self.name.clone(),
            nodes: self
                .nodes
                .iter()
                .map(|n| NodeDescription {
                    name: n.name.clone(),
                    parallelism: n.parallelism,
                    kind: match n.kind {
                        NodeKind::Spout { .. } => "spout",
                        NodeKind::Bolt { .. } => "bolt",
                        NodeKind::Sink { .. } => "sink",
                    },
                    sources: n.subs.iter().map(|(s, _, _)| *s).collect(),
                })
                .collect(),
        }
    }

    /// Instantiate the topology into a runnable discrete-event simulation.
    #[must_use]
    pub fn build(self) -> StormRun {
        match self.build_on(&BackendSpec::Sim) {
            StormExecution::Sim(run) => run,
            StormExecution::Par(_) => unreachable!("Sim spec builds a Sim execution"),
        }
    }

    /// Instantiate the topology onto the multi-worker parallel executor:
    /// the same components and wiring, executed on `workers` OS threads
    /// instead of in virtual time. Spout schedule times become dispatch
    /// ordering keys; modeled service times do not apply (real processing
    /// costs are paid for real). Only confluent (order-insensitive)
    /// topologies are guaranteed to reproduce the simulator's final state.
    #[must_use]
    pub fn build_parallel(self, workers: usize) -> ParStormRun {
        match self.build_on(&BackendSpec::par(workers)) {
            StormExecution::Par(run) => run,
            StormExecution::Sim(_) => unreachable!("Par spec builds a Par execution"),
        }
    }

    /// Like [`TopologyBuilder::build_parallel`], with explicit scheduler
    /// tuning: work stealing vs static sharding, drain batch size, bounded
    /// mailbox capacity and spill threshold.
    ///
    /// # Panics
    /// Panics when `workers` is zero or `tuning` is invalid (zero batch
    /// size, capacity or spill threshold).
    #[deprecated(note = "use TopologyBuilder::build_on with BackendSpec::Par")]
    #[must_use]
    pub fn build_parallel_tuned(self, workers: usize, tuning: ParTuning) -> ParStormRun {
        match self.build_on(&BackendSpec::Par { workers, tuning }) {
            StormExecution::Par(run) => run,
            StormExecution::Sim(_) => unreachable!("Par spec builds a Par execution"),
        }
    }

    /// Instantiate the topology onto the backend selected by `backend`.
    /// This is the single uncoordinated entry point behind
    /// [`TopologyBuilder::build`] and [`TopologyBuilder::build_parallel`].
    ///
    /// # Panics
    /// Panics on [`BackendSpec::Dist`] (see
    /// [`TopologyBuilder::build_coordinated_on`] for why distributed runs
    /// go through a named assembly registry instead), and when a `Par`
    /// spec has zero workers or invalid tuning.
    #[must_use]
    pub fn build_on(self, backend: &BackendSpec) -> StormExecution {
        let seed = self.seed;
        match backend {
            BackendSpec::Sim => {
                let mut sim = SimBuilder::new(seed);
                let (instances, name) = self.assemble(&mut sim);
                StormExecution::Sim(StormRun {
                    sim: sim.build(),
                    instances,
                    name,
                })
            }
            BackendSpec::Par { workers, tuning } => {
                assert!(*workers > 0, "need at least one worker");
                let mut par = ParBuilder::new(seed)
                    .with_workers(*workers)
                    .with_tuning(*tuning)
                    .expect("valid parallel tuning");
                let (instances, name) = self.assemble(&mut par);
                StormExecution::Par(ParStormRun {
                    exec: Some(par.build()),
                    instances,
                    name,
                })
            }
            BackendSpec::Dist(_) => panic!(
                "TopologyBuilder cannot ship closures across processes; \
                 register an assembly function in blazes_dataflow::dist::Registry \
                 and run it with blazes_dataflow::dist::run_dist"
            ),
        }
    }

    /// Compile the node specs onto an execution backend, returning the
    /// backend instance ids per topology node plus the topology name.
    ///
    /// Public so a [`blazes_dataflow::dist::Registry`] assembly function
    /// can compile the same topology inside every process of a
    /// distributed run (the builder itself cannot cross the byte
    /// boundary; re-running this deterministic assembly is what keeps the
    /// global instance numbering identical everywhere).
    pub fn assemble<B: ExecutorBuilder>(
        mut self,
        backend: &mut B,
    ) -> (Vec<Vec<InstanceId>>, String) {
        let n = self.nodes.len();
        // Downstream registration: for node i, the list of (consumer node,
        // grouping, channel).
        let mut downstreams: Vec<Vec<(usize, Grouping, ChannelConfig)>> = vec![Vec::new(); n];
        for (j, node) in self.nodes.iter().enumerate() {
            for (src, grouping, channel) in &node.subs {
                downstreams[*src].push((j, grouping.clone(), channel.clone()));
            }
        }
        // Expected distinct upstream producers per node: spouts have the
        // injector; others sum their sources' parallelism.
        let expected: Vec<usize> = self
            .nodes
            .iter()
            .map(|node| match node.kind {
                NodeKind::Spout { .. } => 1,
                _ => node
                    .subs
                    .iter()
                    .map(|(src, _, _)| self.nodes[*src].parallelism)
                    .sum::<usize>()
                    .max(1),
            })
            .collect();

        let parallelism: Vec<usize> = self.nodes.iter().map(|x| x.parallelism).collect();
        let mut instances: Vec<Vec<InstanceId>> = Vec::with_capacity(n);
        let mut producer_base: Vec<i64> = Vec::with_capacity(n);
        let mut next_producer: i64 = 0;
        let mut injections: Vec<(Time, usize, usize, Message)> = Vec::new();
        let mut committers: Vec<(usize, usize)> = Vec::new(); // (node, coord_port)
        let mut gated_spouts: Vec<InstanceId> = Vec::new();

        for (i, node) in self.nodes.iter_mut().enumerate() {
            producer_base.push(next_producer);
            next_producer += node.parallelism as i64;

            // Output port layout: one block per downstream subscription.
            let mut ds: Vec<Downstream> = Vec::new();
            let mut next_port = 0usize;
            for (j, grouping, _) in &downstreams[i] {
                ds.push(Downstream {
                    base_port: next_port,
                    fanout: parallelism[*j],
                    grouping: grouping.clone(),
                });
                next_port += parallelism[*j];
            }

            let mut ids = Vec::with_capacity(node.parallelism);
            let gated = self
                .transactional
                .as_ref()
                .map(|cfg| cfg.max_pending > 0)
                .unwrap_or(false);
            match &mut node.kind {
                NodeKind::Spout { schedules } if gated => {
                    // Commit-gated spouts: hold the schedule internally and
                    // pace batches by the coordinator's grants.
                    let max_pending = self
                        .transactional
                        .as_ref()
                        .expect("gated implies tx")
                        .max_pending;
                    for (k, schedule) in schedules.iter().enumerate() {
                        let spout = GatedSpout::new(
                            format!("{}[{k}]", node.name),
                            producer_base[i] + k as i64,
                            ds.clone(),
                            GatedSpout::group_schedule(schedule),
                            max_pending,
                        );
                        let id = backend.add_instance(Box::new(spout));
                        backend.set_service_time(id, node.service_time);
                        // Kick emission at t=0.
                        injections.push((0, i, k, Message::Eos));
                        ids.push(id);
                        gated_spouts.push(id);
                    }
                }
                NodeKind::Spout { schedules } => {
                    for (k, schedule) in schedules.iter().enumerate() {
                        let adapter = BoltAdapter::new(
                            Box::new(IdentityBolt),
                            format!("{}[{k}]", node.name),
                            producer_base[i] + k as i64,
                            k,
                            1,
                            BatchHandling::Streaming,
                            ds.clone(),
                            None,
                        );
                        let id = backend.add_instance(Box::new(adapter));
                        backend.set_service_time(id, node.service_time);
                        for (at, msg) in schedule.iter().cloned() {
                            injections.push((at, i, k, msg));
                        }
                        ids.push(id);
                    }
                }
                NodeKind::Bolt {
                    factory,
                    transactional,
                } => {
                    let mode = if *transactional {
                        BatchHandling::Transactional
                    } else {
                        BatchHandling::Streaming
                    };
                    let coord_port = if *transactional {
                        Some(next_port)
                    } else {
                        None
                    };
                    if *transactional {
                        committers.push((i, next_port));
                    }
                    for k in 0..node.parallelism {
                        let adapter = BoltAdapter::new(
                            factory(k),
                            format!("{}[{k}]", node.name),
                            producer_base[i] + k as i64,
                            k,
                            expected[i],
                            mode,
                            ds.clone(),
                            coord_port,
                        );
                        let id = backend.add_instance(Box::new(adapter));
                        backend.set_service_time(id, node.service_time);
                        ids.push(id);
                    }
                }
                NodeKind::Sink { component } => {
                    let comp = component.take().expect("sink component consumed twice");
                    let id = backend.add_instance(comp);
                    backend.set_service_time(id, node.service_time);
                    ids.push(id);
                }
            }
            instances.push(ids);
        }

        // Wire subscriptions.
        for i in 0..n {
            let mut next_port = 0usize;
            let ds = downstreams[i].clone();
            for (j, _, channel) in ds {
                let ch = backend.add_channel(channel);
                let fanout = instances[j].len();
                for a in 0..instances[i].len() {
                    for b in 0..fanout {
                        backend.connect(
                            instances[i][a],
                            PortId(next_port + b),
                            instances[j][b],
                            PortId(PORT_UPSTREAM),
                            ch,
                        );
                    }
                }
                next_port += fanout;
            }
        }

        // Transactional coordinator wiring.
        if let Some(cfg) = &self.transactional {
            for (node, coord_port) in &committers {
                let coord = backend.add_instance(Box::new(CommitCoordinator::new(
                    instances[*node].len(),
                    cfg.first_batch,
                )));
                backend.set_service_time(coord, cfg.service_time);
                let to_coord = backend.add_channel(cfg.channel.clone());
                let grants = backend.add_channel(ChannelConfig::ordered(cfg.channel.base_latency));
                for &inst in &instances[*node] {
                    backend.connect(
                        inst,
                        PortId(*coord_port),
                        coord,
                        PortId(PORT_UPSTREAM),
                        to_coord,
                    );
                    backend.connect(coord, PortId(0), inst, PortId(PORT_GRANT), grants);
                }
                // Gated spouts also listen for grants to advance their
                // emission window.
                for &spout in &gated_spouts {
                    backend.connect(coord, PortId(0), spout, PortId(PORT_GRANT), grants);
                }
            }
        }

        // Inject spout schedules.
        for (at, node, k, msg) in injections {
            backend.inject(at, instances[node][k], PortId(PORT_UPSTREAM), msg);
        }

        (instances, self.name)
    }
}

/// A built topology ready to run.
pub struct StormRun {
    sim: Simulator,
    instances: Vec<Vec<InstanceId>>,
    /// Topology name.
    pub name: String,
}

impl StormRun {
    /// Run the simulation to quiescence (or until the given virtual time).
    pub fn run(&mut self, until: Option<Time>) -> RunStats {
        self.sim.run(until)
    }

    /// Simulator instance ids per node.
    #[must_use]
    pub fn instances(&self) -> &[Vec<InstanceId>] {
        &self.instances
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.sim.now()
    }
}

/// A topology instantiated onto the multi-worker parallel executor.
pub struct ParStormRun {
    exec: Option<ParExecutor>,
    instances: Vec<Vec<InstanceId>>,
    /// Topology name.
    pub name: String,
}

impl ParStormRun {
    /// Execute to quiescence on the worker threads. May only run once.
    ///
    /// # Panics
    /// Panics when called a second time, and re-raises component panics.
    pub fn run(&mut self) -> ParStats {
        self.exec
            .take()
            .expect("ParStormRun::run may only be called once")
            .run()
    }

    /// Executor instance ids per node.
    #[must_use]
    pub fn instances(&self) -> &[Vec<InstanceId>] {
        &self.instances
    }
}

/// A topology instantiated onto one of the in-process backends by
/// [`TopologyBuilder::build_on`], ready to run. The variant mirrors the
/// [`BackendSpec`] it was built from.
pub enum StormExecution {
    /// Built for the discrete-event simulator.
    Sim(StormRun),
    /// Built for the multi-worker parallel executor.
    Par(ParStormRun),
}

impl StormExecution {
    /// Execute to quiescence on whichever backend this was built for and
    /// return the backend-tagged statistics. For the parallel variant
    /// this may only be called once (see [`ParStormRun::run`]).
    ///
    /// # Panics
    /// Re-raises component panics; the parallel variant panics when run
    /// a second time.
    pub fn run(&mut self) -> BackendRunStats {
        match self {
            StormExecution::Sim(run) => BackendRunStats::Sim(run.run(None)),
            StormExecution::Par(run) => BackendRunStats::Par(run.run()),
        }
    }

    /// Backend instance ids per topology node.
    #[must_use]
    pub fn instances(&self) -> &[Vec<InstanceId>] {
        match self {
            StormExecution::Sim(run) => run.instances(),
            StormExecution::Par(run) => run.instances(),
        }
    }

    /// Topology name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            StormExecution::Sim(run) => &run.name,
            StormExecution::Par(run) => &run.name,
        }
    }
}

/// Re-exports used by the module doctest.
pub mod prelude_for_tests {
    pub use crate::bolt::IdentityBolt;
    pub use crate::grouping::Grouping;
    pub use crate::runtime::batch_seal;
    pub use crate::topology::TopologyBuilder;
    pub use blazes_dataflow::message::Message;
    pub use blazes_dataflow::sinks::CollectorSink;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bolt::{BoltContext, FnBolt};
    use crate::runtime::batch_seal;
    use blazes_dataflow::sinks::CollectorSink;
    use blazes_dataflow::value::{Tuple, Value};

    /// A bolt that counts words per batch and emits (word, batch, count) on
    /// finish_batch.
    struct CountBolt {
        counts: std::collections::BTreeMap<(String, i64), i64>,
    }

    impl CountBolt {
        fn new() -> Self {
            CountBolt {
                counts: std::collections::BTreeMap::new(),
            }
        }
    }

    impl Bolt for CountBolt {
        fn execute(&mut self, tuple: Tuple, _ctx: &mut BoltContext) {
            let word = tuple
                .get(0)
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let batch = tuple.get(1).and_then(Value::as_int).unwrap_or(0);
            *self.counts.entry((word, batch)).or_insert(0) += 1;
        }

        fn finish_batch(&mut self, batch: i64, ctx: &mut BoltContext) {
            let keys: Vec<_> = self
                .counts
                .keys()
                .filter(|(_, b)| *b == batch)
                .cloned()
                .collect();
            for (word, b) in keys {
                let count = self.counts.remove(&(word.clone(), b)).unwrap();
                ctx.emit(Tuple::new([
                    Value::Str(word),
                    Value::Int(b),
                    Value::Int(count),
                ]));
            }
        }

        fn name(&self) -> &str {
            "count"
        }
    }

    fn word_tuple(word: &str, batch: i64) -> Message {
        Message::Data(Tuple::new([Value::str(word), Value::Int(batch)]))
    }

    /// Describe a tiny wordcount: 2 spout instances -> 2 counters (fields
    /// grouping on word) -> collector. Build with `.build()` (simulator)
    /// or `.build_parallel(n)` (threads).
    fn wordcount_topology(seed: u64, transactional: bool) -> (TopologyBuilder, CollectorSink) {
        let mut t = TopologyBuilder::new("wc", seed);
        let spout = t.add_spout("tweets", 2);
        for inst in 0..2usize {
            let mut sched = Vec::new();
            for b in 0..3i64 {
                for w in ["a", "b", "c"] {
                    sched.push((b as u64 * 100, word_tuple(w, b)));
                }
                sched.push((b as u64 * 100 + 50, batch_seal(b)));
            }
            t.spout_schedule(spout, inst, sched);
        }
        let count = t.add_bolt(
            "count",
            2,
            || Box::new(CountBolt::new()),
            vec![(spout, Grouping::Fields(vec![0]))],
        );
        if transactional {
            t.make_transactional(count, TransactionalConfig::default());
        }
        let sink = CollectorSink::new();
        t.add_collector_sink("store", sink.clone(), count);
        (t, sink)
    }

    fn wordcount_run(seed: u64, transactional: bool) -> (StormRun, CollectorSink) {
        let (t, sink) = wordcount_topology(seed, transactional);
        (t.build(), sink)
    }

    fn counts_from(sink: &CollectorSink) -> std::collections::BTreeMap<(String, i64), i64> {
        sink.messages()
            .iter()
            .filter_map(Message::as_data)
            .map(|t| {
                (
                    (
                        t.get(0).and_then(Value::as_str).unwrap().to_string(),
                        t.get(1).and_then(Value::as_int).unwrap(),
                    ),
                    t.get(2).and_then(Value::as_int).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn wordcount_produces_correct_counts() {
        let (mut run, sink) = wordcount_run(11, false);
        run.run(None);
        let counts = counts_from(&sink);
        // 2 spout instances × 1 occurrence per word per batch = count 2.
        assert_eq!(counts.len(), 9, "3 words × 3 batches");
        assert!(counts.values().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn counts_identical_across_seeds() {
        // Confluent outcome: the sealed topology produces the same count
        // sets regardless of delivery interleaving.
        let (mut r1, s1) = wordcount_run(1, false);
        let (mut r2, s2) = wordcount_run(2, false);
        r1.run(None);
        r2.run(None);
        assert_eq!(counts_from(&s1), counts_from(&s2));
    }

    #[test]
    fn transactional_produces_same_outputs() {
        let (mut plain, s1) = wordcount_run(5, false);
        let (mut tx, s2) = wordcount_run(5, true);
        plain.run(None);
        tx.run(None);
        assert_eq!(counts_from(&s1), counts_from(&s2));
    }

    #[test]
    fn transactional_is_slower() {
        let (mut plain, _s1) = wordcount_run(5, false);
        let (mut tx, _s2) = wordcount_run(5, true);
        let p = plain.run(None);
        let t = tx.run(None);
        assert!(
            t.end_time > p.end_time,
            "transactional {} must exceed sealed {}",
            t.end_time,
            p.end_time
        );
    }

    #[test]
    fn transactional_commits_in_batch_order() {
        let (mut run, sink) = wordcount_run(13, true);
        run.run(None);
        let batches: Vec<i64> = sink
            .messages()
            .iter()
            .filter_map(Message::as_data)
            .filter_map(|t| t.get(1).and_then(Value::as_int))
            .collect();
        let mut max_seen = i64::MIN;
        for b in batches {
            assert!(b >= max_seen, "commit order violated");
            max_seen = max_seen.max(b);
        }
    }

    #[test]
    fn fn_bolt_pipeline() {
        let mut t = TopologyBuilder::new("pipe", 0);
        let spout = t.add_spout("src", 1);
        t.spout_schedule(
            spout,
            0,
            vec![
                (0, Message::data([1i64, 0])),
                (1, Message::data([2i64, 0])),
                (2, batch_seal(0)),
            ],
        );
        let double = t.add_bolt(
            "double",
            1,
            || {
                Box::new(FnBolt::new("double", |t: Tuple, ctx: &mut BoltContext| {
                    let v = t.get(0).and_then(Value::as_int).unwrap();
                    ctx.emit(Tuple::new([Value::Int(v * 2)]));
                }))
            },
            vec![(spout, Grouping::Shuffle)],
        );
        let sink = CollectorSink::new();
        t.add_collector_sink("out", sink.clone(), double);
        t.build().run(None);
        let vals: std::collections::BTreeSet<i64> = sink
            .messages()
            .iter()
            .filter_map(Message::as_data)
            .filter_map(|t| t.get(0).and_then(Value::as_int))
            .collect();
        assert_eq!(vals, [2i64, 4].into_iter().collect());
    }

    #[test]
    fn parallel_backend_matches_simulator_counts() {
        // The sealed wordcount is confluent: whatever interleaving the OS
        // scheduler produces, the released per-batch counts must equal the
        // simulator's.
        let (mut sim_run, sim_sink) = wordcount_run(21, false);
        sim_run.run(None);
        let (t, par_sink) = wordcount_topology(21, false);
        let mut par_run = t.build_parallel(3);
        let stats = par_run.run();
        assert!(stats.messages_delivered > 0);
        assert_eq!(counts_from(&par_sink), counts_from(&sim_sink));
    }

    #[test]
    fn parallel_backend_seals_complete_batches() {
        // Every batch's seal must release exactly the words of that batch,
        // under the threaded executor as in the simulator.
        let (t, sink) = wordcount_topology(33, false);
        let mut run = t.build_parallel(4);
        run.run();
        let counts = counts_from(&sink);
        assert_eq!(
            counts.len(),
            9,
            "3 words × 3 batches all released: {counts:?}"
        );
        assert!(counts.values().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn parallel_backend_matches_under_every_scheduler() {
        // The scheduler (stealing vs static, bounded vs unbounded) must be
        // invisible in the final counts of a confluent topology.
        let (mut sim_run, sim_sink) = wordcount_run(44, false);
        sim_run.run(None);
        let tunings = [
            ParTuning {
                stealing: false,
                ..ParTuning::default()
            },
            ParTuning {
                channel_capacity: Some(4),
                batch_size: 2,
                ..ParTuning::default()
            },
            ParTuning {
                stealing: false,
                channel_capacity: Some(4),
                ..ParTuning::default()
            },
        ];
        for tuning in tunings {
            let (t, par_sink) = wordcount_topology(44, false);
            let mut run = t.build_on(&BackendSpec::Par { workers: 3, tuning });
            let _ = run.run();
            assert_eq!(
                counts_from(&par_sink),
                counts_from(&sim_sink),
                "diverged under {tuning:?}"
            );
        }
    }

    /// Derive the coordination spec for the test wordcount through the
    /// grey-box adapter — the front half of annotate→analyze→inject.
    fn wordcount_spec(sealed: bool) -> CoordinationSpec {
        use crate::adapter::{dataflow_graph, TopologyAnnotations};
        use blazes_core::annotation::ComponentAnnotation;
        let (t, _) = wordcount_topology(0, false);
        let mut ann = TopologyAnnotations::new();
        ann.spout_attrs("tweets", ["word", "batch"])
            .annotate_bolt("count", ComponentAnnotation::ow(["word", "batch"]));
        if sealed {
            ann.seal_spout("tweets", ["batch"]);
        }
        let g = dataflow_graph(&t.describe(), &ann).expect("well-formed");
        CoordinationSpec::derive(&g, false).expect("analyzable")
    }

    #[test]
    fn sealed_spec_builds_rewrite_free_and_matches_baseline() {
        let spec = wordcount_spec(true);
        assert_eq!(spec.len(), 1, "one seal directive: {spec:?}");
        let (mut baseline, base_sink) = wordcount_run(31, false);
        baseline.run(None);
        let (t, sink) = wordcount_topology(31, false);
        let (mut run, outcome) = t
            .build_coordinated(&spec, &TransactionalConfig::default())
            .expect("spec applies");
        assert!(outcome.is_rewrite_free(), "{outcome:?}");
        assert_eq!(outcome.seal_native.len(), 1);
        assert_eq!(outcome.rewrite.injected_operators, 0);
        run.run(None);
        assert_eq!(counts_from(&sink), counts_from(&base_sink));
    }

    #[test]
    fn order_spec_makes_the_bolt_transactional() {
        let spec = wordcount_spec(false);
        assert_eq!(spec.len(), 1, "one order directive: {spec:?}");
        let (mut plain, plain_sink) = wordcount_run(13, false);
        let p = plain.run(None);

        let (t, sink) = wordcount_topology(13, false);
        let (mut run, outcome) = t
            .build_coordinated(&spec, &TransactionalConfig::default())
            .expect("spec applies");
        assert_eq!(outcome.ordered, vec!["count".to_string()]);
        assert!(!outcome.is_rewrite_free());
        let stats = run.run(None);
        // Same answers, paid for with coordination latency.
        assert_eq!(counts_from(&sink), counts_from(&plain_sink));
        assert!(
            stats.end_time > p.end_time,
            "ordering must cost virtual time: {} vs {}",
            stats.end_time,
            p.end_time
        );
    }

    #[test]
    fn coordinated_parallel_build_matches_simulator() {
        let spec = wordcount_spec(false);
        let (t, sim_sink) = wordcount_topology(23, false);
        let (mut sim_run, _) = t
            .build_coordinated(&spec, &TransactionalConfig::default())
            .unwrap();
        sim_run.run(None);
        for workers in [1usize, 4] {
            let (t, par_sink) = wordcount_topology(23, false);
            let (mut par_run, outcome) = t
                .build_coordinated_parallel(
                    &spec,
                    &TransactionalConfig::default(),
                    workers,
                    ParTuning::default(),
                )
                .unwrap();
            assert_eq!(outcome.ordered, vec!["count".to_string()]);
            let _ = par_run.run();
            assert_eq!(
                counts_from(&par_sink),
                counts_from(&sim_sink),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn coordination_errors_are_typed() {
        use blazes_core::keys::KeySet;
        use blazes_core::placement::CoordDirective;

        let ghost = CoordinationSpec {
            directives: vec![CoordDirective::Order {
                component: "ghost".to_string(),
                inputs: vec![],
                dynamic: false,
            }],
        };
        let (mut t, _) = wordcount_topology(0, false);
        assert_eq!(
            t.apply_coordination(&ghost, &TransactionalConfig::default()),
            Err(CoordinationError::UnknownComponent("ghost".to_string()))
        );

        let bad_key = CoordinationSpec {
            directives: vec![CoordDirective::Seal {
                component: "count".to_string(),
                input: "words".to_string(),
                key: KeySet::single("campaign"),
            }],
        };
        let err = t
            .apply_coordination(&bad_key, &TransactionalConfig::default())
            .unwrap_err();
        assert!(matches!(err, CoordinationError::UnsupportedSealKey { .. }));
        assert!(err.to_string().contains("batch"));

        let not_bolt = CoordinationSpec {
            directives: vec![CoordDirective::Order {
                component: "tweets".to_string(),
                inputs: vec![],
                dynamic: false,
            }],
        };
        assert_eq!(
            t.apply_coordination(&not_bolt, &TransactionalConfig::default()),
            Err(CoordinationError::NotABolt("tweets".to_string()))
        );
    }

    #[test]
    fn describe_reports_structure() {
        let mut t = TopologyBuilder::new("wc", 0);
        let spout = t.add_spout("tweets", 3);
        let bolt = t.add_bolt(
            "count",
            2,
            || Box::new(IdentityBolt),
            vec![(spout, Grouping::Shuffle)],
        );
        t.add_collector_sink("store", CollectorSink::new(), bolt);
        let d = t.describe();
        assert_eq!(d.nodes.len(), 3);
        assert_eq!(d.nodes[0].kind, "spout");
        assert_eq!(d.nodes[1].sources, vec![0]);
        assert_eq!(d.nodes[2].kind, "sink");
    }
}
