//! Figure 13: ad reporting — log records processed over time, 10 ad
//! servers. Doubling the producers barely moves the uncoordinated and
//! sealed runs but slows the ordered run dramatically.
//!
//! ```text
//! cargo run -p blazes-bench --release --bin fig13
//! ```

use blazes_apps::adreport::StrategyKind;
use blazes_apps::workload::CampaignPlacement;
use blazes_bench::{adreport_line, render_line};

fn main() {
    let servers = 10;
    println!("# Figure 13: log records processed over time, {servers} ad servers");
    for (strategy, placement) in [
        (StrategyKind::Uncoordinated, CampaignPlacement::Spread),
        (StrategyKind::Ordered, CampaignPlacement::Spread),
        (StrategyKind::Sealed, CampaignPlacement::Independent),
        (StrategyKind::Sealed, CampaignPlacement::Spread),
    ] {
        let line = adreport_line(servers, strategy, placement, 1, 24);
        print!("{}", render_line(&line));
        println!();
    }
}
