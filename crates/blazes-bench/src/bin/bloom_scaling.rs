//! `bloom_scaling`: the Bloom evaluation-engine sweep — naive vs
//! semi-naive vs worker-sharded — over recursive, join-heavy and
//! aggregation workloads, with CI-gateable correctness and counter checks.
//!
//! ```text
//! cargo run -p blazes-bench --release --bin bloom_scaling -- \
//!     [--smoke] [--reps N] [--out FILE] [--check [FLOOR]] [--note TEXT]...
//! ```
//!
//! `--out` writes the results as JSON (default `BENCH_bloom_scaling.json`
//! when given without a value). `--check` exits nonzero when any
//! optimized run's output diverges from the naive oracle, or when the
//! engine's own counters show semi-naive re-deriving on the recursive
//! workload — both machine-independent gates. With an explicit `FLOOR`
//! it additionally requires the naive/semi-naive wall-clock ratio on
//! transitive closure at the largest scale to reach `FLOOR`x; wall time
//! here is algorithmic (not parallel) speedup, so the floor holds on any
//! machine, but CI smoke runs keep to the counter gates.

use blazes_bench::bloom_scaling::{run_bloom_scaling, BloomScalingConfig};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// `--out [FILE]`: present with a value uses it; present with the next
/// token being another flag (or nothing) falls back to the default path.
fn parse_out(args: &[String], default: &str) -> Option<String> {
    let i = args.iter().position(|a| a == "--out")?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => Some(default.to_string()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        BloomScalingConfig::smoke()
    } else {
        BloomScalingConfig::default()
    };
    if let Some(reps) = parse_flag(&args, "--reps") {
        cfg.reps = reps;
    }
    let out = parse_out(&args, "BENCH_bloom_scaling.json");
    let check = args.iter().any(|a| a == "--check");
    let floor: Option<f64> = parse_flag(&args, "--check");
    let notes: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--note")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();

    let mut report = run_bloom_scaling(&cfg);
    report.notes.extend(notes);
    print!("{}", report.render_table());
    println!(
        "# headline: semi-naive {:.2}x over naive on tc at scale {}",
        report.headline_speedup(),
        report.max_scale("tc").unwrap_or(0)
    );

    if let Some(path) = out {
        std::fs::write(&path, report.to_json()).expect("write bench JSON");
        println!("# wrote {path}");
    }

    if check {
        let mut failed = false;
        if !report.all_correct() {
            eprintln!("FAIL: an optimized engine diverged from the naive oracle");
            failed = true;
        }
        if report.counters_confirm_no_rederivation() {
            println!("# counter gate passed: semi-naive derivations <= naive on every tc point");
        } else {
            eprintln!("FAIL: semi-naive derivation counters exceed naive on transitive closure");
            failed = true;
        }
        if let Some(floor) = floor {
            let got = report.headline_speedup();
            if got < floor {
                eprintln!("FAIL: tc speedup {got:.2}x below floor {floor:.2}x");
                failed = true;
            } else {
                println!("# wall-clock gate passed: {got:.2}x >= floor {floor:.2}x");
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
