//! `par_scaling`: heavy-compute scaling sweep of the parallel executor
//! against the simulator, with a CI-gateable speedup floor.
//!
//! ```text
//! cargo run -p blazes-bench --release --bin par_scaling -- \
//!     [--records N] [--rounds N] [--reps N] [--out FILE] [--check FLOOR] \
//!     [--no-race] [--force] [--note TEXT]... [--trace FILE]
//! ```
//!
//! `--trace FILE` enables the observability layer for the whole run and
//! writes a Chrome-trace JSON (`chrome://tracing` / Perfetto) at exit.
//! Note the timed repetitions then run traced, so wall-clock numbers
//! carry the (small) tracing overhead; don't record floors from a traced
//! run.
//!
//! `--note` (repeatable) appends free-form provenance to the emitted
//! JSON's `notes` array — the place to record what a specific recorded
//! run measured (machine, before/after context).
//!
//! `--out` writes the results as JSON (default `BENCH_par_scaling.json`
//! when `--out` is given without a value via CI). `--check FLOOR` exits
//! nonzero when the 4-worker work-stealing speedup over the simulator on
//! the uniform workload falls below `effective_floor(FLOOR, cores)` — the
//! floor is scaled by core count, since parallel speedup is bounded by the
//! hardware (see `blazes_bench::scaling::effective_floor`). `--check` also
//! fails on any digest mismatch, making the bench double as a correctness
//! gate.
//!
//! Alongside the heavy-compute sweep the bin races **time-warp
//! speculation** against blocking seal coordination on the straggler
//! ad-report scenario (`--no-race` skips it); under `--check` a digest
//! divergence between the two modes fails the run.
//!
//! Every point is stamped with the measuring machine's core count, and the
//! bin **refuses to overwrite a multi-core `--out` file with single-core
//! numbers** (single-core sweeps carry no scaling signal; clobbering the
//! recorded multi-core run would silently weaken the CI floor). Pass
//! `--force` to overwrite anyway.

use blazes_bench::scaling::{effective_floor, run_scaling, run_speculation_race, ScalingConfig};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// `--out [FILE]`: present with a value uses it; present with the next
/// token being another flag (or nothing) falls back to the default path.
fn parse_out(args: &[String], default: &str) -> Option<String> {
    let i = args.iter().position(|a| a == "--out")?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => Some(default.to_string()),
    }
}

/// The `"cores"` recorded in an existing bench JSON, if the file exists
/// and carries one (the top-level stamp; the first match wins since the
/// per-point stamps repeat the same value on a single-machine sweep).
fn recorded_cores(path: &str) -> Option<usize> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines().find_map(|line| {
        line.trim()
            .strip_prefix("\"cores\":")?
            .trim()
            .trim_end_matches(',')
            .parse()
            .ok()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ScalingConfig::default();
    if let Some(records) = parse_flag(&args, "--records") {
        cfg.records = records;
    }
    if let Some(rounds) = parse_flag(&args, "--rounds") {
        cfg.hash_rounds = rounds;
    }
    if let Some(reps) = parse_flag(&args, "--reps") {
        cfg.reps = reps;
    }
    let out = parse_out(&args, "BENCH_par_scaling.json");
    let check: Option<f64> = parse_flag(&args, "--check");
    let trace: Option<String> = parse_flag(&args, "--trace");
    if trace.is_some() {
        blazes_obs::global().set_enabled(true);
    }
    let notes: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--note")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();

    let mut report = run_scaling(&cfg);
    report.notes.extend(notes);
    if !args.iter().any(|a| a == "--no-race") {
        let race_workers = report.cores.clamp(2, 4);
        report.speculation = Some(run_speculation_race(race_workers, cfg.reps));
    }
    print!("{}", report.render_table());
    println!(
        "# headline: {:.2}x vs sim at 4 workers (uniform); stealing/static on skewed: {:.2}x",
        report.headline_speedup(),
        report.stealing_over_static_skewed()
    );

    if let Some(path) = out {
        if report.cores == 1
            && recorded_cores(&path).is_some_and(|prev| prev > 1)
            && !args.iter().any(|a| a == "--force")
        {
            eprintln!(
                "REFUSED: {path} holds a multi-core sweep; not overwriting it with \
                 1-core numbers (no scaling signal). Pass --force to overwrite."
            );
        } else {
            std::fs::write(&path, report.to_json()).expect("write bench JSON");
            println!("# wrote {path}");
        }
    }

    // Export before the check gate: a failing gated run is exactly when
    // the trace is worth having.
    if let Some(path) = trace {
        match blazes_obs::global().export_chrome(&path) {
            Ok(()) => println!("# trace written to {path}"),
            Err(e) => eprintln!("trace export failed for {path}: {e}"),
        }
    }

    if let Some(floor) = check {
        let mut failed = false;
        if !report.all_correct() {
            eprintln!("FAIL: a parallel run diverged from the expected digest");
            failed = true;
        }
        if let Some(race) = &report.speculation {
            if race.digest_match {
                println!(
                    "# speculation check passed: time-warp == blocking \
                     ({:.2}x latency win, {} rollbacks)",
                    race.latency_win, race.rollbacks
                );
            } else {
                eprintln!("FAIL: time-warp digests diverged from blocking coordination");
                failed = true;
            }
        }
        let need = effective_floor(floor, report.cores);
        let got = report.headline_speedup();
        if got < need {
            eprintln!(
                "FAIL: speedup {got:.2}x below floor {need:.2}x \
                 (requested {floor:.2}x, scaled for {} core(s))",
                report.cores
            );
            failed = true;
        } else {
            println!(
                "# check passed: {got:.2}x >= floor {need:.2}x \
                 (requested {floor:.2}x, {} core(s))",
                report.cores
            );
        }
        // The skew gate needs >= 2 cores: with a single core there is no
        // wall-clock win to be had from balancing, only parity.
        if report.cores >= 2 {
            let skew = report.stealing_over_static_skewed();
            if skew < 1.0 {
                eprintln!(
                    "FAIL: work stealing lost to static sharding on the skewed \
                     workload ({skew:.2}x)"
                );
                failed = true;
            }
            // The contention gate likewise: producers time-sliced onto one
            // core never collide on the mailbox tail CAS, so push_retries
            // is legitimately 0 there and the microbench carries no signal.
            let retries = report
                .point("fanin", 4, "stealing")
                .map_or(0, |p| p.push_retries);
            if retries == 0 {
                eprintln!(
                    "FAIL: the 4-worker fan-in run recorded zero mailbox push \
                     retries — the contention microbench measured nothing"
                );
                failed = true;
            }
        } else {
            println!(
                "# contention + skew assertions skipped: 1 core \
                 (producers cannot collide, balancing cannot win wall clock)"
            );
        }
        if failed {
            std::process::exit(1);
        }
    }
}
