//! The `autocoord-differential` CI gate: the proof obligations of the
//! analysis-driven coordination subsystem, run as a binary so CI fails
//! loudly when either breaks.
//!
//! 1. **Anomaly repro.** The uncoordinated ad-report run must exhibit
//!    replica-divergence / cross-run nondeterminism under the fault
//!    seed (the paper's Section III-A anomaly), while the
//!    auto-coordinated run produces bit-identical per-replica digests
//!    across `{1,2,4,8}` workers × `{stealing, static}` — and matches
//!    the discrete-event simulator.
//! 2. **Minimality overhead.** The confluent (sealed) wordcount must
//!    come through the rewrite pass with zero injected operators, and
//!    its coordinated wall time must stay within 10% of the
//!    uncoordinated baseline (`--overhead <pct>` to override).
//!
//! ```text
//! cargo run -p blazes-bench --release --bin autocoord_differential
//! ```

use blazes_apps::adreport::{run_scenario_parallel, AdScenario, StrategyKind};
use blazes_apps::autocoord::{response_digests, run_ad_auto, run_wordcount_auto};
use blazes_apps::queries::ReportQuery;
use blazes_apps::wordcount::{run_wordcount_parallel, WordcountScenario};
use blazes_apps::workload::{CampaignPlacement, ClickWorkload, TweetWorkload};
use blazes_dataflow::backend::BackendSpec;
use blazes_dataflow::par::ParTuning;
use std::process::ExitCode;
use std::time::Instant;

fn configs() -> Vec<(usize, ParTuning)> {
    let mut out = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        for stealing in [true, false] {
            out.push((
                workers,
                ParTuning {
                    stealing,
                    ..ParTuning::default()
                },
            ));
        }
    }
    out
}

fn ad_scenario(seed: u64) -> AdScenario {
    AdScenario {
        workload: ClickWorkload {
            ad_servers: 3,
            entries_per_server: 60,
            batch_size: 20,
            sleep_between_batches: 50_000,
            entry_interval: 200,
            campaigns: 6,
            ads_per_campaign: 4,
            placement: CampaignPlacement::Spread,
            seed: 5,
        },
        query: ReportQuery::Campaign,
        replicas: 3,
        requests: 8,
        tick_every: 1,
        click_duplicates: 0.2,
        requests_via_analyst: true,
        seed,
        ..AdScenario::default()
    }
}

/// A tiny stable fingerprint of a digest vector, for the log.
fn fingerprint(digests: &[Vec<blazes_dataflow::message::Message>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in digests {
        for m in d {
            for b in format!("{m:?}").bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

fn anomaly_repro() -> Result<(), String> {
    // Uncoordinated: hunt for divergence across seeds.
    let mut diverged = false;
    'seeds: for seed in 0..5u64 {
        let mut digests = Vec::new();
        for (workers, tuning) in configs() {
            let res = run_scenario_parallel(
                &AdScenario {
                    strategy: StrategyKind::Uncoordinated,
                    ..ad_scenario(seed)
                },
                workers,
                tuning,
            );
            if !res.responses_consistent() {
                println!("  uncoordinated seed {seed}: replicas DISAGREE within one run");
                diverged = true;
                break 'seeds;
            }
            digests.push(response_digests(&res.responses));
        }
        if digests.windows(2).any(|w| w[0] != w[1]) {
            println!("  uncoordinated seed {seed}: digests DIVERGE across schedulers");
            diverged = true;
            break 'seeds;
        }
    }
    if !diverged {
        return Err("uncoordinated runs never diverged — anomaly repro lost".to_string());
    }

    // Auto-coordinated: simulator reference, then every configuration.
    let sc = ad_scenario(3);
    let (sim_res, report) = run_ad_auto(&sc, &BackendSpec::Sim);
    println!("  spec: {}", report.spec.render().trim_end());
    println!("  injection: {}", report.summary.render().trim_end());
    let reference = response_digests(&sim_res.responses);
    if reference.iter().all(Vec::is_empty) {
        return Err("coordinated simulator run produced no answers".to_string());
    }
    for (workers, tuning) in configs() {
        let (res, _) = run_ad_auto(&sc, &BackendSpec::Par { workers, tuning });
        let digest = response_digests(&res.responses);
        if digest != reference {
            return Err(format!(
                "coordinated digest diverged at {workers} workers {tuning:?}: \
                 {:#018x} vs reference {:#018x}",
                fingerprint(&digest),
                fingerprint(&reference)
            ));
        }
    }
    println!(
        "  coordinated: digest {:#018x} identical across {} configurations + simulator",
        fingerprint(&reference),
        configs().len()
    );
    Ok(())
}

fn overhead_gate(max_pct: f64) -> Result<(), String> {
    let sc = WordcountScenario {
        workers: 4,
        workload: TweetWorkload {
            vocabulary: 200,
            batches: 8,
            tweets_per_batch: 30,
            ..TweetWorkload::default()
        },
        seed: 41,
        ..WordcountScenario::default()
    };
    // Interleaved best-of-N so machine noise hits both sides equally.
    let reps = 7;
    let mut base_best = f64::INFINITY;
    let mut coord_best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let base = run_wordcount_parallel(&sc, 4, ParTuning::default());
        base_best = base_best.min(started.elapsed().as_secs_f64() * 1e3);
        let baseline_counts = Some(base.counts());

        let started = Instant::now();
        let (coord, outcome) = run_wordcount_auto(&sc, true, &BackendSpec::par(4));
        coord_best = coord_best.min(started.elapsed().as_secs_f64() * 1e3);
        if !outcome.is_rewrite_free() {
            return Err(format!(
                "confluent wordcount was NOT left rewrite-free: {outcome:?}"
            ));
        }
        if Some(coord.counts()) != baseline_counts {
            return Err("coordinated wordcount counts diverged from baseline".to_string());
        }
    }

    let pct = (coord_best / base_best - 1.0) * 100.0;
    println!(
        "  confluent wordcount: baseline {base_best:.2} ms, coordinated {coord_best:.2} ms \
         ({pct:+.1}% overhead, gate {max_pct:.0}%), zero injected operators"
    );
    if pct > max_pct {
        return Err(format!(
            "coordinated overhead {pct:.1}% exceeds the {max_pct:.0}% gate"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut max_pct = 10.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--overhead" {
            max_pct = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--overhead takes a percentage");
        }
    }

    println!("# autocoord differential gate");
    println!("## anomaly repro (uncoordinated diverges, coordinated deterministic)");
    if let Err(e) = anomaly_repro() {
        eprintln!("FAIL: {e}");
        return ExitCode::FAILURE;
    }
    println!("## minimality overhead gate (confluent wordcount)");
    if let Err(e) = overhead_gate(max_pct) {
        eprintln!("FAIL: {e}");
        return ExitCode::FAILURE;
    }
    println!("PASS");
    ExitCode::SUCCESS
}
