//! Figure 14: the two seal-based strategies vs the uncoordinated baseline,
//! 10 ad servers (ordering omitted, as in the paper). The non-independent
//! "Seal" line shows the step shape of unanimous-vote releases.
//!
//! ```text
//! cargo run -p blazes-bench --release --bin fig14
//! ```

use blazes_apps::adreport::StrategyKind;
use blazes_apps::workload::CampaignPlacement;
use blazes_bench::{adreport_line, render_line};

fn main() {
    let servers = 10;
    println!("# Figure 14: seal strategies, {servers} ad servers");
    for (strategy, placement) in [
        (StrategyKind::Uncoordinated, CampaignPlacement::Spread),
        (StrategyKind::Sealed, CampaignPlacement::Independent),
        (StrategyKind::Sealed, CampaignPlacement::Spread),
    ] {
        let line = adreport_line(servers, strategy, placement, 1, 24);
        print!("{}", render_line(&line));
        println!();
    }
}
