//! Figure 12: ad reporting — log records processed over time, 5 ad servers,
//! under {Uncoordinated, Ordered, Independent Seal, Seal}.
//!
//! ```text
//! cargo run -p blazes-bench --release --bin fig12
//! ```

use blazes_apps::adreport::StrategyKind;
use blazes_apps::workload::CampaignPlacement;
use blazes_bench::{adreport_line, render_line};

fn main() {
    let servers = 5;
    println!("# Figure 12: log records processed over time, {servers} ad servers");
    for (strategy, placement) in [
        (StrategyKind::Uncoordinated, CampaignPlacement::Spread),
        (StrategyKind::Ordered, CampaignPlacement::Spread),
        (StrategyKind::Sealed, CampaignPlacement::Independent),
        (StrategyKind::Sealed, CampaignPlacement::Spread),
    ] {
        let line = adreport_line(servers, strategy, placement, 1, 24);
        print!("{}", render_line(&line));
        println!();
    }
}
