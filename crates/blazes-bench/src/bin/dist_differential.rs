//! The `dist-differential` CI gate: the autocoord proof obligations run
//! over the real byte boundary of the multi-process backend, as a binary
//! so CI fails loudly when any of them breaks.
//!
//! 1. **Anomaly repro, distributed.** The uncoordinated ad-report must
//!    diverge under injected wire faults across process counts (or
//!    between replicas of one run).
//! 2. **Determinism, distributed.** The auto-coordinated run's digests
//!    must be bit-identical across `{1,2,4}` processes × `{stealing,
//!    static}` schedulers, and equal to the discrete-event simulator's.
//! 3. **Minimality, distributed.** The confluent wordcount must cross
//!    the wire with zero injected coordination operators and commit the
//!    simulator baseline's exact counts.
//!
//! The binary is its own worker: the parent re-executes `current_exe`,
//! and a spawned copy takes the [`worker_main`] early exit.
//!
//! ```text
//! cargo run -p blazes-bench --release --bin dist_differential \
//!     [--chaos] [--trace FILE]
//! ```
//!
//! `--trace FILE` switches to the traced smoke mode instead of the full
//! differential: one coordinated 2-process ad-report run with time-warp
//! speculation, tracing enabled end to end, exported as a single
//! Chrome-trace JSON whose lanes cover the coordinator and every worker
//! process (the workers ship their ring buffers back over the wire).
//!
//! `--chaos` runs the crash-tolerance gate instead: the coordinated
//! ad-report digests must stay bit-identical to the simulator across
//! `{1,2,4}` processes × `{0,1,2}` seeded SIGKILLs, with the wire fault
//! schedule still on. Combined with `--trace FILE` it adds one traced
//! 2-process single-crash run whose Chrome export shows the respawned
//! worker as its own pid lane plus the coordinator's respawn/replay
//! marks.

use blazes_apps::adreport::{AdScenario, StrategyKind};
use blazes_apps::autocoord::{response_digests, run_ad_auto, run_wordcount_auto};
use blazes_apps::dist::{dist_registry, encode_ad_params, AD_TOPOLOGY};
use blazes_apps::queries::ReportQuery;
use blazes_apps::wordcount::{run_wordcount, WordcountScenario};
use blazes_apps::workload::{CampaignPlacement, ClickWorkload, TweetWorkload};
use blazes_dataflow::backend::BackendSpec;
use blazes_dataflow::dist::{
    run_dist, worker_main, ChaosSpec, DistSpec, DistTuning, Kill, KillPoint,
};
use blazes_dataflow::message::Message;
use std::process::ExitCode;
use std::time::Duration;

fn ad_scenario(seed: u64) -> AdScenario {
    AdScenario {
        workload: ClickWorkload {
            ad_servers: 3,
            entries_per_server: 60,
            batch_size: 20,
            sleep_between_batches: 50_000,
            entry_interval: 200,
            campaigns: 6,
            ads_per_campaign: 4,
            placement: CampaignPlacement::Spread,
            seed: 5,
        },
        query: ReportQuery::Campaign,
        replicas: 3,
        requests: 8,
        tick_every: 1,
        click_duplicates: 0.2,
        requests_via_analyst: true,
        seed,
        ..AdScenario::default()
    }
}

fn dist_spec(processes: usize, stealing: bool, seed: u64) -> DistSpec {
    let exe = std::env::current_exe()
        .expect("current_exe for dist worker spawn")
        .to_string_lossy()
        .into_owned();
    let mut spec = DistSpec::new("", "", vec![exe]);
    spec.processes = processes;
    spec.workers_per_process = 2;
    spec.stealing = stealing;
    spec.seed = seed;
    spec.reorder_prob = 0.1;
    spec.partition = Some((40, 6));
    spec
}

/// A tiny stable fingerprint of a digest vector, for the log.
fn fingerprint(digests: &[Vec<Message>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in digests {
        for m in d {
            for b in format!("{m:?}").bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

fn anomaly_repro() -> Result<(), String> {
    let reg = dist_registry();
    let mut diverged = false;
    'seeds: for seed in 0..5u64 {
        let sc = AdScenario {
            strategy: StrategyKind::Uncoordinated,
            ..ad_scenario(seed)
        };
        let mut digests = Vec::new();
        for processes in [1usize, 2, 4] {
            let mut spec = dist_spec(processes, true, seed);
            spec.topology = AD_TOPOLOGY.to_string();
            spec.params = encode_ad_params(&sc, false, false);
            let run = run_dist(&spec, &reg)
                .map_err(|e| format!("uncoordinated dist run failed: {e:?}"))?;
            let sinks: Vec<_> = run.sinks.into_iter().map(|(_, s)| s).collect();
            let d = response_digests(&sinks);
            if d.iter().any(|x| x != &d[0]) {
                println!(
                    "  uncoordinated seed {seed}: replicas DISAGREE within one \
                     {processes}-process run"
                );
                diverged = true;
                break 'seeds;
            }
            digests.push(d);
        }
        if digests.windows(2).any(|w| w[0] != w[1]) {
            println!("  uncoordinated seed {seed}: digests DIVERGE across process counts");
            diverged = true;
            break 'seeds;
        }
    }
    if !diverged {
        return Err("uncoordinated distributed runs never diverged — anomaly repro lost".into());
    }
    Ok(())
}

fn coordinated_identity() -> Result<(), String> {
    let sc = ad_scenario(3);
    let (sim_res, _) = run_ad_auto(&sc, &BackendSpec::Sim);
    let reference = response_digests(&sim_res.responses);
    if reference.iter().all(Vec::is_empty) {
        return Err("coordinated simulator run produced no answers".into());
    }
    let mut runs = 0usize;
    for processes in [1usize, 2, 4] {
        for stealing in [true, false] {
            let spec = dist_spec(processes, stealing, sc.seed);
            let (res, report) = run_ad_auto(&sc, &BackendSpec::Dist(spec));
            if report.stats.injected_operators != sc.replicas {
                return Err(format!(
                    "expected one seal gate per replica, injected {}",
                    report.stats.injected_operators
                ));
            }
            let digest = response_digests(&res.responses);
            if digest != reference {
                return Err(format!(
                    "coordinated digest diverged at {processes} processes \
                     stealing={stealing}: {:#018x} vs reference {:#018x}",
                    fingerprint(&digest),
                    fingerprint(&reference)
                ));
            }
            runs += 1;
        }
    }
    println!(
        "  coordinated: digest {:#018x} identical across {runs} process/scheduler \
         configurations + simulator",
        fingerprint(&reference)
    );
    Ok(())
}

fn confluent_minimality() -> Result<(), String> {
    let sc = WordcountScenario {
        workers: 3,
        workload: TweetWorkload {
            vocabulary: 60,
            batches: 5,
            tweets_per_batch: 12,
            ..TweetWorkload::default()
        },
        seed: 29,
        ..WordcountScenario::default()
    };
    let baseline = run_wordcount(&sc);
    for processes in [2usize, 4] {
        let spec = dist_spec(processes, true, sc.seed);
        let (run, outcome) = run_wordcount_auto(&sc, true, &BackendSpec::Dist(spec));
        if !outcome.is_rewrite_free() {
            return Err(format!("confluent wordcount was rewritten: {outcome:?}"));
        }
        let routed = run.stats.as_dist().map_or(0, |s| s.frames_routed);
        if routed == 0 {
            return Err(format!(
                "{processes}-process wordcount never crossed the wire"
            ));
        }
        if run.counts() != baseline.counts() {
            return Err(format!(
                "{processes}-process wordcount drifted from the simulator baseline"
            ));
        }
        println!(
            "  confluent wordcount: {processes} processes, {routed} frames over the \
             wire, zero injected operators, counts exact"
        );
    }
    Ok(())
}

/// The `--chaos` gate: coordinated ad-report digests must survive seeded
/// SIGKILL schedules bit-identically. Crashed legs keep the full wire
/// fault schedule (loss, duplicates, reorder, partition windows) on top
/// of the kills, and multi-process crashed legs must actually observe a
/// respawn — a schedule that never fires proves nothing.
fn chaos_matrix(trace: Option<&str>) -> Result<(), String> {
    let sc = ad_scenario(3);
    let (sim_res, _) = run_ad_auto(&sc, &BackendSpec::Sim);
    let reference = response_digests(&sim_res.responses);
    if reference.iter().all(Vec::is_empty) {
        return Err("chaos reference run produced no answers".into());
    }
    // Heartbeat fast enough that heartbeat-triggered kills land inside
    // phase 1 even on the shortest legs.
    let tuning = DistTuning::default().with_heartbeat_every(Duration::from_millis(5));
    for processes in [1usize, 2, 4] {
        for crashes in [0u32, 1, 2] {
            let mut spec = dist_spec(processes, true, sc.seed);
            spec.tuning = tuning.clone();
            spec.chaos = ChaosSpec::seeded(
                sc.seed ^ (u64::from(crashes) << 32),
                crashes,
                processes as u32,
                8,
            );
            let (res, _) = run_ad_auto(&sc, &BackendSpec::Dist(spec));
            let stats = res.stats.as_dist().ok_or("dist stats missing")?;
            if response_digests(&res.responses) != reference {
                return Err(format!(
                    "chaos digest diverged at {processes} processes × {crashes} crashes \
                     (reference {:#018x})",
                    fingerprint(&reference)
                ));
            }
            if crashes > 0 && processes > 1 && stats.respawns == 0 {
                return Err(format!(
                    "{crashes} scheduled kill(s) at {processes} processes never fired"
                ));
            }
            println!(
                "  chaos: {processes} procs × {crashes} crashes → {} respawns, \
                 {} replayed, {} deduped, digest exact",
                stats.respawns, stats.replayed_frames, stats.deduped_frames
            );
        }
    }
    if let Some(path) = trace {
        let obs = blazes_obs::global();
        obs.set_enabled(true);
        let mut spec = dist_spec(2, true, sc.seed);
        spec.tuning = tuning;
        spec.chaos = ChaosSpec {
            kills: vec![Kill {
                worker: 1,
                point: KillPoint::RoutedFrames(3),
            }],
        };
        let (res, _) = run_ad_auto(&sc, &BackendSpec::Dist(spec));
        if response_digests(&res.responses) != reference {
            return Err("traced chaos run diverged from the reference".into());
        }
        let respawns = res.stats.as_dist().map_or(0, |s| s.respawns);
        if respawns == 0 {
            return Err("traced chaos run never fired its kill".into());
        }
        let remote = obs.remote_lane_count();
        if remote == 0 {
            return Err("no worker process shipped trace lanes back".into());
        }
        obs.export_chrome(path)
            .map_err(|e| format!("chaos trace export failed for {path}: {e}"))?;
        println!("  traced chaos run: {respawns} respawn(s), {remote} remote lanes, wrote {path}");
    }
    Ok(())
}

/// The `--trace` smoke: one coordinated 2-process ad-report run with
/// speculation on and tracing enabled end to end, merged into a single
/// Chrome-trace file. Fails when no worker process shipped lanes back —
/// the whole point is that one file shows every process.
fn traced_smoke(path: &str) -> Result<(), String> {
    let obs = blazes_obs::global();
    obs.set_enabled(true);
    let sc = ad_scenario(3);
    let mut spec = dist_spec(2, true, sc.seed);
    spec.speculation = true;
    let (res, _) = run_ad_auto(&sc, &BackendSpec::Dist(spec));
    if response_digests(&res.responses).iter().all(Vec::is_empty) {
        return Err("traced run produced no answers".into());
    }
    let remote = obs.remote_lane_count();
    if remote == 0 {
        return Err("no worker process shipped trace lanes back".into());
    }
    obs.export_chrome(path)
        .map_err(|e| format!("trace export failed for {path}: {e}"))?;
    println!("  traced 2-process run: {remote} remote lanes merged, wrote {path}");
    Ok(())
}

fn main() -> ExitCode {
    // Spawned copies of this binary serve as dist workers.
    if worker_main(&dist_registry()) {
        return ExitCode::SUCCESS;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--chaos") {
        let trace = args.iter().position(|a| a == "--trace").map(|i| {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| "chaos_trace.json".to_string())
        });
        println!("dist-differential: chaos matrix (processes × seeded crashes)");
        return match chaos_matrix(trace.as_deref()) {
            Ok(()) => {
                println!("dist-differential: CHAOS PASS");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "dist_trace.json".to_string());
        println!("dist-differential: traced 2-process smoke");
        return match traced_smoke(&path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("FAIL: {e}");
                ExitCode::FAILURE
            }
        };
    }
    println!("dist-differential: over-the-wire anomaly repro");
    if let Err(e) = anomaly_repro() {
        eprintln!("FAIL: {e}");
        return ExitCode::FAILURE;
    }
    println!("dist-differential: coordinated digest identity");
    if let Err(e) = coordinated_identity() {
        eprintln!("FAIL: {e}");
        return ExitCode::FAILURE;
    }
    println!("dist-differential: confluent wordcount minimality");
    if let Err(e) = confluent_minimality() {
        eprintln!("FAIL: {e}");
        return ExitCode::FAILURE;
    }
    println!("dist-differential: PASS");
    ExitCode::SUCCESS
}
