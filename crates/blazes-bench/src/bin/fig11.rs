//! Figure 11: Storm wordcount throughput vs cluster size, transactional vs
//! sealed topologies.
//!
//! ```text
//! cargo run -p blazes-bench --release --bin fig11 \
//!     [runs] [--backend sim|par] [--virtual-time] [--trace FILE]
//! ```
//!
//! `--trace FILE` enables the observability layer for the whole sweep and
//! writes a Chrome-trace JSON (`chrome://tracing` / Perfetto) at exit.
//!
//! With `--backend par` the same topologies execute on the multi-worker
//! parallel backend (threads capped at 8) and throughput is tweets per
//! *wall-clock* second; modeled service times do not apply, so magnitudes
//! are not comparable to the simulator's virtual-time numbers — the
//! sealed-over-transactional *ratio* is the comparable shape. Add
//! `--virtual-time` to burn each modeled service unit as 1 µs of wall
//! clock (`FIG11_VIRTUAL_NS`): the par curves then land on the
//! simulator's axis and the magnitudes are directly comparable.

use blazes_bench::{
    fig11_point, fig11_point_par, fig11_point_par_tuned, Fig11Point, FIG11_VIRTUAL_NS,
};
use blazes_dataflow::par::ParTuning;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The positional runs argument is any token that is neither a flag nor
    // a flag's value, whatever the ordering.
    let backend_pos = args.iter().position(|a| a == "--backend");
    let trace_pos = args.iter().position(|a| a == "--trace");
    let runs: u64 = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            !a.starts_with("--")
                && backend_pos != Some(i.wrapping_sub(1))
                && trace_pos != Some(i.wrapping_sub(1))
        })
        .find_map(|(_, s)| s.parse().ok())
        .unwrap_or(3);
    let trace = trace_pos.and_then(|i| args.get(i + 1)).cloned();
    if trace.is_some() {
        blazes_obs::global().set_enabled(true);
    }
    let backend = backend_pos
        .and_then(|i| args.get(i + 1))
        .map_or("sim", String::as_str);
    let virtual_time = args.iter().any(|a| a == "--virtual-time");
    if virtual_time && backend != "par" {
        eprintln!("--virtual-time only applies to --backend par");
        std::process::exit(2);
    }
    let point: Box<dyn Fn(usize, bool, u64) -> Fig11Point> = match backend {
        "sim" => Box::new(fig11_point),
        "par" if virtual_time => Box::new(|w, tx, r| {
            let tuning = ParTuning::default().with_virtual_service_ns(Some(FIG11_VIRTUAL_NS));
            fig11_point_par_tuned(w, tx, r, &tuning)
        }),
        "par" => Box::new(fig11_point_par),
        other => {
            eprintln!("unknown backend {other:?}: expected sim or par");
            std::process::exit(2);
        }
    };

    let unit = if backend == "par" && virtual_time {
        "tweets/virtualized-wall-second"
    } else if backend == "par" {
        "tweets/wall-second"
    } else {
        "tweets/virtual-second"
    };
    println!("# Figure 11: wordcount throughput ({unit}, backend={backend})");
    println!("# cluster  transactional  sealed  ratio  (±stddev over {runs} runs)");
    for workers in [5, 10, 15, 20] {
        let tx = point(workers, true, runs);
        let sealed = point(workers, false, runs);
        let ratio = sealed.mean_throughput / tx.mean_throughput;
        println!(
            "{workers:7}  {tx:13.0}  {sealed:6.0}  {ratio:5.2}  (tx ±{txs:.0}, sealed ±{ss:.0})",
            tx = tx.mean_throughput,
            sealed = sealed.mean_throughput,
            txs = tx.stddev_throughput,
            ss = sealed.stddev_throughput,
        );
    }
    println!("# paper shape: sealed/transactional ratio ~1.8x at 5 nodes growing to ~3x at 20");
    if let Some(path) = trace {
        match blazes_obs::global().export_chrome(&path) {
            Ok(()) => println!("# trace written to {path}"),
            Err(e) => {
                eprintln!("trace export failed for {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
