//! Figure 11: Storm wordcount throughput vs cluster size, transactional vs
//! sealed topologies.
//!
//! ```text
//! cargo run -p blazes-bench --release --bin fig11 [runs]
//! ```

use blazes_bench::fig11_point;

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!("# Figure 11: wordcount throughput (tweets/virtual-second)");
    println!("# cluster  transactional  sealed  ratio  (±stddev over {runs} runs)");
    for workers in [5, 10, 15, 20] {
        let tx = fig11_point(workers, true, runs);
        let sealed = fig11_point(workers, false, runs);
        let ratio = sealed.mean_throughput / tx.mean_throughput;
        println!(
            "{workers:7}  {tx:13.0}  {sealed:6.0}  {ratio:5.2}  (tx ±{txs:.0}, sealed ±{ss:.0})",
            tx = tx.mean_throughput,
            sealed = sealed.mean_throughput,
            txs = tx.stddev_throughput,
            ss = sealed.stddev_throughput,
        );
    }
    println!("# paper shape: sealed/transactional ratio ~1.8x at 5 nodes growing to ~3x at 20");
}
