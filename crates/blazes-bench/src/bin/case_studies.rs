//! Section VI case studies: prints the Blazes derivations and coordination
//! plans for the Storm wordcount and the ad-reporting network (all four
//! queries, sealed and unsealed).
//!
//! ```text
//! cargo run -p blazes-bench --release --bin case_studies
//! ```

use blazes_apps::casestudy::{ad_network_graph, wordcount_graph};
use blazes_apps::queries::ReportQuery;
use blazes_core::analysis::Analyzer;
use blazes_core::derivation;
use blazes_core::strategy::plan_for;

fn show(name: &str, graph: &blazes_core::graph::DataflowGraph) {
    println!("==================== {name} ====================");
    match Analyzer::new(graph).run() {
        Ok(outcome) => {
            print!("{}", derivation::render(graph, &outcome));
            match plan_for(graph, true) {
                Ok(plan) => {
                    println!("-- synthesized coordination --");
                    print!("{}", plan.render(graph));
                }
                Err(e) => println!("plan error: {e}"),
            }
        }
        Err(e) => println!("analysis error: {e}"),
    }
    println!();
}

fn main() {
    for sealed in [false, true] {
        let (g, _) = wordcount_graph(sealed);
        show(
            &format!(
                "Storm wordcount ({})",
                if sealed { "Seal_batch" } else { "unsealed" }
            ),
            &g,
        );
    }
    for query in ReportQuery::ALL {
        let (g, _) = ad_network_graph(query, None);
        show(&format!("Ad network, {} (unsealed)", query.name()), &g);
    }
    for (query, key) in [
        (ReportQuery::Campaign, &["campaign"][..]),
        (ReportQuery::Window, &["window"][..]),
    ] {
        let (g, _) = ad_network_graph(query, Some(key));
        show(
            &format!("Ad network, {} (Seal_{})", query.name(), key.join(",")),
            &g,
        );
    }
}
