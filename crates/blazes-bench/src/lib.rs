//! # blazes-bench
//!
//! The benchmark harness regenerating the Blazes evaluation (paper Section
//! VIII). Each figure has a binary that prints the same rows/series the
//! paper plots:
//!
//! | target | reproduces |
//! |---|---|
//! | `cargo run -p blazes-bench --release --bin fig11` | Fig. 11: Storm wordcount throughput vs cluster size, transactional vs sealed |
//! | `cargo run -p blazes-bench --release --bin fig12` | Fig. 12: ad reporting, records processed over time, 5 ad servers |
//! | `cargo run -p blazes-bench --release --bin fig13` | Fig. 13: same, 10 ad servers |
//! | `cargo run -p blazes-bench --release --bin fig14` | Fig. 14: seal vs independent seal, 10 ad servers |
//! | `cargo run -p blazes-bench --release --bin case-studies` | Section VI: the label derivations for both case studies |
//!
//! Criterion micro-benchmarks cover the analysis itself
//! (`analysis_overhead`) and per-figure workloads.

use blazes_apps::adreport::{run_scenario, AdRunResult, AdScenario, StrategyKind};
use blazes_apps::queries::ReportQuery;
use blazes_apps::wordcount::{
    run_wordcount, run_wordcount_parallel, WordcountResult, WordcountScenario,
};
use blazes_apps::workload::{CampaignPlacement, ClickWorkload, TweetWorkload};
use blazes_dataflow::metrics::TimeSeries;
use blazes_dataflow::par::ParTuning;
use blazes_dataflow::sim::Time;

pub mod bloom_scaling;
pub mod scaling;

/// Calibrated wordcount scenario for one Fig. 11 data point.
///
/// The shape knobs mirror the paper's setup: a fixed workload processed by
/// a cluster of `workers` nodes; the transactional variant pays a
/// coordination round-trip per batch, serialized in batch order.
#[must_use]
pub fn fig11_scenario(workers: usize, transactional: bool, seed: u64) -> WordcountScenario {
    WordcountScenario {
        workers,
        spouts: 4,
        committers: 2,
        workload: TweetWorkload {
            vocabulary: 10_000,
            zipf_exponent: 0.5,
            words_per_tweet: 5,
            tweets_per_batch: 50,
            batches: 40,
            tweet_interval: 20,
            seed: 1000 + seed,
        },
        transactional,
        count_service: 120,
        splitter_service: 40,
        coordinator_service: 3_000,
        coordinator_latency: 4_000,
        max_pending: 1,
        seed,
    }
}

/// One Fig. 11 data point, averaged over `runs` seeds (the paper averages
/// over three runs).
#[must_use]
pub fn fig11_point(workers: usize, transactional: bool, runs: u64) -> Fig11Point {
    let mut throughputs = Vec::with_capacity(runs as usize);
    for seed in 0..runs {
        let res = run_wordcount(&fig11_scenario(workers, transactional, seed));
        throughputs.push(res.throughput());
    }
    Fig11Point {
        workers,
        transactional,
        mean_throughput: mean(&throughputs),
        stddev_throughput: stddev(&throughputs),
    }
}

/// One Fig. 11 data point on the multi-worker parallel executor: the same
/// scenario, executed on OS threads (capped at 8), with throughput in
/// tweets per *wall-clock* second — comparable in shape, not in magnitude,
/// to the simulator's virtual-time points.
#[must_use]
pub fn fig11_point_par(workers: usize, transactional: bool, runs: u64) -> Fig11Point {
    fig11_point_par_tuned(workers, transactional, runs, &ParTuning::default())
}

/// Nanoseconds of real spin per modeled service unit that make the
/// parallel backend's Fig. 11 magnitudes comparable to the simulator's:
/// the simulator's `Time` unit is one virtual microsecond, so realizing
/// each unit as 1000 ns of wall clock puts both backends on the same axis.
pub const FIG11_VIRTUAL_NS: u64 = 1_000;

/// [`fig11_point_par`] with explicit tuning. With
/// `ParTuning::with_virtual_service_ns(Some(FIG11_VIRTUAL_NS))` the
/// modeled service times are burned as wall-clock spin, so the par curves
/// are magnitude-comparable (not just shape-comparable) to the simulator.
#[must_use]
pub fn fig11_point_par_tuned(
    workers: usize,
    transactional: bool,
    runs: u64,
    tuning: &ParTuning,
) -> Fig11Point {
    let threads = workers.clamp(1, 8);
    let mut throughputs = Vec::with_capacity(runs as usize);
    for seed in 0..runs {
        let res = run_wordcount_parallel(
            &fig11_scenario(workers, transactional, seed),
            threads,
            *tuning,
        );
        throughputs.push(res.throughput());
    }
    Fig11Point {
        workers,
        transactional,
        mean_throughput: mean(&throughputs),
        stddev_throughput: stddev(&throughputs),
    }
}

/// A Fig. 11 sample.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// Cluster size.
    pub workers: usize,
    /// Transactional or sealed topology.
    pub transactional: bool,
    /// Mean throughput (tweets per virtual second).
    pub mean_throughput: f64,
    /// Standard deviation across runs (the paper's error bars).
    pub stddev_throughput: f64,
}

/// Calibrated ad-reporting scenario for Figures 12–14.
#[must_use]
pub fn adreport_scenario(
    ad_servers: usize,
    strategy: StrategyKind,
    placement: CampaignPlacement,
    seed: u64,
) -> AdScenario {
    AdScenario {
        workload: ClickWorkload {
            ad_servers,
            entries_per_server: 1_000,
            batch_size: 50,
            sleep_between_batches: 1_000_000,
            entry_interval: 200,
            campaigns: 100,
            ads_per_campaign: 10,
            placement,
            seed: 500 + seed,
        },
        strategy,
        replicas: 3,
        requests: 20,
        report_service: 150,
        sequencer_service: 12_000,
        query: ReportQuery::Campaign,
        tick_every: 50,
        click_duplicates: 0.0,
        straggler_service: 0,
        requests_via_analyst: false,
        seed,
    }
}

/// One figure-12/13/14 line: the per-replica-max cumulative series.
#[derive(Debug)]
pub struct AdLine {
    /// Figure legend label.
    pub label: &'static str,
    /// Downsampled `(seconds, records)` points of replica 0.
    pub points: Vec<(f64, u64)>,
    /// Completion time of the slowest replica, seconds.
    pub completion_secs: Option<f64>,
    /// Whether replicas answered queries consistently.
    pub consistent: bool,
}

/// Run one ad-reporting configuration and extract its figure line.
#[must_use]
pub fn adreport_line(
    ad_servers: usize,
    strategy: StrategyKind,
    placement: CampaignPlacement,
    seed: u64,
    buckets: usize,
) -> AdLine {
    let sc = adreport_scenario(ad_servers, strategy, placement, seed);
    let res = run_scenario(&sc);
    AdLine {
        label: strategy.label(placement),
        points: downsample_secs(&res.series[0], buckets),
        completion_secs: res.completion_time().map(secs),
        consistent: res.responses_consistent(),
    }
}

/// Render a figure line as a gnuplot-style two-column block.
#[must_use]
pub fn render_line(line: &AdLine) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "# {}", line.label);
    for (t, c) in &line.points {
        let _ = writeln!(s, "{t:10.2} {c:8}");
    }
    if let Some(done) = line.completion_secs {
        let _ = writeln!(
            s,
            "# completed at {done:.2}s, consistent={}",
            line.consistent
        );
    }
    s
}

/// The full result of an ad run, for tests that need more detail.
#[must_use]
pub fn adreport_run(
    ad_servers: usize,
    strategy: StrategyKind,
    placement: CampaignPlacement,
    seed: u64,
) -> AdRunResult {
    run_scenario(&adreport_scenario(ad_servers, strategy, placement, seed))
}

/// Convert virtual microseconds to seconds.
#[must_use]
pub fn secs(t: Time) -> f64 {
    t as f64 / 1_000_000.0
}

fn downsample_secs(series: &TimeSeries, buckets: usize) -> Vec<(f64, u64)> {
    series
        .downsample(buckets)
        .into_iter()
        .map(|(t, c)| (secs(t), c))
        .collect()
}

/// Arithmetic mean.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// A quick low-volume variant of [`fig11_point`] for tests.
#[must_use]
pub fn fig11_result_small(workers: usize, transactional: bool) -> WordcountResult {
    let mut sc = fig11_scenario(workers, transactional, 0);
    sc.workload.batches = 8;
    sc.workload.tweets_per_batch = 20;
    run_wordcount(&sc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn fig11_sealed_beats_transactional() {
        let sealed = fig11_result_small(5, false);
        let tx = fig11_result_small(5, true);
        assert!(
            sealed.throughput() > tx.throughput(),
            "sealed {} must beat transactional {}",
            sealed.throughput(),
            tx.throughput()
        );
    }

    #[test]
    fn adreport_line_has_points() {
        let line = adreport_line(
            2,
            StrategyKind::Uncoordinated,
            CampaignPlacement::Spread,
            1,
            20,
        );
        assert!(!line.points.is_empty());
        assert!(line.completion_secs.is_some());
        let text = render_line(&line);
        assert!(text.contains("Uncoordinated"));
    }

    #[test]
    fn secs_conversion() {
        assert!((secs(1_500_000) - 1.5).abs() < 1e-12);
    }
}
