//! The `par_scaling` benchmark harness: heavy-compute workloads swept over
//! worker counts and scheduler modes, with the seeded simulator as the
//! single-threaded baseline.
//!
//! Two workloads from [`blazes_apps::heavy`]:
//!
//! * **uniform** — evenly distributed keys; measures how the parallel
//!   executor scales with workers against the simulator.
//! * **skewed** — one Zipf-dominated key partition; measures what dynamic
//!   load balancing (work stealing) buys over static round-robin sharding.
//!
//! Results render as `BENCH_par_scaling.json` and gate CI: the speedup of
//! the 4-worker work-stealing run over the simulator must not drop below a
//! recorded floor. The floor is scaled by the machine's core count
//! ([`effective_floor`]): parallel speedup is physics-bound by available
//! cores, so a 1-core runner only checks for parity with the simulator
//! while a 4-core runner enforces the real multiple.

use blazes_apps::adreport::AdScenario;
use blazes_apps::autocoord::{response_digests, run_ad_auto};
use blazes_apps::heavy::{
    expected_digest, expected_fanin_digest, run_fanin_par, run_fanin_sim, run_heavy_par,
    run_heavy_sim, FaninConfig, HeavyConfig,
};
use blazes_apps::queries::ReportQuery;
use blazes_apps::workload::{CampaignPlacement, ClickWorkload};
use blazes_dataflow::backend::BackendSpec;
use blazes_dataflow::message::Message;
use blazes_dataflow::par::{ParStats, ParTuning};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// Configuration of one scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Total records per workload.
    pub records: usize,
    /// Hash rounds per record (per-record CPU weight).
    pub hash_rounds: u32,
    /// Worker counts to sweep.
    pub worker_counts: Vec<usize>,
    /// Timed repetitions per point (best-of).
    pub reps: u32,
    /// Records for the fan-in contention microbench (small payloads, one
    /// consumer — measures the mailbox itself rather than compute).
    pub fanin_records: usize,
    /// Producer instances of the fan-in microbench.
    pub fanin_producers: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            records: 60_000,
            hash_rounds: 384,
            worker_counts: vec![1, 2, 4, 8],
            reps: 2,
            fanin_records: 120_000,
            fanin_producers: 16,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// `"uniform"` or `"skewed"`.
    pub workload: &'static str,
    /// Cores the machine that measured this point reported. Stamped into
    /// every record so mixed-provenance files are self-describing and the
    /// overwrite guard can tell a laptop sweep from a CI-runner sweep.
    pub cores: usize,
    /// Worker threads.
    pub workers: usize,
    /// `"stealing"` or `"static"`.
    pub mode: &'static str,
    /// Best wall-clock milliseconds over the configured repetitions.
    pub millis: f64,
    /// Simulator wall time of the same workload over this point's time.
    pub speedup_vs_sim: f64,
    /// Max-over-mean worker event balance (1.0 = even).
    pub balance: f64,
    /// Total tasks obtained by stealing.
    pub steals: u64,
    /// Total idle parks (eventcount slow-path entries) across workers.
    pub parks: u64,
    /// Total wakeups of parked peers performed by this run's sends.
    pub wakeups: u64,
    /// Total mailbox tail-CAS retries — the producer-contention signal of
    /// the lock-free mailboxes (0 when producers never collide).
    pub push_retries: u64,
    /// Median per-tuple source-to-sink latency, microseconds, from one
    /// extra traced repetition (the timed reps run untraced).
    pub lat_p50_us: f64,
    /// 99th-percentile per-tuple latency, microseconds.
    pub lat_p99_us: f64,
    /// 99.9th-percentile per-tuple latency, microseconds.
    pub lat_p999_us: f64,
    /// Samples behind the latency percentiles (sink arrivals observed by
    /// the traced repetition; 0 means the probe saw no sinks).
    pub lat_samples: u64,
    /// Did the run produce exactly the expected digest?
    pub correct: bool,
}

/// Tuple-latency summary read out of the `latency.tuple_ns` histogram
/// after one traced repetition.
struct LatencyProbe {
    samples: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// Serializes traced repetitions: the obs hub is process-wide, so
/// concurrent sweeps (the test suite) must not interleave each other's
/// enable/clear/snapshot windows.
static OBS_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run one extra repetition with tracing enabled and read the per-tuple
/// source-to-sink latency histogram the sinks populate. The metrics
/// registry is cleared first so each point reports its own distribution;
/// trace rings are left alone so a `--trace` export still sees the whole
/// bench run. The previous enablement state is restored afterwards, so
/// the timed repetitions stay untraced unless the caller opted in.
fn probe_latency(run: impl FnOnce() -> (BTreeSet<Message>, ParStats)) -> LatencyProbe {
    let _gate = OBS_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let obs = blazes_obs::global();
    let was_enabled = obs.enabled();
    obs.registry().clear();
    obs.set_enabled(true);
    let _ = run();
    let snap = obs.registry().histogram("latency.tuple_ns").snapshot();
    obs.set_enabled(was_enabled);
    LatencyProbe {
        samples: snap.count,
        p50_us: snap.p50 as f64 / 1e3,
        p99_us: snap.p99 as f64 / 1e3,
        p999_us: snap.p999 as f64 / 1e3,
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Cores the machine reported (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Records per workload.
    pub records: usize,
    /// Hash rounds per record.
    pub hash_rounds: u32,
    /// Simulator baseline for the uniform workload, milliseconds.
    pub sim_uniform_ms: f64,
    /// Simulator baseline for the skewed workload, milliseconds.
    pub sim_skewed_ms: f64,
    /// Simulator baseline for the fan-in contention workload, milliseconds.
    pub sim_fanin_ms: f64,
    /// All measured parallel points.
    pub points: Vec<ScalingPoint>,
    /// The time-warp race, when the caller ran it
    /// ([`run_speculation_race`]).
    pub speculation: Option<SpeculationRace>,
    /// Free-form provenance notes carried into the emitted JSON (e.g.
    /// before/after context for executor changes the numbers reflect).
    pub notes: Vec<String>,
}

/// Blocking seal coordination raced against time-warp speculation on the
/// ad-reporting scenario with a straggling ad server.
///
/// Both runs execute the *same* auto-coordinated topology under virtual
/// service times ([`ParTuning::with_virtual_service_ns`]): ad server 0
/// carries extra per-message service, so its seal punctuations lag and the
/// blocking `SealGate` stalls every covered partition on its vote. The
/// speculative run checkpoints consumers at the seal boundary and runs
/// ahead; late-arriving straggler records roll the affected consumers back
/// and replay. `latency_win` is the blocking wall time over the
/// speculative wall time (>1.0 = time-warp wins), and `digest_match`
/// certifies the optimism was free: every run, both modes, produced
/// identical response digests.
///
/// The win is physics-bound like the scaling floor: overlapping gated
/// work with the straggler's delay needs a spare core, so a 1-core
/// machine shows only the speculation overhead (win < 1) while the
/// digests still must match — only `digest_match` gates CI.
#[derive(Debug, Clone)]
pub struct SpeculationRace {
    /// Worker threads used for both runs.
    pub workers: usize,
    /// Wall-clock nanoseconds realized per modeled service unit.
    pub virtual_ns: u64,
    /// Best blocking-coordination wall time, milliseconds.
    pub blocking_ms: f64,
    /// Best time-warp wall time, milliseconds.
    pub speculative_ms: f64,
    /// `blocking_ms / speculative_ms` (>1.0 = speculation wins).
    pub latency_win: f64,
    /// Speculative checkpoints taken (best speculative rep).
    pub speculations: u64,
    /// Rollbacks forced by violations (best speculative rep).
    pub rollbacks: u64,
    /// Committed events replayed after rollbacks (best speculative rep).
    pub replayed_events: u64,
    /// `rollbacks / speculations` (0 when nothing speculated).
    pub rollback_rate: f64,
    /// Did every rep of both modes produce identical response digests?
    pub digest_match: bool,
}

impl ScalingReport {
    /// Look up a point.
    #[must_use]
    pub fn point(&self, workload: &str, workers: usize, mode: &str) -> Option<&ScalingPoint> {
        self.points
            .iter()
            .find(|p| p.workload == workload && p.workers == workers && p.mode == mode)
    }

    /// The headline metric: work-stealing speedup over the simulator on
    /// the uniform heavy-compute workload at 4 workers.
    #[must_use]
    pub fn headline_speedup(&self) -> f64 {
        self.point("uniform", 4, "stealing")
            .map_or(0.0, |p| p.speedup_vs_sim)
    }

    /// The mailbox-contention metric: fan-in wall time at 4 workers under
    /// work stealing (lower = the consumer mailbox absorbs concurrent
    /// producers better).
    #[must_use]
    pub fn fanin_contention_ms(&self) -> f64 {
        self.point("fanin", 4, "stealing").map_or(0.0, |p| p.millis)
    }

    /// Work-stealing wall time over static-sharding wall time on the
    /// skewed workload at 4 workers (>1.0 = stealing wins).
    #[must_use]
    pub fn stealing_over_static_skewed(&self) -> f64 {
        match (
            self.point("skewed", 4, "static"),
            self.point("skewed", 4, "stealing"),
        ) {
            (Some(st), Some(ws)) if ws.millis > 0.0 => st.millis / ws.millis,
            _ => 0.0,
        }
    }

    /// Did every measured point reproduce the expected digest?
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.points.iter().all(|p| p.correct)
    }

    /// Render as pretty-printed JSON (hand-rolled; the vendored serde shim
    /// has no serializer).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"par_scaling\",");
        let _ = writeln!(s, "  \"cores\": {},", self.cores);
        let _ = writeln!(s, "  \"records\": {},", self.records);
        let _ = writeln!(s, "  \"hash_rounds\": {},", self.hash_rounds);
        let _ = writeln!(s, "  \"sim_uniform_ms\": {:.3},", self.sim_uniform_ms);
        let _ = writeln!(s, "  \"sim_skewed_ms\": {:.3},", self.sim_skewed_ms);
        let _ = writeln!(s, "  \"sim_fanin_ms\": {:.3},", self.sim_fanin_ms);
        let _ = writeln!(
            s,
            "  \"fanin_contention_ms_4w\": {:.3},",
            self.fanin_contention_ms()
        );
        let _ = writeln!(
            s,
            "  \"headline_speedup_vs_sim_4w\": {:.3},",
            self.headline_speedup()
        );
        let _ = writeln!(
            s,
            "  \"stealing_over_static_skewed_4w\": {:.3},",
            self.stealing_over_static_skewed()
        );
        let _ = writeln!(s, "  \"all_correct\": {},", self.all_correct());
        match &self.speculation {
            Some(r) => {
                let _ = writeln!(s, "  \"speculation\": {{");
                let _ = writeln!(s, "    \"workers\": {},", r.workers);
                let _ = writeln!(s, "    \"virtual_ns\": {},", r.virtual_ns);
                let _ = writeln!(s, "    \"blocking_ms\": {:.3},", r.blocking_ms);
                let _ = writeln!(s, "    \"speculative_ms\": {:.3},", r.speculative_ms);
                let _ = writeln!(s, "    \"latency_win\": {:.3},", r.latency_win);
                let _ = writeln!(s, "    \"speculations\": {},", r.speculations);
                let _ = writeln!(s, "    \"rollbacks\": {},", r.rollbacks);
                let _ = writeln!(s, "    \"replayed_events\": {},", r.replayed_events);
                let _ = writeln!(s, "    \"rollback_rate\": {:.4},", r.rollback_rate);
                let _ = writeln!(s, "    \"digest_match\": {}", r.digest_match);
                let _ = writeln!(s, "  }},");
            }
            None => {
                let _ = writeln!(s, "  \"speculation\": null,");
            }
        }
        let _ = writeln!(s, "  \"notes\": [");
        for (i, note) in self.notes.iter().enumerate() {
            let comma = if i + 1 == self.notes.len() { "" } else { "," };
            let escaped = note.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(s, "    \"{escaped}\"{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 == self.points.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"workload\": \"{}\", \"cores\": {}, \"workers\": {}, \"mode\": \"{}\", \
                 \"millis\": {:.3}, \"speedup_vs_sim\": {:.3}, \"balance\": {:.3}, \
                 \"steals\": {}, \"parks\": {}, \"wakeups\": {}, \
                 \"push_retries\": {}, \"lat_p50_us\": {:.1}, \"lat_p99_us\": {:.1}, \
                 \"lat_p999_us\": {:.1}, \"lat_samples\": {}, \"correct\": {}}}{comma}",
                p.workload,
                p.cores,
                p.workers,
                p.mode,
                p.millis,
                p.speedup_vs_sim,
                p.balance,
                p.steals,
                p.parks,
                p.wakeups,
                p.push_retries,
                p.lat_p50_us,
                p.lat_p99_us,
                p.lat_p999_us,
                p.lat_samples,
                p.correct
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Render the human-readable table the bin prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "# par_scaling: heavy-compute workload, {} records x {} hash rounds, {} core(s)",
            self.records, self.hash_rounds, self.cores
        );
        let _ = writeln!(
            s,
            "# sim baseline: uniform {:.1} ms, skewed {:.1} ms, fanin {:.1} ms",
            self.sim_uniform_ms, self.sim_skewed_ms, self.sim_fanin_ms
        );
        let _ = writeln!(
            s,
            "# workload  workers  mode      ms        vs-sim  balance  steals   parks  wakeups  push-retries  p50us    p99us   p999us"
        );
        for p in &self.points {
            let _ = writeln!(
                s,
                "{:9} {:8} {:9} {:9.1} {:7.2}x {:8.2} {:7} {:7} {:8} {:13} {:8.1} {:8.1} {:8.1}{}",
                p.workload,
                p.workers,
                p.mode,
                p.millis,
                p.speedup_vs_sim,
                p.balance,
                p.steals,
                p.parks,
                p.wakeups,
                p.push_retries,
                p.lat_p50_us,
                p.lat_p99_us,
                p.lat_p999_us,
                if p.correct { "" } else { "  DIGEST MISMATCH" },
            );
        }
        if let Some(r) = &self.speculation {
            let _ = writeln!(
                s,
                "# time-warp race ({} workers, {} ns/unit): blocking {:.1} ms vs \
                 speculative {:.1} ms = {:.2}x win; {} speculations, {} rollbacks \
                 ({:.1}% rollback rate), {} replayed; digests {}",
                r.workers,
                r.virtual_ns,
                r.blocking_ms,
                r.speculative_ms,
                r.latency_win,
                r.speculations,
                r.rollbacks,
                r.rollback_rate * 100.0,
                r.replayed_events,
                if r.digest_match { "match" } else { "DIVERGED" },
            );
        }
        s
    }
}

/// Scale a requested speedup floor to what the machine can physically
/// deliver: a 1-core box can only be asked for rough parity with the
/// simulator, while 4+ cores must show a real multiple. The formula is
/// `min(requested, max(0.85, 0.45 * cores))`.
#[must_use]
pub fn effective_floor(requested: f64, cores: usize) -> f64 {
    requested.min((0.45 * cores as f64).max(0.85))
}

/// Time a simulator run: best-of-`reps` wall clock, digest checked on
/// every repetition.
fn timed_sim(
    expected: &BTreeSet<Message>,
    reps: u32,
    run: impl Fn() -> BTreeSet<Message>,
) -> (f64, bool) {
    let mut best = f64::INFINITY;
    let mut correct = true;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let digest = run();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        correct &= digest == *expected;
    }
    (best, correct)
}

/// Time one parallel point: best-of-`reps` wall clock, stats from the best
/// repetition, digest checked on every repetition.
#[allow(clippy::too_many_arguments)] // internal helper mirroring ScalingPoint's shape
fn timed_par(
    workload: &'static str,
    cores: usize,
    workers: usize,
    mode: &'static str,
    sim_ms: f64,
    expected: &BTreeSet<Message>,
    reps: u32,
    run: impl Fn() -> (BTreeSet<Message>, ParStats),
) -> ScalingPoint {
    let mut best = f64::INFINITY;
    let mut balance = 0.0;
    let mut steals = 0;
    let mut parks = 0;
    let mut wakeups = 0;
    let mut push_retries = 0;
    let mut correct = true;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let (digest, stats) = run();
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        if elapsed < best {
            best = elapsed;
            balance = stats.balance();
            steals = stats.total_steals();
            parks = stats.total_parks();
            wakeups = stats.total_wakeups();
            push_retries = stats.total_push_retries();
        }
        correct &= digest == *expected;
    }
    let lat = probe_latency(&run);
    ScalingPoint {
        workload,
        cores,
        workers,
        mode,
        millis: best,
        speedup_vs_sim: if best > 0.0 { sim_ms / best } else { 0.0 },
        balance,
        steals,
        parks,
        wakeups,
        push_retries,
        lat_p50_us: lat.p50_us,
        lat_p99_us: lat.p99_us,
        lat_p999_us: lat.p999_us,
        lat_samples: lat.samples,
        correct,
    }
}

/// Run the full sweep.
#[must_use]
pub fn run_scaling(cfg: &ScalingConfig) -> ScalingReport {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workloads: [(&'static str, HeavyConfig); 2] = [
        (
            "uniform",
            HeavyConfig::uniform(cfg.records, cfg.hash_rounds),
        ),
        ("skewed", HeavyConfig::skewed(cfg.records, cfg.hash_rounds)),
    ];

    let mut sim_ms = [0.0f64; 2];
    let mut points = Vec::new();
    for (wi, (name, heavy)) in workloads.iter().enumerate() {
        // One sequential reference fold per workload, shared by the sim
        // check and every parallel point.
        let expected = expected_digest(heavy);
        let (ms, sim_ok) = timed_sim(&expected, cfg.reps, || run_heavy_sim(heavy).0);
        assert!(sim_ok, "simulator digest mismatch on {name}");
        sim_ms[wi] = ms;
        for &workers in &cfg.worker_counts {
            for (mode, stealing) in [("stealing", true), ("static", false)] {
                let tuning = ParTuning {
                    stealing,
                    batch_size: 32,
                    ..ParTuning::default()
                };
                points.push(timed_par(
                    name,
                    cores,
                    workers,
                    mode,
                    ms,
                    &expected,
                    cfg.reps,
                    || run_heavy_par(heavy, workers, tuning),
                ));
            }
        }
    }

    // The fan-in contention microbench: many light producers into one
    // consumer, so wall time tracks the mailbox hot path, not compute.
    let fanin = FaninConfig {
        producers: cfg.fanin_producers,
        records: cfg.fanin_records,
        ..FaninConfig::default()
    };
    let fanin_expected = expected_fanin_digest(&fanin);
    let (sim_fanin_ms, fanin_sim_ok) =
        timed_sim(&fanin_expected, cfg.reps, || run_fanin_sim(&fanin).0);
    assert!(fanin_sim_ok, "simulator digest mismatch on fanin");
    for &workers in &cfg.worker_counts {
        for (mode, stealing) in [("stealing", true), ("static", false)] {
            let tuning = ParTuning {
                stealing,
                batch_size: 32,
                ..ParTuning::default()
            };
            points.push(timed_par(
                "fanin",
                cores,
                workers,
                mode,
                sim_fanin_ms,
                &fanin_expected,
                cfg.reps,
                || run_fanin_par(&fanin, workers, tuning),
            ));
        }
    }

    ScalingReport {
        cores,
        records: cfg.records,
        hash_rounds: cfg.hash_rounds,
        sim_uniform_ms: sim_ms[0],
        sim_skewed_ms: sim_ms[1],
        sim_fanin_ms,
        points,
        speculation: None,
        // Structural (run-independent) provenance; per-run measurement
        // context belongs to the caller (`par_scaling --note ...`).
        notes: vec![
            "in-flight accounting is sharded per worker: sends charge the worker's \
             private padded cell once per event before publication, batches settle \
             once per activation, and quiescence is detected by an epoch-validated \
             idle scan (no contended global counter on the message hot path)"
                .to_string(),
            "the message hot path is lock-free end to end: mailboxes are Vyukov-style \
             MPSC queues (tail-CAS push, batched single-consumer drains), run queues \
             are Chase-Lev deques plus a block-based injector, instance cells ride \
             the scheduled-flag exclusivity instead of a mutex, and idle parking is \
             an eventcount (Condvar reachable only from the empty-queue slow path); \
             the fanin workload measures exactly this consumer-mailbox contention"
                .to_string(),
        ],
    }
}

/// The straggler scenario both racers run: at-least-once click delivery
/// (the seeded fault RNG), analyst requests racing ingestion on the
/// execution substrate, and ad server 0 carrying 12.5x everyone's service
/// time so its seal punctuations arrive last.
fn race_scenario() -> AdScenario {
    AdScenario {
        workload: ClickWorkload {
            ad_servers: 3,
            entries_per_server: 120,
            batch_size: 20,
            sleep_between_batches: 50_000,
            entry_interval: 200,
            campaigns: 6,
            ads_per_campaign: 4,
            placement: CampaignPlacement::Spread,
            seed: 11,
        },
        query: ReportQuery::Campaign,
        replicas: 3,
        requests: 8,
        report_service: 200,
        tick_every: 1,
        click_duplicates: 0.15,
        straggler_service: 2_500,
        requests_via_analyst: true,
        seed: 17,
        ..AdScenario::default()
    }
}

/// Race blocking seal coordination against time-warp speculation on the
/// straggler ad-report scenario. Both modes run `reps` times (best-of wall
/// clock); response digests are compared across *every* repetition of
/// *both* modes, so `digest_match` is the full determinism claim, not a
/// sample.
#[must_use]
pub fn run_speculation_race(workers: usize, reps: u32) -> SpeculationRace {
    let sc = race_scenario();
    let virtual_ns = 300;
    let tuning = ParTuning::default().with_virtual_service_ns(Some(virtual_ns));

    let mut reference: Option<Vec<Vec<Message>>> = None;
    let mut digest_match = true;
    let mut check = |digests: Vec<Vec<Message>>, matched: &mut bool| match &reference {
        None => reference = Some(digests),
        Some(r) => *matched &= digests == *r,
    };

    let mut blocking_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let (res, _) = run_ad_auto(&sc, &BackendSpec::Par { workers, tuning });
        blocking_ms = blocking_ms.min(started.elapsed().as_secs_f64() * 1e3);
        check(response_digests(&res.responses), &mut digest_match);
    }

    let mut speculative_ms = f64::INFINITY;
    let mut speculations = 0;
    let mut rollbacks = 0;
    let mut replayed_events = 0;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let (res, _) = run_ad_auto(
            &sc,
            &BackendSpec::Par {
                workers,
                tuning: tuning.with_speculation(true),
            },
        );
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        if elapsed < speculative_ms {
            speculative_ms = elapsed;
            let stats = res.stats.as_par().expect("parallel run");
            speculations = stats.total_speculations();
            rollbacks = stats.total_rollbacks();
            replayed_events = stats.total_replayed_events();
        }
        check(response_digests(&res.responses), &mut digest_match);
    }

    SpeculationRace {
        workers,
        virtual_ns,
        blocking_ms,
        speculative_ms,
        latency_win: if speculative_ms > 0.0 {
            blocking_ms / speculative_ms
        } else {
            0.0
        },
        speculations,
        rollbacks,
        replayed_events,
        rollback_rate: if speculations > 0 {
            rollbacks as f64 / speculations as f64
        } else {
            0.0
        },
        digest_match,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_scales_with_cores() {
        assert!((effective_floor(2.0, 1) - 0.85).abs() < 1e-12);
        assert!((effective_floor(2.0, 2) - 0.9).abs() < 1e-12);
        assert!((effective_floor(2.0, 4) - 1.8).abs() < 1e-12);
        assert!(
            (effective_floor(2.0, 8) - 2.0).abs() < 1e-12,
            "capped at the request"
        );
        assert!((effective_floor(1.5, 16) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_sweep_produces_a_complete_report() {
        let report = run_scaling(&ScalingConfig {
            records: 2_000,
            hash_rounds: 16,
            worker_counts: vec![1, 4],
            reps: 1,
            fanin_records: 3_000,
            fanin_producers: 4,
        });
        assert_eq!(report.points.len(), 3 * 2 * 2); // workloads x workers x modes
        assert!(report.all_correct());
        assert!(report.headline_speedup() > 0.0);
        assert!(report.stealing_over_static_skewed() > 0.0);
        assert!(report.fanin_contention_ms() > 0.0);
        assert!(
            report.points.iter().all(|p| p.cores == report.cores),
            "every record carries the measuring machine's core count"
        );
        assert!(
            report.points.iter().all(|p| p.lat_samples > 0),
            "every point's traced repetition observed sink arrivals"
        );
        assert!(
            report
                .points
                .iter()
                .all(|p| p.lat_p50_us <= p.lat_p99_us && p.lat_p99_us <= p.lat_p999_us),
            "latency percentiles are monotone"
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"par_scaling\""));
        assert!(json.contains("\"workload\": \"skewed\""));
        assert!(json.contains("\"workload\": \"fanin\""));
        assert!(json.contains("\"fanin_contention_ms_4w\""));
        assert!(json.contains("\"lat_p50_us\""));
        assert!(json.contains("\"lat_p999_us\""));
        assert!(json.contains("\"speculation\": null"));
        assert!(json.contains(&format!(
            "\"workload\": \"uniform\", \"cores\": {},",
            report.cores
        )));
        let table = report.render_table();
        assert!(table.contains("uniform"));
    }

    #[test]
    fn speculation_race_is_deterministic_and_renders() {
        let race = run_speculation_race(2, 1);
        assert!(race.digest_match, "time-warp diverged from blocking");
        assert!(race.blocking_ms > 0.0 && race.speculative_ms > 0.0);
        let mut report = run_scaling(&ScalingConfig {
            records: 500,
            hash_rounds: 4,
            worker_counts: vec![1],
            reps: 1,
            fanin_records: 500,
            fanin_producers: 2,
        });
        report.speculation = Some(race);
        let json = report.to_json();
        assert!(json.contains("\"speculation\": {"));
        assert!(json.contains("\"digest_match\": true"));
        assert!(json.contains("\"rollback_rate\""));
        assert!(report.render_table().contains("time-warp race"));
    }
}
