//! The `par_scaling` benchmark harness: heavy-compute workloads swept over
//! worker counts and scheduler modes, with the seeded simulator as the
//! single-threaded baseline.
//!
//! Two workloads from [`blazes_apps::heavy`]:
//!
//! * **uniform** — evenly distributed keys; measures how the parallel
//!   executor scales with workers against the simulator.
//! * **skewed** — one Zipf-dominated key partition; measures what dynamic
//!   load balancing (work stealing) buys over static round-robin sharding.
//!
//! Results render as `BENCH_par_scaling.json` and gate CI: the speedup of
//! the 4-worker work-stealing run over the simulator must not drop below a
//! recorded floor. The floor is scaled by the machine's core count
//! ([`effective_floor`]): parallel speedup is physics-bound by available
//! cores, so a 1-core runner only checks for parity with the simulator
//! while a 4-core runner enforces the real multiple.

use blazes_apps::heavy::{
    expected_digest, expected_fanin_digest, run_fanin_par, run_fanin_sim, run_heavy_par,
    run_heavy_sim, FaninConfig, HeavyConfig,
};
use blazes_dataflow::message::Message;
use blazes_dataflow::par::{ParStats, ParTuning};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// Configuration of one scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Total records per workload.
    pub records: usize,
    /// Hash rounds per record (per-record CPU weight).
    pub hash_rounds: u32,
    /// Worker counts to sweep.
    pub worker_counts: Vec<usize>,
    /// Timed repetitions per point (best-of).
    pub reps: u32,
    /// Records for the fan-in contention microbench (small payloads, one
    /// consumer — measures the mailbox itself rather than compute).
    pub fanin_records: usize,
    /// Producer instances of the fan-in microbench.
    pub fanin_producers: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            records: 60_000,
            hash_rounds: 384,
            worker_counts: vec![1, 2, 4, 8],
            reps: 2,
            fanin_records: 120_000,
            fanin_producers: 16,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// `"uniform"` or `"skewed"`.
    pub workload: &'static str,
    /// Worker threads.
    pub workers: usize,
    /// `"stealing"` or `"static"`.
    pub mode: &'static str,
    /// Best wall-clock milliseconds over the configured repetitions.
    pub millis: f64,
    /// Simulator wall time of the same workload over this point's time.
    pub speedup_vs_sim: f64,
    /// Max-over-mean worker event balance (1.0 = even).
    pub balance: f64,
    /// Total tasks obtained by stealing.
    pub steals: u64,
    /// Total idle parks (eventcount slow-path entries) across workers.
    pub parks: u64,
    /// Total wakeups of parked peers performed by this run's sends.
    pub wakeups: u64,
    /// Total mailbox tail-CAS retries — the producer-contention signal of
    /// the lock-free mailboxes (0 when producers never collide).
    pub push_retries: u64,
    /// Did the run produce exactly the expected digest?
    pub correct: bool,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Cores the machine reported (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Records per workload.
    pub records: usize,
    /// Hash rounds per record.
    pub hash_rounds: u32,
    /// Simulator baseline for the uniform workload, milliseconds.
    pub sim_uniform_ms: f64,
    /// Simulator baseline for the skewed workload, milliseconds.
    pub sim_skewed_ms: f64,
    /// Simulator baseline for the fan-in contention workload, milliseconds.
    pub sim_fanin_ms: f64,
    /// All measured parallel points.
    pub points: Vec<ScalingPoint>,
    /// Free-form provenance notes carried into the emitted JSON (e.g.
    /// before/after context for executor changes the numbers reflect).
    pub notes: Vec<String>,
}

impl ScalingReport {
    /// Look up a point.
    #[must_use]
    pub fn point(&self, workload: &str, workers: usize, mode: &str) -> Option<&ScalingPoint> {
        self.points
            .iter()
            .find(|p| p.workload == workload && p.workers == workers && p.mode == mode)
    }

    /// The headline metric: work-stealing speedup over the simulator on
    /// the uniform heavy-compute workload at 4 workers.
    #[must_use]
    pub fn headline_speedup(&self) -> f64 {
        self.point("uniform", 4, "stealing")
            .map_or(0.0, |p| p.speedup_vs_sim)
    }

    /// The mailbox-contention metric: fan-in wall time at 4 workers under
    /// work stealing (lower = the consumer mailbox absorbs concurrent
    /// producers better).
    #[must_use]
    pub fn fanin_contention_ms(&self) -> f64 {
        self.point("fanin", 4, "stealing").map_or(0.0, |p| p.millis)
    }

    /// Work-stealing wall time over static-sharding wall time on the
    /// skewed workload at 4 workers (>1.0 = stealing wins).
    #[must_use]
    pub fn stealing_over_static_skewed(&self) -> f64 {
        match (
            self.point("skewed", 4, "static"),
            self.point("skewed", 4, "stealing"),
        ) {
            (Some(st), Some(ws)) if ws.millis > 0.0 => st.millis / ws.millis,
            _ => 0.0,
        }
    }

    /// Did every measured point reproduce the expected digest?
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.points.iter().all(|p| p.correct)
    }

    /// Render as pretty-printed JSON (hand-rolled; the vendored serde shim
    /// has no serializer).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"par_scaling\",");
        let _ = writeln!(s, "  \"cores\": {},", self.cores);
        let _ = writeln!(s, "  \"records\": {},", self.records);
        let _ = writeln!(s, "  \"hash_rounds\": {},", self.hash_rounds);
        let _ = writeln!(s, "  \"sim_uniform_ms\": {:.3},", self.sim_uniform_ms);
        let _ = writeln!(s, "  \"sim_skewed_ms\": {:.3},", self.sim_skewed_ms);
        let _ = writeln!(s, "  \"sim_fanin_ms\": {:.3},", self.sim_fanin_ms);
        let _ = writeln!(
            s,
            "  \"fanin_contention_ms_4w\": {:.3},",
            self.fanin_contention_ms()
        );
        let _ = writeln!(
            s,
            "  \"headline_speedup_vs_sim_4w\": {:.3},",
            self.headline_speedup()
        );
        let _ = writeln!(
            s,
            "  \"stealing_over_static_skewed_4w\": {:.3},",
            self.stealing_over_static_skewed()
        );
        let _ = writeln!(s, "  \"all_correct\": {},", self.all_correct());
        let _ = writeln!(s, "  \"notes\": [");
        for (i, note) in self.notes.iter().enumerate() {
            let comma = if i + 1 == self.notes.len() { "" } else { "," };
            let escaped = note.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(s, "    \"{escaped}\"{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 == self.points.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"workload\": \"{}\", \"workers\": {}, \"mode\": \"{}\", \
                 \"millis\": {:.3}, \"speedup_vs_sim\": {:.3}, \"balance\": {:.3}, \
                 \"steals\": {}, \"parks\": {}, \"wakeups\": {}, \
                 \"push_retries\": {}, \"correct\": {}}}{comma}",
                p.workload,
                p.workers,
                p.mode,
                p.millis,
                p.speedup_vs_sim,
                p.balance,
                p.steals,
                p.parks,
                p.wakeups,
                p.push_retries,
                p.correct
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Render the human-readable table the bin prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "# par_scaling: heavy-compute workload, {} records x {} hash rounds, {} core(s)",
            self.records, self.hash_rounds, self.cores
        );
        let _ = writeln!(
            s,
            "# sim baseline: uniform {:.1} ms, skewed {:.1} ms, fanin {:.1} ms",
            self.sim_uniform_ms, self.sim_skewed_ms, self.sim_fanin_ms
        );
        let _ = writeln!(
            s,
            "# workload  workers  mode      ms        vs-sim  balance  steals   parks  wakeups  push-retries"
        );
        for p in &self.points {
            let _ = writeln!(
                s,
                "{:9} {:8} {:9} {:9.1} {:7.2}x {:8.2} {:7} {:7} {:8} {:13}{}",
                p.workload,
                p.workers,
                p.mode,
                p.millis,
                p.speedup_vs_sim,
                p.balance,
                p.steals,
                p.parks,
                p.wakeups,
                p.push_retries,
                if p.correct { "" } else { "  DIGEST MISMATCH" },
            );
        }
        s
    }
}

/// Scale a requested speedup floor to what the machine can physically
/// deliver: a 1-core box can only be asked for rough parity with the
/// simulator, while 4+ cores must show a real multiple. The formula is
/// `min(requested, max(0.85, 0.45 * cores))`.
#[must_use]
pub fn effective_floor(requested: f64, cores: usize) -> f64 {
    requested.min((0.45 * cores as f64).max(0.85))
}

/// Time a simulator run: best-of-`reps` wall clock, digest checked on
/// every repetition.
fn timed_sim(
    expected: &BTreeSet<Message>,
    reps: u32,
    run: impl Fn() -> BTreeSet<Message>,
) -> (f64, bool) {
    let mut best = f64::INFINITY;
    let mut correct = true;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let digest = run();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        correct &= digest == *expected;
    }
    (best, correct)
}

/// Time one parallel point: best-of-`reps` wall clock, stats from the best
/// repetition, digest checked on every repetition.
fn timed_par(
    workload: &'static str,
    workers: usize,
    mode: &'static str,
    sim_ms: f64,
    expected: &BTreeSet<Message>,
    reps: u32,
    run: impl Fn() -> (BTreeSet<Message>, ParStats),
) -> ScalingPoint {
    let mut best = f64::INFINITY;
    let mut balance = 0.0;
    let mut steals = 0;
    let mut parks = 0;
    let mut wakeups = 0;
    let mut push_retries = 0;
    let mut correct = true;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let (digest, stats) = run();
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        if elapsed < best {
            best = elapsed;
            balance = stats.balance();
            steals = stats.total_steals();
            parks = stats.total_parks();
            wakeups = stats.total_wakeups();
            push_retries = stats.total_push_retries();
        }
        correct &= digest == *expected;
    }
    ScalingPoint {
        workload,
        workers,
        mode,
        millis: best,
        speedup_vs_sim: if best > 0.0 { sim_ms / best } else { 0.0 },
        balance,
        steals,
        parks,
        wakeups,
        push_retries,
        correct,
    }
}

/// Run the full sweep.
#[must_use]
pub fn run_scaling(cfg: &ScalingConfig) -> ScalingReport {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workloads: [(&'static str, HeavyConfig); 2] = [
        (
            "uniform",
            HeavyConfig::uniform(cfg.records, cfg.hash_rounds),
        ),
        ("skewed", HeavyConfig::skewed(cfg.records, cfg.hash_rounds)),
    ];

    let mut sim_ms = [0.0f64; 2];
    let mut points = Vec::new();
    for (wi, (name, heavy)) in workloads.iter().enumerate() {
        // One sequential reference fold per workload, shared by the sim
        // check and every parallel point.
        let expected = expected_digest(heavy);
        let (ms, sim_ok) = timed_sim(&expected, cfg.reps, || run_heavy_sim(heavy).0);
        assert!(sim_ok, "simulator digest mismatch on {name}");
        sim_ms[wi] = ms;
        for &workers in &cfg.worker_counts {
            for (mode, stealing) in [("stealing", true), ("static", false)] {
                let tuning = ParTuning {
                    stealing,
                    batch_size: 32,
                    ..ParTuning::default()
                };
                points.push(timed_par(
                    name,
                    workers,
                    mode,
                    ms,
                    &expected,
                    cfg.reps,
                    || run_heavy_par(heavy, workers, tuning),
                ));
            }
        }
    }

    // The fan-in contention microbench: many light producers into one
    // consumer, so wall time tracks the mailbox hot path, not compute.
    let fanin = FaninConfig {
        producers: cfg.fanin_producers,
        records: cfg.fanin_records,
        ..FaninConfig::default()
    };
    let fanin_expected = expected_fanin_digest(&fanin);
    let (sim_fanin_ms, fanin_sim_ok) =
        timed_sim(&fanin_expected, cfg.reps, || run_fanin_sim(&fanin).0);
    assert!(fanin_sim_ok, "simulator digest mismatch on fanin");
    for &workers in &cfg.worker_counts {
        for (mode, stealing) in [("stealing", true), ("static", false)] {
            let tuning = ParTuning {
                stealing,
                batch_size: 32,
                ..ParTuning::default()
            };
            points.push(timed_par(
                "fanin",
                workers,
                mode,
                sim_fanin_ms,
                &fanin_expected,
                cfg.reps,
                || run_fanin_par(&fanin, workers, tuning),
            ));
        }
    }

    ScalingReport {
        cores,
        records: cfg.records,
        hash_rounds: cfg.hash_rounds,
        sim_uniform_ms: sim_ms[0],
        sim_skewed_ms: sim_ms[1],
        sim_fanin_ms,
        points,
        // Structural (run-independent) provenance; per-run measurement
        // context belongs to the caller (`par_scaling --note ...`).
        notes: vec![
            "in-flight accounting is sharded per worker: sends charge the worker's \
             private padded cell once per event before publication, batches settle \
             once per activation, and quiescence is detected by an epoch-validated \
             idle scan (no contended global counter on the message hot path)"
                .to_string(),
            "the message hot path is lock-free end to end: mailboxes are Vyukov-style \
             MPSC queues (tail-CAS push, batched single-consumer drains), run queues \
             are Chase-Lev deques plus a block-based injector, instance cells ride \
             the scheduled-flag exclusivity instead of a mutex, and idle parking is \
             an eventcount (Condvar reachable only from the empty-queue slow path); \
             the fanin workload measures exactly this consumer-mailbox contention"
                .to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_scales_with_cores() {
        assert!((effective_floor(2.0, 1) - 0.85).abs() < 1e-12);
        assert!((effective_floor(2.0, 2) - 0.9).abs() < 1e-12);
        assert!((effective_floor(2.0, 4) - 1.8).abs() < 1e-12);
        assert!(
            (effective_floor(2.0, 8) - 2.0).abs() < 1e-12,
            "capped at the request"
        );
        assert!((effective_floor(1.5, 16) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_sweep_produces_a_complete_report() {
        let report = run_scaling(&ScalingConfig {
            records: 2_000,
            hash_rounds: 16,
            worker_counts: vec![1, 4],
            reps: 1,
            fanin_records: 3_000,
            fanin_producers: 4,
        });
        assert_eq!(report.points.len(), 3 * 2 * 2); // workloads x workers x modes
        assert!(report.all_correct());
        assert!(report.headline_speedup() > 0.0);
        assert!(report.stealing_over_static_skewed() > 0.0);
        assert!(report.fanin_contention_ms() > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"par_scaling\""));
        assert!(json.contains("\"workload\": \"skewed\""));
        assert!(json.contains("\"workload\": \"fanin\""));
        assert!(json.contains("\"fanin_contention_ms_4w\""));
        let table = report.render_table();
        assert!(table.contains("uniform"));
    }
}
