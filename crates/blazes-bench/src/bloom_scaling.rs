//! The `bloom_scaling` benchmark harness: the Bloom evaluation engine
//! swept over workloads, scales and evaluation modes.
//!
//! Three workloads cover the engine's cost regimes:
//!
//! * **tc** — transitive closure over a chain: deep recursion, where
//!   naive evaluation re-derives every shorter path on every iteration
//!   (O(n^4) probe work on a chain of n edges) and semi-naive touches
//!   each path once.
//! * **triangle** — a two-stage equi-join closing two-edge paths with a
//!   compound key: shallow recursion, so the win comes almost entirely
//!   from hash-join indexes over the nested-loop cross product.
//! * **adreport** — the paper's ad-report query (aggregation + join
//!   across strata): bounded fixpoints, measuring that the optimized
//!   engine does not regress the common non-recursive case.
//!
//! Every point records wall time **and** the engine's own work counters
//! ([`blazes_bloom::interp::TickStats`]); each optimized run is digest-
//! checked against the naive oracle's output. Results render as
//! `BENCH_bloom_scaling.json` and gate CI on the *counters* (semi-naive
//! derivations must not exceed naive's on the recursive workload), which
//! are machine-independent, plus an optional wall-clock speedup floor
//! for recorded runs.

use blazes_bloom::interp::{EvalMode, ModuleInstance, TickOutput, TickStats};
use blazes_bloom::parse_module;
use blazes_dataflow::value::{Tuple, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

const TC_MODULE: &str = r#"
module TC {
  input edge(src, dst)
  output path(src, dst)
  table e(src, dst)
  scratch p(src, dst)
  e <= edge
  p <= e
  p <= (p * e) on (p.dst = e.src) -> (p.src, e.dst)
  path <= p
}
"#;

const TRIANGLE_MODULE: &str = r#"
module Triangle {
  input edge(src, dst)
  output tri(a, b, c)
  table e1(src, dst)
  table e2(src, dst)
  table e3(src, dst)
  scratch hop(a, b, c)
  e1 <= edge
  e2 <= edge
  e3 <= edge
  hop <= (e1 * e2) on (e1.dst = e2.src) -> (e1.src, e1.dst, e2.dst)
  tri <= (hop * e3) on (hop.c = e3.src, hop.a = e3.dst) -> (hop.a, hop.b, hop.c)
}
"#;

const ADREPORT_MODULE: &str = r#"
module Report {
  input click(id, campaign)
  input request(id)
  output response(id, n)
  table log(id, campaign)
  scratch poor(id, n)
  log <= click
  poor <= log group by (log.id) agg count(*) as n having n < 1000
  response <~ (poor * request) on (poor.id = request.id) -> (poor.id, poor.n)
}
"#;

/// Configuration of one engine sweep.
#[derive(Debug, Clone)]
pub struct BloomScalingConfig {
    /// Chain lengths for the transitive-closure workload.
    pub tc_scales: Vec<usize>,
    /// Vertex counts for the triangle workload (edges = 4x vertices).
    pub triangle_scales: Vec<usize>,
    /// Click counts for the ad-report workload.
    pub adreport_scales: Vec<usize>,
    /// Worker counts for the sharded mode.
    pub sharded_workers: Vec<usize>,
    /// Timed repetitions per point (best-of).
    pub reps: u32,
}

impl Default for BloomScalingConfig {
    fn default() -> Self {
        BloomScalingConfig {
            tc_scales: vec![32, 64, 128],
            triangle_scales: vec![50, 100, 200],
            adreport_scales: vec![500, 1_000, 2_000],
            sharded_workers: vec![1, 2, 4],
            reps: 2,
        }
    }
}

impl BloomScalingConfig {
    /// A fast configuration for CI smoke runs and tests: small scales,
    /// one repetition. The counter gates are scale-independent, so the
    /// smoke run still checks everything but wall-clock floors.
    #[must_use]
    pub fn smoke() -> Self {
        BloomScalingConfig {
            tc_scales: vec![24, 48],
            triangle_scales: vec![40],
            adreport_scales: vec![300],
            sharded_workers: vec![1, 2],
            reps: 1,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct BloomPoint {
    /// `"tc"`, `"triangle"` or `"adreport"`.
    pub workload: &'static str,
    /// Cores the machine that measured this point reported. Stamped into
    /// every record so mixed-provenance files stay self-describing even
    /// when points are spliced between JSON files.
    pub cores: usize,
    /// Workload scale (chain length, vertices, or clicks).
    pub scale: usize,
    /// `"naive"`, `"semi-naive"` or `"sharded-N"`.
    pub mode: String,
    /// Best wall-clock milliseconds over the configured repetitions.
    pub millis: f64,
    /// Engine work counters of the best repetition.
    pub stats: TickStats,
    /// Did every repetition produce the naive oracle's exact output?
    pub correct: bool,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct BloomScalingReport {
    /// Cores the machine reported (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Timed repetitions per point.
    pub reps: u32,
    /// All measured points.
    pub points: Vec<BloomPoint>,
    /// Free-form provenance notes carried into the emitted JSON.
    pub notes: Vec<String>,
}

impl BloomScalingReport {
    /// Look up a point.
    #[must_use]
    pub fn point(&self, workload: &str, scale: usize, mode: &str) -> Option<&BloomPoint> {
        self.points
            .iter()
            .find(|p| p.workload == workload && p.scale == scale && p.mode == mode)
    }

    /// The largest scale measured for a workload.
    #[must_use]
    pub fn max_scale(&self, workload: &str) -> Option<usize> {
        self.points
            .iter()
            .filter(|p| p.workload == workload)
            .map(|p| p.scale)
            .max()
    }

    /// The headline metric: naive wall time over semi-naive wall time on
    /// transitive closure at the largest measured scale.
    #[must_use]
    pub fn headline_speedup(&self) -> f64 {
        let Some(scale) = self.max_scale("tc") else {
            return 0.0;
        };
        match (
            self.point("tc", scale, "naive"),
            self.point("tc", scale, "semi-naive"),
        ) {
            (Some(n), Some(s)) if s.millis > 0.0 => n.millis / s.millis,
            _ => 0.0,
        }
    }

    /// Did every optimized point reproduce the naive oracle's output?
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.points.iter().all(|p| p.correct)
    }

    /// The machine-independent no-re-derivation claim: on every
    /// transitive-closure point, semi-naive evaluation derived at most as
    /// many tuples as naive evaluation at the same scale — and at the
    /// largest scale, strictly fewer than half.
    #[must_use]
    pub fn counters_confirm_no_rederivation(&self) -> bool {
        let Some(max) = self.max_scale("tc") else {
            return false;
        };
        self.points
            .iter()
            .filter(|p| p.workload == "tc" && p.mode == "naive")
            .all(|n| {
                self.point("tc", n.scale, "semi-naive").is_some_and(|s| {
                    s.stats.derivations <= n.stats.derivations
                        && (n.scale < max || s.stats.derivations * 2 < n.stats.derivations)
                })
            })
    }

    /// Render as pretty-printed JSON (hand-rolled; the vendored serde
    /// shim has no serializer).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"bloom_scaling\",");
        let _ = writeln!(s, "  \"cores\": {},", self.cores);
        let _ = writeln!(s, "  \"reps\": {},", self.reps);
        let _ = writeln!(
            s,
            "  \"headline_tc_speedup_semi_vs_naive\": {:.3},",
            self.headline_speedup()
        );
        let _ = writeln!(
            s,
            "  \"counters_confirm_no_rederivation\": {},",
            self.counters_confirm_no_rederivation()
        );
        let _ = writeln!(s, "  \"all_correct\": {},", self.all_correct());
        let _ = writeln!(s, "  \"notes\": [");
        for (i, note) in self.notes.iter().enumerate() {
            let comma = if i + 1 == self.notes.len() { "" } else { "," };
            let escaped = note.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(s, "    \"{escaped}\"{comma}");
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 == self.points.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"workload\": \"{}\", \"cores\": {}, \"scale\": {}, \"mode\": \"{}\", \
                 \"millis\": {:.3}, \"derivations\": {}, \"join_probes\": {}, \
                 \"fixpoint_iters\": {}, \"correct\": {}}}{comma}",
                p.workload,
                p.cores,
                p.scale,
                p.mode,
                p.millis,
                p.stats.derivations,
                p.stats.join_probes,
                p.stats.fixpoint_iters,
                p.correct
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Render the human-readable table the bin prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "# bloom_scaling: evaluation-engine sweep, {} core(s), best of {} rep(s)",
            self.cores, self.reps
        );
        let _ = writeln!(
            s,
            "# workload  scale   mode         ms      derivations   join-probes  iters"
        );
        for p in &self.points {
            let _ = writeln!(
                s,
                "{:9} {:6} {:11} {:9.2} {:13} {:13} {:6}{}",
                p.workload,
                p.scale,
                p.mode,
                p.millis,
                p.stats.derivations,
                p.stats.join_probes,
                p.stats.fixpoint_iters,
                if p.correct { "" } else { "  DIGEST MISMATCH" },
            );
        }
        s
    }
}

/// A workload instance: module text plus the single tick of inputs.
struct Workload {
    name: &'static str,
    scale: usize,
    module: &'static str,
    inputs: BTreeMap<String, Vec<Tuple>>,
}

fn pair(a: i64, b: i64) -> Tuple {
    Tuple(vec![Value::Int(a), Value::Int(b)])
}

fn tc_workload(n: usize) -> Workload {
    let edges = (0..n).map(|i| pair(i as i64, i as i64 + 1)).collect();
    Workload {
        name: "tc",
        scale: n,
        module: TC_MODULE,
        inputs: BTreeMap::from([("edge".to_string(), edges)]),
    }
}

fn triangle_workload(v: usize) -> Workload {
    let edges = (0..4 * v)
        .map(|i| pair((i % v) as i64, ((i * 7 + 3) % v) as i64))
        .collect();
    Workload {
        name: "triangle",
        scale: v,
        module: TRIANGLE_MODULE,
        inputs: BTreeMap::from([("edge".to_string(), edges)]),
    }
}

fn adreport_workload(clicks: usize) -> Workload {
    let ids = (clicks / 8).max(1);
    let click_tuples = (0..clicks)
        .map(|i| pair((i % ids) as i64, (i % 7) as i64))
        .collect();
    let requests = (0..ids)
        .map(|i| Tuple(vec![Value::Int(i as i64)]))
        .collect();
    Workload {
        name: "adreport",
        scale: clicks,
        module: ADREPORT_MODULE,
        inputs: BTreeMap::from([
            ("click".to_string(), click_tuples),
            ("request".to_string(), requests),
        ]),
    }
}

fn mode_label(mode: EvalMode) -> String {
    match mode {
        EvalMode::Naive => "naive".to_string(),
        EvalMode::SemiNaive => "semi-naive".to_string(),
        EvalMode::Sharded { workers } => format!("sharded-{workers}"),
    }
}

fn run_once(w: &Workload, mode: EvalMode) -> (TickOutput, TickStats) {
    let m = parse_module(w.module).expect("bench module must parse");
    let mut inst = ModuleInstance::with_mode(m, mode).expect("bench module must stratify");
    let out = inst
        .tick(w.inputs.clone())
        .expect("bench tick must succeed");
    (out, inst.last_tick_stats())
}

/// Time one point: best-of-`reps` wall clock, counters from the best
/// repetition, output compared against the oracle on every repetition.
fn timed_point(
    w: &Workload,
    mode: EvalMode,
    expected: &TickOutput,
    reps: u32,
    cores: usize,
) -> BloomPoint {
    let mut best = f64::INFINITY;
    let mut stats = TickStats::default();
    let mut correct = true;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let (out, s) = run_once(w, mode);
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        if elapsed < best {
            best = elapsed;
            stats = s;
        }
        correct &= out == *expected;
    }
    BloomPoint {
        workload: w.name,
        cores,
        scale: w.scale,
        mode: mode_label(mode),
        millis: best,
        stats,
        correct,
    }
}

/// Run the full sweep: every workload at every scale under naive,
/// semi-naive and each sharded width, digest-checked against naive.
#[must_use]
pub fn run_bloom_scaling(cfg: &BloomScalingConfig) -> BloomScalingReport {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut workloads = Vec::new();
    workloads.extend(cfg.tc_scales.iter().map(|&n| tc_workload(n)));
    workloads.extend(cfg.triangle_scales.iter().map(|&v| triangle_workload(v)));
    workloads.extend(cfg.adreport_scales.iter().map(|&c| adreport_workload(c)));

    let mut points = Vec::new();
    for w in &workloads {
        // The naive run is both a measured point and the oracle digest.
        let (expected, _) = run_once(w, EvalMode::Naive);
        points.push(timed_point(w, EvalMode::Naive, &expected, cfg.reps, cores));
        points.push(timed_point(
            w,
            EvalMode::SemiNaive,
            &expected,
            cfg.reps,
            cores,
        ));
        for &workers in &cfg.sharded_workers {
            points.push(timed_point(
                w,
                EvalMode::Sharded { workers },
                &expected,
                cfg.reps,
                cores,
            ));
        }
    }

    BloomScalingReport {
        cores,
        reps: cfg.reps,
        points,
        notes: vec![
            "wall-clock speedups are engine-algorithmic (semi-naive deltas + hash \
             indexes beat per-iteration re-derivation with nested loops), so they \
             hold on a single core; the sharded mode additionally needs spare \
             cores to beat semi-naive on wall clock"
                .to_string(),
            "derivation/probe counters come from the engine itself and are \
             machine-independent; CI gates on those rather than wall clock"
                .to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_a_complete_gated_report() {
        let cfg = BloomScalingConfig::smoke();
        let report = run_bloom_scaling(&cfg);
        let workload_count =
            cfg.tc_scales.len() + cfg.triangle_scales.len() + cfg.adreport_scales.len();
        let modes = 2 + cfg.sharded_workers.len();
        assert_eq!(report.points.len(), workload_count * modes);
        assert!(report.all_correct(), "an optimized engine diverged");
        assert!(
            report.counters_confirm_no_rederivation(),
            "semi-naive re-derived on transitive closure"
        );
        assert!(report.headline_speedup() > 0.0);
        assert!(
            report.points.iter().all(|p| p.cores == report.cores),
            "every record carries the measuring machine's core count"
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"bloom_scaling\""));
        assert!(json.contains(&format!(
            "\"workload\": \"tc\", \"cores\": {},",
            report.cores
        )));
        assert!(json.contains("\"workload\": \"tc\""));
        assert!(json.contains("\"workload\": \"triangle\""));
        assert!(json.contains("\"workload\": \"adreport\""));
        assert!(json.contains("\"counters_confirm_no_rederivation\": true"));
        let table = report.render_table();
        assert!(table.contains("semi-naive"));
        assert!(table.contains("sharded-2"));
    }

    #[test]
    fn semi_naive_counters_dominate_on_recursion() {
        let report = run_bloom_scaling(&BloomScalingConfig {
            tc_scales: vec![48],
            triangle_scales: vec![],
            adreport_scales: vec![],
            sharded_workers: vec![],
            reps: 1,
        });
        let naive = report.point("tc", 48, "naive").unwrap();
        let semi = report.point("tc", 48, "semi-naive").unwrap();
        assert!(semi.stats.derivations * 2 < naive.stats.derivations);
        assert!(semi.stats.join_probes * 10 < naive.stats.join_probes);
    }
}
