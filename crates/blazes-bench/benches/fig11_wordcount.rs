//! Criterion bench for the Figure 11 workload: one wordcount run per
//! (cluster size, coordination regime). Criterion measures the wall-clock
//! cost of simulating each configuration; the *virtual-time* results that
//! reproduce the figure come from the `fig11` binary.

use blazes_apps::wordcount::run_wordcount;
use blazes_bench::fig11_scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_wordcount");
    group.sample_size(10);
    for workers in [5usize, 20] {
        for (label, transactional) in [("sealed", false), ("transactional", true)] {
            group.bench_with_input(BenchmarkId::new(label, workers), &workers, |b, &w| {
                b.iter(|| {
                    let mut sc = fig11_scenario(w, transactional, 0);
                    sc.workload.batches = 10;
                    black_box(run_wordcount(&sc).stats.end_time)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
