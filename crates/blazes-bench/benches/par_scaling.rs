//! Criterion bench: the heavy-compute hashing wordcount swept over worker
//! counts and schedulers, against the simulator baseline. The `par_scaling`
//! bin is the JSON-emitting CI variant of the same sweep; this harness
//! integrates with criterion's timing for local comparisons.

use blazes_apps::heavy::{run_heavy_par, run_heavy_sim, HeavyConfig};
use blazes_dataflow::par::ParTuning;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn small_uniform() -> HeavyConfig {
    HeavyConfig::uniform(8_000, 128)
}

fn small_skewed() -> HeavyConfig {
    HeavyConfig::skewed(8_000, 128)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_scaling");
    group.sample_size(10);

    group.bench_function("sim/uniform", |b| {
        let cfg = small_uniform();
        b.iter(|| black_box(run_heavy_sim(&cfg).0.len()));
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("par-stealing/uniform", workers),
            &workers,
            |b, &workers| {
                let cfg = small_uniform();
                b.iter(|| black_box(run_heavy_par(&cfg, workers, ParTuning::default()).0.len()));
            },
        );
    }
    for (mode, stealing) in [("stealing", true), ("static", false)] {
        group.bench_with_input(
            BenchmarkId::new(format!("par-{mode}/skewed"), 4usize),
            &4usize,
            |b, &workers| {
                let cfg = small_skewed();
                let tuning = ParTuning {
                    stealing,
                    ..ParTuning::default()
                };
                b.iter(|| black_box(run_heavy_par(&cfg, workers, tuning).0.len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
