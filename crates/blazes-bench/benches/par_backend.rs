//! Criterion bench comparing the discrete-event simulator with the
//! multi-worker parallel executor on an identical fan-out/fan-in topology.

use blazes_dataflow::backend::PortId;
use blazes_dataflow::channel::ChannelConfig;
use blazes_dataflow::component::{Component, Context, FnComponent};
use blazes_dataflow::message::Message;
use blazes_dataflow::par::ParBuilder;
use blazes_dataflow::sim::SimBuilder;
use blazes_dataflow::sinks::CollectorSink;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn echo() -> Box<dyn Component> {
    Box::new(FnComponent::new("echo", |_, msg, ctx: &mut Context| {
        ctx.emit(0, msg)
    }))
}

const MESSAGES: usize = 2_000;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_backend");
    group.sample_size(10);
    for stages in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("sim", stages), &stages, |b, &stages| {
            b.iter(|| {
                let mut builder = SimBuilder::new(7);
                let sink = CollectorSink::new();
                let sink_id = builder.add_instance(Box::new(sink.clone()));
                for _ in 0..stages {
                    let e = builder.add_instance(echo());
                    builder.connect_with(
                        e,
                        PortId(0),
                        sink_id,
                        PortId(0),
                        ChannelConfig::instant(),
                    );
                    for i in 0..MESSAGES / stages {
                        builder.inject(0, e, PortId(0), Message::data([i as i64]));
                    }
                }
                builder.build().run(None);
                black_box(sink.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("par", stages), &stages, |b, &stages| {
            b.iter(|| {
                let mut builder = ParBuilder::new(7).with_workers(4);
                let sink = CollectorSink::new();
                let sink_id = builder.add_instance(Box::new(sink.clone()));
                for _ in 0..stages {
                    let e = builder.add_instance(echo());
                    builder.connect_with(
                        e,
                        PortId(0),
                        sink_id,
                        PortId(0),
                        ChannelConfig::instant(),
                    );
                    for i in 0..MESSAGES / stages {
                        builder.inject(0, e, PortId(0), Message::data([i as i64]));
                    }
                }
                let _ = builder.build().run();
                black_box(sink.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
