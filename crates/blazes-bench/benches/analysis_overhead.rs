//! Ablation: the cost of the Blazes analysis itself as the dataflow grows —
//! the price a build system would pay to run the analyzer on every change.
//!
//! Benchmarks: (a) analysis of synthetic chain dataflows of increasing
//! size; (b) the white-box extraction for the CAMPAIGN Bloom module; (c)
//! full plan synthesis on the ad network.

use blazes_apps::casestudy::ad_network_graph;
use blazes_apps::queries::ReportQuery;
use blazes_bloom::analyze::annotate_module;
use blazes_core::analysis::Analyzer;
use blazes_core::annotation::ComponentAnnotation;
use blazes_core::graph::DataflowGraph;
use blazes_core::strategy::plan_for;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A chain of `n` alternating CW / OW components fed by a sealed source.
fn chain_graph(n: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new(format!("chain-{n}"));
    let src = g.add_source("src", &["k", "v"]);
    g.seal_source(src, ["k"]);
    let mut prev = None;
    for i in 0..n {
        let c = g.add_component(format!("C{i}"));
        let ann = if i % 2 == 0 {
            ComponentAnnotation::cw()
        } else {
            ComponentAnnotation::ow(["k"])
        };
        g.add_path(c, "in", "out", ann);
        match prev {
            None => {
                g.connect_source(src, c, "in");
            }
            Some(p) => {
                g.connect(p, "out", c, "in");
            }
        }
        prev = Some(c);
    }
    let sink = g.add_sink("sink");
    g.connect_sink(prev.expect("n > 0"), "out", sink);
    g
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_overhead");
    for n in [10usize, 100, 500] {
        let g = chain_graph(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &g, |b, g| {
            b.iter(|| black_box(Analyzer::new(g).run().expect("analyzable")));
        });
    }

    let m = ReportQuery::Campaign.module();
    group.bench_function("white_box_campaign", |b| {
        b.iter(|| black_box(annotate_module(&m).expect("analyzable")));
    });

    let (g, _) = ad_network_graph(ReportQuery::Campaign, Some(&["campaign"]));
    group.bench_function("plan_ad_network", |b| {
        b.iter(|| black_box(plan_for(&g, true).expect("plannable")));
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
