//! Criterion bench for the Figure 14 comparison: independent vs unanimous
//! seal protocols at 10 ad servers.

use blazes_apps::adreport::{run_scenario, StrategyKind};
use blazes_apps::workload::CampaignPlacement;
use blazes_bench::adreport_scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_seals(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_seal");
    group.sample_size(10);
    for (label, placement) in [
        ("independent", CampaignPlacement::Independent),
        ("unanimous", CampaignPlacement::Spread),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 10), &10usize, |b, &n| {
            b.iter(|| {
                let mut sc = adreport_scenario(n, StrategyKind::Sealed, placement, 0);
                sc.workload.entries_per_server = 200;
                black_box(run_scenario(&sc).stats.end_time)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seals);
criterion_main!(benches);
