//! Criterion bench for the Figures 12–13 workload: ad reporting under each
//! coordination strategy at 5 and 10 ad servers (scaled-down entry counts;
//! the figure-shape runs live in the `fig12`/`fig13` binaries).

use blazes_apps::adreport::{run_scenario, StrategyKind};
use blazes_apps::workload::CampaignPlacement;
use blazes_bench::adreport_scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_adreport(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_13_adreport");
    group.sample_size(10);
    for servers in [5usize, 10] {
        for (label, strategy, placement) in [
            (
                "uncoordinated",
                StrategyKind::Uncoordinated,
                CampaignPlacement::Spread,
            ),
            ("ordered", StrategyKind::Ordered, CampaignPlacement::Spread),
            ("seal", StrategyKind::Sealed, CampaignPlacement::Spread),
        ] {
            group.bench_with_input(BenchmarkId::new(label, servers), &servers, |b, &n| {
                b.iter(|| {
                    let mut sc = adreport_scenario(n, strategy, placement, 0);
                    sc.workload.entries_per_server = 200;
                    black_box(run_scenario(&sc).stats.end_time)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adreport);
criterion_main!(benches);
