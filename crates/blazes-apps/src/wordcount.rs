//! The Storm streaming wordcount (paper Sections I-B, VI-A, VIII-A).
//!
//! Tweets `(text, batch)` are shuffle-partitioned to `Splitter` bolts,
//! words hash-partitioned to `Count` bolts, and per-batch counts committed
//! by `Commit` bolts to a backing store (the sink). Two deployments:
//!
//! * **transactional** — commits serialize in batch order through a
//!   simulated coordination service (Storm's coordinated baseline);
//! * **sealed** — batches commit independently as soon as they are locally
//!   complete, which Blazes proves safe (`Seal_batch` is compatible with
//!   `OW_{word,batch}`).
//!
//! Figure 11 plots the throughput of both as the cluster grows.

use crate::workload::TweetWorkload;
use blazes_dataflow::backend::BackendSpec;
use blazes_dataflow::channel::ChannelConfig;
use blazes_dataflow::message::Message;
use blazes_dataflow::metrics::RunStats;
use blazes_dataflow::par::{ParStats, ParTuning};
use blazes_dataflow::sim::Time;
use blazes_dataflow::sinks::CollectorSink;
use blazes_dataflow::value::{Tuple, Value};
use blazes_storm::bolt::{Bolt, BoltContext};
use blazes_storm::grouping::Grouping;
use blazes_storm::runtime::batch_seal;
use blazes_storm::topology::{StormExecution, TopologyBuilder, TransactionalConfig};
use std::collections::BTreeMap;

/// Splits tweet text into `(word, batch)` tuples.
#[derive(Debug, Default)]
pub struct SplitterBolt;

impl Bolt for SplitterBolt {
    fn execute(&mut self, tuple: Tuple, ctx: &mut BoltContext) {
        let (Some(text), Some(batch)) = (
            tuple.get(0).and_then(Value::as_str).map(str::to_string),
            tuple.get(1).and_then(Value::as_int),
        ) else {
            return;
        };
        for word in text.split_whitespace() {
            ctx.emit(Tuple(vec![Value::str(word), Value::Int(batch)]));
        }
    }

    fn name(&self) -> &str {
        "splitter"
    }
}

/// Tallies words per `(word, batch)`; emits `(word, batch, count)` when a
/// batch completes at this instance.
#[derive(Debug, Default)]
pub struct CountBolt {
    counts: BTreeMap<(String, i64), i64>,
}

impl Bolt for CountBolt {
    fn execute(&mut self, tuple: Tuple, _ctx: &mut BoltContext) {
        let (Some(word), Some(batch)) = (
            tuple.get(0).and_then(Value::as_str).map(str::to_string),
            tuple.get(1).and_then(Value::as_int),
        ) else {
            return;
        };
        *self.counts.entry((word, batch)).or_insert(0) += 1;
    }

    fn finish_batch(&mut self, batch: i64, ctx: &mut BoltContext) {
        let keys: Vec<(String, i64)> = self
            .counts
            .keys()
            .filter(|(_, b)| *b == batch)
            .cloned()
            .collect();
        for key in keys {
            let n = self.counts.remove(&key).expect("key just listed");
            ctx.emit(Tuple(vec![
                Value::Str(key.0),
                Value::Int(key.1),
                Value::Int(n),
            ]));
        }
    }

    fn name(&self) -> &str {
        "count"
    }
}

/// Buffers per-batch counts and "writes them to the store" (emits them
/// downstream) when the batch may commit — immediately on local completion
/// in the sealed topology, or upon the coordinator's in-order grant in the
/// transactional one.
#[derive(Debug, Default)]
pub struct CommitBolt {
    staged: BTreeMap<i64, Vec<Tuple>>,
}

impl Bolt for CommitBolt {
    fn execute(&mut self, tuple: Tuple, _ctx: &mut BoltContext) {
        let Some(batch) = tuple.get(1).and_then(Value::as_int) else {
            return;
        };
        self.staged.entry(batch).or_default().push(tuple);
    }

    fn finish_batch(&mut self, batch: i64, ctx: &mut BoltContext) {
        for t in self.staged.remove(&batch).unwrap_or_default() {
            ctx.emit(t);
        }
    }

    fn name(&self) -> &str {
        "commit"
    }
}

/// Wordcount deployment parameters.
#[derive(Debug, Clone)]
pub struct WordcountScenario {
    /// Cluster size: parallelism of the Splitter and Count bolts.
    pub workers: usize,
    /// Spout instances (tweet sources).
    pub spouts: usize,
    /// Committer instances.
    pub committers: usize,
    /// The tweet workload per spout instance.
    pub workload: TweetWorkload,
    /// Use the transactional (coordinated) topology.
    pub transactional: bool,
    /// Per-word service time at Count instances.
    pub count_service: Time,
    /// Per-tweet service time at Splitter instances.
    pub splitter_service: Time,
    /// Coordinator service time per message (transactional only).
    pub coordinator_service: Time,
    /// Committer↔coordinator channel latency (transactional only).
    pub coordinator_latency: Time,
    /// Batches in flight for the transactional spout window (Storm's
    /// max-spout-pending; 0 = open loop).
    pub max_pending: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for WordcountScenario {
    fn default() -> Self {
        WordcountScenario {
            workers: 5,
            spouts: 2,
            committers: 2,
            workload: TweetWorkload::default(),
            transactional: false,
            count_service: 100,
            splitter_service: 50,
            coordinator_service: 2_000,
            coordinator_latency: 15_000,
            max_pending: 1,
            seed: 17,
        }
    }
}

/// Result of a wordcount run.
#[derive(Debug)]
pub struct WordcountResult {
    /// Simulator statistics.
    pub stats: RunStats,
    /// Committed `(word, batch, count)` tuples.
    pub committed: CollectorSink,
    /// Total tweets injected.
    pub tweets: u64,
}

impl WordcountResult {
    /// Committed counts keyed by `(word, batch)`.
    #[must_use]
    pub fn counts(&self) -> BTreeMap<(String, i64), i64> {
        counts_of(&self.committed)
    }

    /// End-to-end throughput in tweets per virtual second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.stats.end_time == 0 {
            return 0.0;
        }
        self.tweets as f64 / (self.stats.end_time as f64 / 1_000_000.0)
    }
}

/// Result of a wordcount run on the parallel executor.
#[derive(Debug)]
pub struct WordcountParResult {
    /// Parallel-executor statistics (wall clock, per-worker skew).
    pub stats: ParStats,
    /// Committed `(word, batch, count)` tuples.
    pub committed: CollectorSink,
    /// Total tweets injected.
    pub tweets: u64,
}

impl WordcountParResult {
    /// Committed counts keyed by `(word, batch)`.
    #[must_use]
    pub fn counts(&self) -> BTreeMap<(String, i64), i64> {
        counts_of(&self.committed)
    }

    /// End-to-end throughput in tweets per wall-clock second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.stats.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.tweets as f64 / secs
    }
}

pub(crate) fn counts_of(sink: &CollectorSink) -> BTreeMap<(String, i64), i64> {
    sink.messages()
        .iter()
        .filter_map(Message::as_data)
        .filter_map(|t| {
            Some((
                (
                    t.get(0).and_then(Value::as_str)?.to_string(),
                    t.get(1).and_then(Value::as_int)?,
                ),
                t.get(2).and_then(Value::as_int)?,
            ))
        })
        .collect()
}

/// Assemble the wordcount topology (shared by both backends). Returns the
/// builder plus the committed-tuples sink.
#[must_use]
pub fn wordcount_topology(sc: &WordcountScenario) -> (TopologyBuilder, CollectorSink) {
    let mut t = TopologyBuilder::new("wordcount", sc.seed);
    t.set_default_channel(ChannelConfig::lan().with_jitter(2_000));

    let spout = t.add_spout("tweets", sc.spouts);
    for inst in 0..sc.spouts {
        let mut sched: Vec<(Time, Message)> = Vec::new();
        let tweets = sc.workload.generate(inst);
        let mut last_batch: i64 = -1;
        let mut last_time: Time = 0;
        for (at, tweet) in tweets {
            let batch = tweet.get(1).and_then(Value::as_int).expect("batch field");
            if batch != last_batch && last_batch >= 0 {
                sched.push((last_time + 1, batch_seal(last_batch)));
            }
            last_batch = batch;
            last_time = at;
            sched.push((at, Message::Data(tweet)));
        }
        if last_batch >= 0 {
            sched.push((last_time + 1, batch_seal(last_batch)));
        }
        t.spout_schedule(spout, inst, sched);
    }

    let splitter = t.add_bolt(
        "Splitter",
        sc.workers,
        || Box::new(SplitterBolt),
        vec![(spout, Grouping::Shuffle)],
    );
    t.set_service_time(splitter, sc.splitter_service);

    let count = t.add_bolt(
        "Count",
        sc.workers,
        || Box::new(CountBolt::default()),
        vec![(splitter, Grouping::Fields(vec![0]))],
    );
    t.set_service_time(count, sc.count_service);

    let commit = t.add_bolt(
        "Commit",
        sc.committers,
        || Box::new(CommitBolt::default()),
        vec![(count, Grouping::Shuffle)],
    );
    if sc.transactional {
        t.make_transactional(
            commit,
            TransactionalConfig {
                service_time: sc.coordinator_service,
                channel: ChannelConfig::lan().with_latency(sc.coordinator_latency),
                first_batch: 0,
                max_pending: sc.max_pending,
            },
        );
    }

    let committed = CollectorSink::new();
    t.add_collector_sink("store", committed.clone(), commit);
    (t, committed)
}

/// Build and run the wordcount topology on the discrete-event simulator.
#[must_use]
pub fn run_wordcount(sc: &WordcountScenario) -> WordcountResult {
    let (t, committed) = wordcount_topology(sc);
    let mut run = t.build();
    let stats = run.run(None);
    WordcountResult {
        stats,
        committed,
        tweets: (sc.spouts * sc.workload.tweets_per_instance()) as u64,
    }
}

/// Build and run the wordcount topology on the multi-worker parallel
/// executor: the same components and wiring, on `workers` OS threads.
/// Modeled service times do not apply (real processing costs are paid for
/// real), so throughput here is wall-clock, not virtual.
#[must_use]
pub fn run_wordcount_parallel(
    sc: &WordcountScenario,
    workers: usize,
    tuning: ParTuning,
) -> WordcountParResult {
    let (t, committed) = wordcount_topology(sc);
    let mut run = match t.build_on(&BackendSpec::Par { workers, tuning }) {
        StormExecution::Par(run) => run,
        StormExecution::Sim(_) => unreachable!("Par spec builds a Par execution"),
    };
    let stats = run.run();
    WordcountParResult {
        stats,
        committed,
        tweets: (sc.spouts * sc.workload.tweets_per_instance()) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(workers: usize, transactional: bool, seed: u64) -> WordcountScenario {
        WordcountScenario {
            workers,
            transactional,
            seed,
            workload: TweetWorkload {
                vocabulary: 50,
                batches: 5,
                tweets_per_batch: 10,
                ..TweetWorkload::default()
            },
            ..WordcountScenario::default()
        }
    }

    #[test]
    fn counts_are_complete_and_positive() {
        let res = run_wordcount(&scenario(3, false, 1));
        let counts = res.counts();
        assert!(!counts.is_empty());
        // Total committed count equals total words emitted.
        let total: i64 = counts.values().sum();
        assert_eq!(total as u64, res.tweets * 5, "5 words per tweet");
    }

    #[test]
    fn sealed_topology_is_deterministic_across_seeds() {
        // The Blazes guarantee: sealed on batch => same committed counts
        // for every delivery interleaving.
        let a = run_wordcount(&scenario(3, false, 1));
        let b = run_wordcount(&scenario(3, false, 99));
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn transactional_and_sealed_agree_on_outputs() {
        let plain = run_wordcount(&scenario(3, false, 7));
        let tx = run_wordcount(&scenario(3, true, 7));
        assert_eq!(plain.counts(), tx.counts());
    }

    #[test]
    fn transactional_topology_is_slower() {
        let plain = run_wordcount(&scenario(5, false, 7));
        let tx = run_wordcount(&scenario(5, true, 7));
        assert!(
            tx.stats.end_time > plain.stats.end_time,
            "coordination must cost virtual time: tx={} plain={}",
            tx.stats.end_time,
            plain.stats.end_time
        );
        assert!(plain.throughput() > tx.throughput());
    }

    #[test]
    fn parallel_backend_commits_the_same_counts() {
        // Figure 11's scenario on both backends: the sealed topology is
        // confluent, so the threaded executor must commit exactly the
        // simulator's counts, whatever the scheduler.
        let sc = scenario(3, false, 13);
        let sim = run_wordcount(&sc);
        for tuning in [
            ParTuning::default(),
            ParTuning {
                stealing: false,
                ..ParTuning::default()
            },
        ] {
            let par = run_wordcount_parallel(&sc, 4, tuning);
            assert_eq!(par.counts(), sim.counts(), "{tuning:?}");
            assert_eq!(par.tweets, sim.tweets);
            assert!(par.throughput() > 0.0);
        }
    }

    #[test]
    fn throughput_grows_with_cluster_size() {
        let small = run_wordcount(&WordcountScenario {
            count_service: 2_000,
            splitter_service: 500,
            ..scenario(2, false, 3)
        });
        let large = run_wordcount(&WordcountScenario {
            count_service: 2_000,
            splitter_service: 500,
            ..scenario(8, false, 3)
        });
        assert!(
            large.throughput() > small.throughput(),
            "more workers, more throughput: {} vs {}",
            large.throughput(),
            small.throughput()
        );
    }

    #[test]
    fn commits_in_batch_order_when_transactional() {
        let res = run_wordcount(&scenario(3, true, 5));
        let mut max_batch = i64::MIN;
        for m in res.committed.messages() {
            let Some(t) = m.as_data() else { continue };
            let b = t.get(1).and_then(Value::as_int).unwrap();
            assert!(b >= max_batch, "batch order violated");
            max_batch = max_batch.max(b);
        }
    }
}
