//! Ready-made dataflow graphs of the two case studies for the Blazes
//! analyzer, reproducing the derivations of the paper's Section VI.
//!
//! * [`wordcount_graph`] uses the grey-box Storm adapter with manual
//!   annotations (Section VI-A).
//! * [`ad_network_graph`] uses the **white-box** pipeline: the Report
//!   component's annotations (including gates and lineage) come from
//!   [`blazes_bloom::analyze::annotate_module`] applied to the query's
//!   Bloom source, with the Cache annotated manually as in the paper's
//!   Section VI-B annotation file.

use crate::queries::ReportQuery;
use blazes_bloom::analyze::annotate_module;
use blazes_core::annotation::ComponentAnnotation;
use blazes_core::graph::{DataflowGraph, SinkId};
use blazes_dataflow::sinks::CollectorSink;
use blazes_storm::adapter::{dataflow_graph, TopologyAnnotations};
use blazes_storm::bolt::IdentityBolt;
use blazes_storm::grouping::Grouping;
use blazes_storm::topology::TopologyBuilder;

/// The wordcount dataflow with the Section VI-A1 annotations, optionally
/// sealed on `batch`.
#[must_use]
pub fn wordcount_graph(sealed: bool) -> (DataflowGraph, SinkId) {
    let mut t = TopologyBuilder::new("wordcount", 0);
    let spout = t.add_spout("tweets", 3);
    let splitter = t.add_bolt(
        "Splitter",
        3,
        || Box::new(IdentityBolt),
        vec![(spout, Grouping::Shuffle)],
    );
    let count = t.add_bolt(
        "Count",
        3,
        || Box::new(IdentityBolt),
        vec![(splitter, Grouping::Fields(vec![0]))],
    );
    let commit = t.add_bolt(
        "Commit",
        2,
        || Box::new(IdentityBolt),
        vec![(count, Grouping::Shuffle)],
    );
    t.add_collector_sink("store", CollectorSink::new(), commit);

    let mut ann = TopologyAnnotations::new();
    ann.spout_attrs("tweets", ["word", "batch"])
        .annotate_bolt("Splitter", ComponentAnnotation::cr())
        .annotate_bolt("Count", ComponentAnnotation::ow(["word", "batch"]))
        .annotate_bolt("Commit", ComponentAnnotation::cw());
    if sealed {
        ann.seal_spout("tweets", ["batch"]);
    }
    let g = dataflow_graph(&t.describe(), &ann).expect("wordcount graph is well-formed");
    let sink = g.sink_by_name("store").expect("sink exists");
    (g, sink)
}

/// The ad-tracking network dataflow (Fig. 4) for the given query, with the
/// click stream optionally sealed on `seal_key`.
///
/// The Report component's path annotations are derived by the white-box
/// Bloom analysis; the Cache follows the paper's manual annotation file
/// (CR request hit, CW response update, CR request forward), with both
/// Report and Cache replicated.
#[must_use]
pub fn ad_network_graph(query: ReportQuery, seal_key: Option<&[&str]>) -> (DataflowGraph, SinkId) {
    let mut g = DataflowGraph::new(format!("ad-report-{}", query.name()));
    let clicks = g.add_source("clicks", &["id", "campaign", "window"]);
    if let Some(key) = seal_key {
        g.seal_source(clicks, key.iter().copied());
    }
    let requests = g.add_source("requests", &["id"]);

    // Report: white-box derived annotations.
    let report = g.add_component("Report");
    g.set_rep(report, true);
    let module = query.module();
    for path in annotate_module(&module).expect("query module analyzable") {
        g.add_path_with_lineage(
            report,
            path.from.clone(),
            path.to.clone(),
            path.annotation.clone(),
            path.lineage.clone(),
        );
    }

    // Cache: the paper's manual annotations (Section VI-B1).
    let cache = g.add_component("Cache");
    g.set_rep(cache, true);
    g.add_path(cache, "request", "response", ComponentAnnotation::cr());
    g.add_path(cache, "response", "response", ComponentAnnotation::cw());
    g.add_path(cache, "request", "request", ComponentAnnotation::cr());

    let analyst = g.add_sink("analyst");
    g.connect_source(clicks, report, "click");
    g.connect_source(requests, cache, "request");
    g.connect(cache, "request", report, "request");
    g.connect(report, "response", cache, "response");
    g.connect(cache, "response", cache, "response"); // cache gossip
    g.connect_sink(cache, "response", analyst);

    let sink = g.sink_by_name("analyst").expect("sink exists");
    (g, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazes_core::analysis::Analyzer;
    use blazes_core::label::Label;
    use blazes_core::strategy::{plan_for, residual_labels, Strategy};

    #[test]
    fn wordcount_unsealed_derives_run() {
        let (g, sink) = wordcount_graph(false);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Run));
    }

    #[test]
    fn wordcount_sealed_derives_async() {
        let (g, sink) = wordcount_graph(true);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
    }

    #[test]
    fn thresh_derives_async_via_white_box() {
        let (g, sink) = ad_network_graph(ReportQuery::Thresh, None);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
    }

    #[test]
    fn poor_derives_diverge_via_white_box() {
        let (g, sink) = ad_network_graph(ReportQuery::Poor, None);
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Diverge));
    }

    #[test]
    fn campaign_sealed_derives_async_via_white_box() {
        let (g, sink) = ad_network_graph(ReportQuery::Campaign, Some(&["campaign"]));
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
    }

    #[test]
    fn window_sealed_on_window_derives_async() {
        let (g, sink) = ad_network_graph(ReportQuery::Window, Some(&["window"]));
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
    }

    #[test]
    fn window_sealed_on_id_also_async() {
        // WINDOW is OR_{id,window}: sealing on id works too (Section IV-A1).
        let (g, sink) = ad_network_graph(ReportQuery::Window, Some(&["id"]));
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Async));
    }

    #[test]
    fn poor_sealed_on_campaign_still_diverges() {
        let (g, sink) = ad_network_graph(ReportQuery::Poor, Some(&["campaign"]));
        let out = Analyzer::new(&g).run().unwrap();
        assert_eq!(out.sink_label(sink), Some(&Label::Diverge));
    }

    #[test]
    fn campaign_unsealed_plan_orders_report() {
        let (g, _) = ad_network_graph(ReportQuery::Campaign, None);
        let plan = plan_for(&g, true).unwrap();
        let report = g.component_by_name("Report").unwrap();
        assert!(plan
            .strategies
            .iter()
            .any(|s| matches!(s, Strategy::Ordering { component, .. } if *component == report)));
    }

    #[test]
    fn campaign_sealed_plan_uses_seal_protocol_only() {
        let (g, _) = ad_network_graph(ReportQuery::Campaign, Some(&["campaign"]));
        let plan = plan_for(&g, true).unwrap();
        assert!(plan.needs_sealing());
        assert!(!plan.needs_ordering());
        let residual = residual_labels(&g, &plan).unwrap();
        assert!(residual.iter().all(|(_, l)| !l.is_anomalous()));
    }

    #[test]
    fn thresh_needs_no_coordination_at_all() {
        let (g, _) = ad_network_graph(ReportQuery::Thresh, None);
        let plan = plan_for(&g, true).unwrap();
        assert!(plan.strategies.is_empty());
    }
}
