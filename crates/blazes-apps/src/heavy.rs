//! Heavy-compute workload family: a CPU-weighted hashing wordcount.
//!
//! Every workload the paper measures is coordination-bound; on the
//! parallel backend those tiny operators are channel-bound, so par ≈ sim
//! and the coordination-free speedup Blazes argues for (confluent dataflows
//! run at full hardware speed, no worker ever blocks on a global barrier)
//! never shows. This family makes each record *cost CPU*: producers emit
//! `(key, payload)` records, mappers burn a configurable number of hash
//! rounds per record, reducers fold the hashed values per key and publish a
//! digest. The digest is a commutative fold, so the topology is confluent
//! and differential-testable against the simulator; the per-record cost is
//! real work, so worker parallelism — and, under a skewed key
//! distribution, dynamic load balancing — is measurable.
//!
//! The key distribution is the load-skew knob: with
//! [`HeavyConfig::zipf_exponent`]` = 0.0` mapper partitions are uniform
//! (the scaling benchmark); with an exponent ≥ 1 one mapper partition
//! dominates (the ad-report-join-like skew where static round-robin
//! sharding pins the hot partition to one worker and work stealing wins).

use crate::workload::Zipf;
use blazes_dataflow::backend::{ExecutorBuilder, PortId};
use blazes_dataflow::channel::ChannelConfig;
use blazes_dataflow::component::{Component, Context};
use blazes_dataflow::message::Message;
use blazes_dataflow::metrics::RunStats;
use blazes_dataflow::par::{ParBuilder, ParStats, ParTuning};
use blazes_dataflow::sim::SimBuilder;
use blazes_dataflow::sinks::CollectorSink;
use blazes_dataflow::value::{Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Configuration of one heavy-compute run.
#[derive(Debug, Clone)]
pub struct HeavyConfig {
    /// Producer (source) instances.
    pub producers: usize,
    /// Mapper instances; records partition to `key % mappers`.
    pub mappers: usize,
    /// Reducer instances; hashed records partition to `key % reducers`.
    pub reducers: usize,
    /// Total records across all producers.
    pub records: usize,
    /// Hash rounds burned per record at a mapper (the per-record CPU
    /// cost; ~1µs per 250 rounds on commodity hardware).
    pub hash_rounds: u32,
    /// Distinct keys.
    pub keys: usize,
    /// Zipf exponent of the key distribution; `0.0` = uniform.
    pub zipf_exponent: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for HeavyConfig {
    fn default() -> Self {
        HeavyConfig {
            producers: 2,
            mappers: 8,
            reducers: 2,
            records: 20_000,
            hash_rounds: 512,
            keys: 64,
            zipf_exponent: 0.0,
            seed: 23,
        }
    }
}

impl HeavyConfig {
    /// The uniform-key scaling workload (parallelism wins).
    #[must_use]
    pub fn uniform(records: usize, hash_rounds: u32) -> Self {
        HeavyConfig {
            records,
            hash_rounds,
            ..HeavyConfig::default()
        }
    }

    /// The skewed-key workload: keys equal mapper count and follow a steep
    /// Zipf, so one mapper partition dominates (work stealing wins over
    /// static sharding).
    #[must_use]
    pub fn skewed(records: usize, hash_rounds: u32) -> Self {
        HeavyConfig {
            records,
            hash_rounds,
            keys: 8,
            mappers: 8,
            zipf_exponent: 2.0,
            ..HeavyConfig::default()
        }
    }

    /// Deterministically generate each producer's record list:
    /// `(key, payload)` pairs.
    #[must_use]
    pub fn generate(&self, producer: usize) -> Vec<(i64, i64)> {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (producer as u64).wrapping_mul(0x2545_f491_4f6c_dd1d),
        );
        let zipf = (self.zipf_exponent > 0.0).then(|| Zipf::new(self.keys, self.zipf_exponent));
        let per_producer = self.records / self.producers.max(1);
        let count = if producer + 1 == self.producers.max(1) {
            self.records - per_producer * (self.producers.max(1) - 1)
        } else {
            per_producer
        };
        (0..count)
            .map(|_| {
                let key = match &zipf {
                    Some(z) => z.sample(&mut rng) as i64,
                    None => rng.random_range(0..self.keys as i64),
                };
                (key, rng.random_range(0..i64::MAX / 2))
            })
            .collect()
    }
}

/// One round of the splitmix64 finalizer — the unit of synthetic CPU cost.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Burn `rounds` hash rounds over `payload` and return the digest. Public
/// so benches can calibrate the per-record cost.
#[must_use]
pub fn heavy_hash(payload: i64, rounds: u32) -> i64 {
    let mut x = payload as u64 ^ 0x9e37_79b9_7f4a_7c15;
    for _ in 0..rounds {
        x = mix(std::hint::black_box(x));
    }
    // Keep it positive so Value::Int round-trips exactly.
    (x >> 1) as i64
}

/// A mapper: hashes each record `hash_rounds` times and forwards
/// `(key, digest)` to `reducer = key % reducers`. Forwards EOS to every
/// reducer once all upstream producers signalled end-of-stream.
struct HeavyMapper {
    name: String,
    hash_rounds: u32,
    reducers: usize,
    expected_eos: usize,
    seen_eos: usize,
}

impl Component for HeavyMapper {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) => {
                let key = t.get(0).and_then(Value::as_int).expect("key column");
                let payload = t.get(1).and_then(Value::as_int).expect("payload column");
                let digest = heavy_hash(payload, self.hash_rounds);
                let port = (key % self.reducers as i64).unsigned_abs() as usize;
                ctx.emit(port, Message::data([key, digest]));
            }
            Message::Eos => {
                self.seen_eos += 1;
                if self.seen_eos == self.expected_eos {
                    for port in 0..self.reducers {
                        ctx.emit(port, Message::Eos);
                    }
                }
            }
            Message::Seal(_) => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A reducer: folds digests per key with a commutative combine (wrapping
/// add), and once every mapper signalled EOS emits one summary tuple per
/// key: `(key, count, checksum)`.
struct HeavyReducer {
    name: String,
    expected_eos: usize,
    seen_eos: usize,
    acc: BTreeMap<i64, (i64, i64)>,
}

impl Component for HeavyReducer {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) => {
                let key = t.get(0).and_then(Value::as_int).expect("key column");
                let digest = t.get(1).and_then(Value::as_int).expect("digest column");
                let entry = self.acc.entry(key).or_insert((0, 0));
                entry.0 += 1;
                entry.1 = entry.1.wrapping_add(digest) & i64::MAX;
            }
            Message::Eos => {
                self.seen_eos += 1;
                if self.seen_eos == self.expected_eos {
                    for (key, (count, checksum)) in &self.acc {
                        ctx.emit(0, Message::data([*key, *count, *checksum]));
                    }
                }
            }
            Message::Seal(_) => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A producer: routes each injected record to `mapper = key % mappers`,
/// and broadcasts EOS to every mapper when its input ends.
struct HeavyProducer {
    name: String,
    mappers: usize,
}

impl Component for HeavyProducer {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) => {
                let key = t.get(0).and_then(Value::as_int).expect("key column");
                let port = (key % self.mappers as i64).unsigned_abs() as usize;
                ctx.emit(port, Message::Data(t));
            }
            Message::Eos => {
                for port in 0..self.mappers {
                    ctx.emit(port, Message::Eos);
                }
            }
            Message::Seal(_) => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Assemble the heavy-compute topology on any backend: `producers` sources
/// route records by key to `mappers` hashing mappers, which partition
/// digests to `reducers` folding reducers, which publish per-key summaries
/// into `sink`.
pub fn build_heavy<B: ExecutorBuilder>(b: &mut B, cfg: &HeavyConfig, sink: CollectorSink) {
    let channel = ChannelConfig::instant();
    let mapper_ids: Vec<_> = (0..cfg.mappers)
        .map(|m| {
            b.add_instance(Box::new(HeavyMapper {
                name: format!("mapper[{m}]"),
                hash_rounds: cfg.hash_rounds,
                reducers: cfg.reducers,
                expected_eos: cfg.producers,
                seen_eos: 0,
            }))
        })
        .collect();
    let reducer_ids: Vec<_> = (0..cfg.reducers)
        .map(|r| {
            b.add_instance(Box::new(HeavyReducer {
                name: format!("reducer[{r}]"),
                expected_eos: cfg.mappers,
                seen_eos: 0,
                acc: BTreeMap::new(),
            }))
        })
        .collect();
    let sink_id = b.add_instance(Box::new(sink));
    for &mid in &mapper_ids {
        for (r, &rid) in reducer_ids.iter().enumerate() {
            b.connect_with(mid, PortId(r), rid, PortId(0), channel.clone());
        }
    }
    for &rid in &reducer_ids {
        b.connect_with(rid, PortId(0), sink_id, PortId(0), channel.clone());
    }
    for p in 0..cfg.producers {
        let pid = b.add_instance(Box::new(HeavyProducer {
            name: format!("producer[{p}]"),
            mappers: cfg.mappers,
        }));
        for (m, &mid) in mapper_ids.iter().enumerate() {
            b.connect_with(pid, PortId(m), mid, PortId(0), channel.clone());
        }
        for (key, payload) in cfg.generate(p) {
            b.inject(0, pid, PortId(0), Message::data([key, payload]));
        }
        b.inject(1, pid, PortId(0), Message::Eos);
    }
}

/// Configuration of the fan-in contention workload: many light producers
/// funneling small records into one consumer instance. Where
/// [`HeavyConfig`] makes each record *cost CPU* (so parallelism shows),
/// this family makes each record cost almost nothing — the run is bound by
/// the consumer's mailbox, which every producer hammers concurrently. It
/// is the microbench for the mailbox implementation itself: under the old
/// mutex-backed mailboxes every send serialized on the consumer's lock;
/// the lock-free MPSC path should show up directly in wall time and in
/// the `push_retries` counter.
#[derive(Debug, Clone)]
pub struct FaninConfig {
    /// Light producer (forwarder) instances, all wired to one consumer.
    pub producers: usize,
    /// Total records across all producers.
    pub records: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for FaninConfig {
    fn default() -> Self {
        FaninConfig {
            producers: 16,
            records: 120_000,
            seed: 41,
        }
    }
}

impl FaninConfig {
    /// Deterministically generate one producer's payload list.
    #[must_use]
    pub fn generate(&self, producer: usize) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (producer as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let per = self.records / self.producers.max(1);
        let count = if producer + 1 == self.producers.max(1) {
            self.records - per * (self.producers.max(1) - 1)
        } else {
            per
        };
        (0..count)
            .map(|_| rng.random_range(0..i64::MAX / 2))
            .collect()
    }
}

/// A light forwarder: one `mix` round per record (just enough work that
/// the compiler cannot elide the pipeline), then straight to the consumer.
struct FaninProducer {
    name: String,
}

impl Component for FaninProducer {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) => {
                let payload = t.get(0).and_then(Value::as_int).expect("payload column");
                let mixed = (mix(payload as u64) >> 1) as i64;
                ctx.emit(0, Message::data([mixed]));
            }
            Message::Eos => ctx.emit(0, Message::Eos),
            Message::Seal(_) => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The fan-in consumer: folds a commutative `(count, checksum)` over every
/// record and publishes one summary tuple once all producers signalled EOS.
struct FaninConsumer {
    expected_eos: usize,
    seen_eos: usize,
    count: i64,
    checksum: i64,
}

impl Component for FaninConsumer {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) => {
                let v = t.get(0).and_then(Value::as_int).expect("payload column");
                self.count += 1;
                self.checksum = self.checksum.wrapping_add(v) & i64::MAX;
            }
            Message::Eos => {
                self.seen_eos += 1;
                if self.seen_eos == self.expected_eos {
                    ctx.emit(0, Message::data([self.count, self.checksum]));
                }
            }
            Message::Seal(_) => {}
        }
    }

    fn name(&self) -> &str {
        "fanin-consumer"
    }
}

/// Assemble the fan-in topology on any backend: `producers` light
/// forwarders all wired into one folding consumer, which publishes its
/// summary into `sink`.
pub fn build_fanin<B: ExecutorBuilder>(b: &mut B, cfg: &FaninConfig, sink: CollectorSink) {
    let channel = ChannelConfig::instant();
    let consumer = b.add_instance(Box::new(FaninConsumer {
        expected_eos: cfg.producers,
        seen_eos: 0,
        count: 0,
        checksum: 0,
    }));
    let sink_id = b.add_instance(Box::new(sink));
    b.connect_with(consumer, PortId(0), sink_id, PortId(0), channel.clone());
    for p in 0..cfg.producers {
        let pid = b.add_instance(Box::new(FaninProducer {
            name: format!("fanin-producer[{p}]"),
        }));
        b.connect_with(pid, PortId(0), consumer, PortId(0), channel.clone());
        for payload in cfg.generate(p) {
            b.inject(0, pid, PortId(0), Message::data([payload]));
        }
        b.inject(1, pid, PortId(0), Message::Eos);
    }
}

/// The single summary tuple a fan-in run must produce, computed
/// sequentially.
#[must_use]
pub fn expected_fanin_digest(cfg: &FaninConfig) -> BTreeSet<Message> {
    let mut count = 0i64;
    let mut checksum = 0i64;
    for p in 0..cfg.producers {
        for payload in cfg.generate(p) {
            count += 1;
            checksum = checksum.wrapping_add((mix(payload as u64) >> 1) as i64) & i64::MAX;
        }
    }
    std::iter::once(Message::data([count, checksum])).collect()
}

/// Run the fan-in workload on the discrete-event simulator.
#[must_use]
pub fn run_fanin_sim(cfg: &FaninConfig) -> (BTreeSet<Message>, RunStats) {
    let sink = CollectorSink::new();
    let mut b = SimBuilder::new(cfg.seed);
    build_fanin(&mut b, cfg, sink.clone());
    let stats = b.build().run(None);
    (sink.message_set(), stats)
}

/// Run the fan-in workload on the parallel executor.
///
/// # Panics
/// Panics when `tuning` is invalid (zero batch size, capacity or spill
/// threshold).
#[must_use]
pub fn run_fanin_par(
    cfg: &FaninConfig,
    workers: usize,
    tuning: ParTuning,
) -> (BTreeSet<Message>, ParStats) {
    let sink = CollectorSink::new();
    let mut b = ParBuilder::new(cfg.seed)
        .with_workers(workers)
        .with_tuning(tuning)
        .expect("valid parallel tuning");
    build_fanin(&mut b, cfg, sink.clone());
    let stats = b.build().run();
    (sink.message_set(), stats)
}

/// The digest a run must produce: one `(key, count, checksum)` tuple per
/// key observed, computed sequentially.
#[must_use]
pub fn expected_digest(cfg: &HeavyConfig) -> BTreeSet<Message> {
    let mut acc: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
    for p in 0..cfg.producers {
        for (key, payload) in cfg.generate(p) {
            let digest = heavy_hash(payload, cfg.hash_rounds);
            let entry = acc.entry(key).or_insert((0, 0));
            entry.0 += 1;
            entry.1 = entry.1.wrapping_add(digest) & i64::MAX;
        }
    }
    acc.into_iter()
        .map(|(key, (count, checksum))| {
            Message::Data(Tuple(vec![
                Value::Int(key),
                Value::Int(count),
                Value::Int(checksum),
            ]))
        })
        .collect()
}

/// Run the workload on the discrete-event simulator.
#[must_use]
pub fn run_heavy_sim(cfg: &HeavyConfig) -> (BTreeSet<Message>, RunStats) {
    let sink = CollectorSink::new();
    let mut b = SimBuilder::new(cfg.seed);
    build_heavy(&mut b, cfg, sink.clone());
    let stats = b.build().run(None);
    (sink.message_set(), stats)
}

/// Run the workload on the parallel executor with the given worker count
/// and scheduler tuning.
///
/// # Panics
/// Panics when `tuning` is invalid (zero batch size, capacity or spill
/// threshold).
#[must_use]
pub fn run_heavy_par(
    cfg: &HeavyConfig,
    workers: usize,
    tuning: ParTuning,
) -> (BTreeSet<Message>, ParStats) {
    let sink = CollectorSink::new();
    let mut b = ParBuilder::new(cfg.seed)
        .with_workers(workers)
        .with_tuning(tuning)
        .expect("valid parallel tuning");
    build_heavy(&mut b, cfg, sink.clone());
    let stats = b.build().run();
    (sink.message_set(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(zipf: f64) -> HeavyConfig {
        HeavyConfig {
            producers: 2,
            mappers: 4,
            reducers: 2,
            records: 400,
            hash_rounds: 16,
            keys: 16,
            zipf_exponent: zipf,
            seed: 9,
        }
    }

    #[test]
    fn generation_is_deterministic_and_complete() {
        let cfg = tiny(0.0);
        assert_eq!(cfg.generate(0), cfg.generate(0));
        let total: usize = (0..cfg.producers).map(|p| cfg.generate(p).len()).sum();
        assert_eq!(total, cfg.records);
    }

    #[test]
    fn skewed_keys_concentrate_mass() {
        let cfg = HeavyConfig {
            records: 4_000,
            ..HeavyConfig::skewed(4_000, 16)
        };
        let mut counts = vec![0usize; cfg.keys];
        for p in 0..cfg.producers {
            for (key, _) in cfg.generate(p) {
                counts[key as usize] += 1;
            }
        }
        let hot = counts[0];
        assert!(
            hot * 2 > cfg.records,
            "rank-0 key should carry >half the records, got {hot}/{}",
            cfg.records
        );
    }

    #[test]
    fn heavy_hash_depends_on_rounds_and_payload() {
        assert_eq!(heavy_hash(7, 32), heavy_hash(7, 32));
        assert_ne!(heavy_hash(7, 32), heavy_hash(7, 33));
        assert_ne!(heavy_hash(7, 32), heavy_hash(8, 32));
        assert!(heavy_hash(-5, 8) >= 0);
    }

    #[test]
    fn simulator_matches_expected_digest() {
        let cfg = tiny(0.0);
        let (digest, stats) = run_heavy_sim(&cfg);
        assert_eq!(digest, expected_digest(&cfg));
        assert!(stats.messages_delivered > cfg.records as u64 * 2);
    }

    #[test]
    fn fanin_digests_agree_across_backends() {
        let cfg = FaninConfig {
            producers: 5,
            records: 500,
            seed: 7,
        };
        let expected = expected_fanin_digest(&cfg);
        assert_eq!(expected.len(), 1);
        let (sim_digest, _) = run_fanin_sim(&cfg);
        assert_eq!(sim_digest, expected);
        for stealing in [true, false] {
            let tuning = ParTuning {
                stealing,
                ..ParTuning::default()
            };
            let (digest, stats) = run_fanin_par(&cfg, 4, tuning);
            assert_eq!(digest, expected, "stealing={stealing}");
            // records at producers + records at consumer + EOS traffic + summary
            assert!(stats.messages_delivered >= cfg.records as u64 * 2);
        }
    }

    #[test]
    fn parallel_matches_expected_digest_under_all_schedulers() {
        for zipf in [0.0, 1.4] {
            let cfg = tiny(zipf);
            let expected = expected_digest(&cfg);
            for stealing in [true, false] {
                for capacity in [None, Some(4)] {
                    let tuning = ParTuning {
                        stealing,
                        channel_capacity: capacity,
                        batch_size: 8,
                        ..ParTuning::default()
                    };
                    let (digest, _) = run_heavy_par(&cfg, 4, tuning);
                    assert_eq!(
                        digest, expected,
                        "zipf={zipf} stealing={stealing} capacity={capacity:?}"
                    );
                }
            }
        }
    }
}
