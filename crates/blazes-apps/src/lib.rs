//! # blazes-apps
//!
//! The paper's two case-study applications, built on the simulated
//! substrates:
//!
//! * [`wordcount`] — the Storm streaming wordcount (Sections I-B, VI-A,
//!   VIII-A): tweet workload, Splitter/Count/Commit bolts, and both the
//!   *transactional* (coordinated) and *sealed* (uncoordinated but
//!   consistent) deployments measured in Figure 11.
//! * [`adreport`] — the Bloom ad-tracking network (Sections I-B, VI-B,
//!   VIII-B): ad servers, replicated reporting servers running the
//!   continuous queries of Fig. 6, and the four coordination strategies of
//!   Figures 12–14 (uncoordinated / ordered / independent seal / seal).
//! * [`queries`] — the four reporting queries (THRESH / POOR / WINDOW /
//!   CAMPAIGN) as mini-Bloom modules, plus their white-box-derived
//!   annotations.
//! * [`workload`] — synthetic workload generators (Zipf-distributed tweet
//!   stream, partitioned click logs).
//! * [`heavy`] — the heavy-compute hashing wordcount family (uniform and
//!   skewed key distributions) that makes parallel-backend speedups
//!   measurable.
//! * [`casestudy`] — ready-made dataflow graphs of both systems for the
//!   Blazes analysis, reproducing the derivations of Section VI.
//! * [`autocoord`] — auto-coordinated variants of both case studies: the
//!   annotate→analyze→inject pipeline replaces the hand-wired
//!   coordination above.

pub mod adreport;
pub mod autocoord;
pub mod casestudy;
pub mod dist;
pub mod heavy;
pub mod queries;
pub mod wordcount;
pub mod workload;
