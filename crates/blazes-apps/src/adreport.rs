//! The ad-tracking network of the paper's Sections I-B and VIII-B, runnable
//! under all four coordination strategies of Figures 12–14.
//!
//! Topology (simulated):
//!
//! ```text
//! ad servers ──clicks──▶ [Sequencer]? ──▶ Report replicas ──▶ response sinks
//! analysts  ──requests─▶      │                ▲
//!                             └── ordered ─────┘
//! ```
//!
//! * **Uncoordinated** — clicks flow straight to every replica over
//!   jittered channels; replicas may answer queries inconsistently.
//! * **Ordered** — every click and request is routed through a total-order
//!   [`blazes_coord::Sequencer`] (the Zookeeper stand-in). Replicas agree,
//!   but all traffic serializes through one service.
//! * **Sealed** — ad servers append campaign punctuations; each replica
//!   runs the synthesized seal protocol ([`blazes_coord::SealManager`]):
//!   buffer per campaign, release on a unanimous producer vote. Whether the
//!   vote needs one seal or one per server depends on the workload's
//!   [`CampaignPlacement`] ("Independent Seal" vs "Seal" in Fig. 14).
//!
//! The measured signal is the paper's: cumulative click-log records
//! *processed* by the reporting servers over virtual time.

use crate::queries::ReportQuery;
use crate::workload::{CampaignPlacement, ClickWorkload};
use blazes_bloom::interp::ModuleInstance;
use blazes_coord::registry::ProducerRegistry;
use blazes_coord::seal::{SealManager, SealOutcome};
use blazes_coord::sequencer::Sequencer;
use blazes_dataflow::backend::{ExecutorBuilder, PortId};
use blazes_dataflow::channel::ChannelConfig;
use blazes_dataflow::component::{Component, Context};
use blazes_dataflow::message::{Message, SealKey};
use blazes_dataflow::metrics::{RunStats, TimeSeries};
use blazes_dataflow::par::{ParBuilder, ParStats, ParTuning};
use blazes_dataflow::sim::{InstanceId, SimBuilder, Time};
use blazes_dataflow::sinks::CollectorSink;
use blazes_dataflow::value::{Tuple, Value};
use std::collections::BTreeMap;

/// Coordination strategy for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// No coordination: fastest, inconsistent.
    Uncoordinated,
    /// Total ordering through a sequencer.
    Ordered,
    /// Seal-based coordination (voting per the workload's placement).
    Sealed,
    /// No hand-wired coordination, but the ad servers' campaign
    /// punctuations still flow: the bare topology `blazes-autocoord`
    /// rewrites (see [`crate::autocoord::run_scenario_auto`]). Running it
    /// *without* the rewrite behaves like [`StrategyKind::Uncoordinated`]
    /// plus ignored punctuations.
    Bare,
}

impl StrategyKind {
    /// Label used in the figures.
    #[must_use]
    pub fn label(self, placement: CampaignPlacement) -> &'static str {
        match (self, placement) {
            (StrategyKind::Uncoordinated, _) => "Uncoordinated",
            (StrategyKind::Ordered, _) => "Ordered",
            (StrategyKind::Sealed, CampaignPlacement::Independent) => "Independent Seal",
            (StrategyKind::Sealed, CampaignPlacement::Spread) => "Seal",
            (StrategyKind::Bare, _) => "Auto (bare)",
        }
    }
}

/// Scenario configuration.
#[derive(Debug, Clone)]
pub struct AdScenario {
    /// The click workload (including placement).
    pub workload: ClickWorkload,
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Number of reporting-server replicas (the paper uses 3).
    pub replicas: usize,
    /// Analyst requests posed during the run (each goes to every replica).
    pub requests: usize,
    /// Per-message service time at each reporting server.
    pub report_service: Time,
    /// Per-message service time at the sequencer (ordering strategy only).
    pub sequencer_service: Time,
    /// The continuous query installed (the paper's runs use CAMPAIGN).
    pub query: ReportQuery,
    /// Bloom timesteps are batched: run one tick per `tick_every` buffered
    /// clicks (requests always force a tick). Purely an interpreter
    /// throughput knob; does not change outcomes.
    pub tick_every: usize,
    /// Duplicate-delivery probability on the ad-server → replica click
    /// channels (at-least-once replay, drawn from the per-wire seeded
    /// fault RNG). Applies to the strategies that wire clicks directly
    /// (uncoordinated / sealed / bare).
    pub click_duplicates: f64,
    /// Extra per-message service time at ad server 0, making it the
    /// *straggler*: its clicks and (crucially) its seal punctuations lag
    /// everyone else's, so blocking seal coordination stalls on it while
    /// time-warp speculation runs ahead. Only observable where service
    /// times apply — the simulator, or the parallel backend with
    /// `ParTuning::with_virtual_service_ns`.
    pub straggler_service: Time,
    /// Route analyst requests through an `analyst` broadcast instance
    /// wired to every replica, instead of injecting them directly. As a
    /// topology participant the analyst *races* with click ingestion on
    /// the execution substrate — the knob that surfaces the paper's
    /// Section III-A cross-instance nondeterminism on the threaded
    /// backend. Ignored under the ordering strategy (requests go through
    /// the sequencer either way).
    pub requests_via_analyst: bool,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for AdScenario {
    fn default() -> Self {
        AdScenario {
            workload: ClickWorkload::default(),
            strategy: StrategyKind::Uncoordinated,
            replicas: 3,
            requests: 10,
            report_service: 100,
            sequencer_service: 4_000,
            query: ReportQuery::Campaign,
            tick_every: 25,
            click_duplicates: 0.0,
            straggler_service: 0,
            requests_via_analyst: false,
            seed: 3,
        }
    }
}

/// Result of one scenario run.
#[derive(Debug)]
pub struct AdRunResult {
    /// Per-replica cumulative processed-records series.
    pub series: Vec<TimeSeries>,
    /// Per-replica response collections.
    pub responses: Vec<CollectorSink>,
    /// Simulator statistics.
    pub stats: RunStats,
    /// Records each replica was expected to process.
    pub expected_records: u64,
}

impl AdRunResult {
    /// Virtual time at which the slowest replica finished processing every
    /// record (`None` if some replica never did).
    #[must_use]
    pub fn completion_time(&self) -> Option<Time> {
        self.series
            .iter()
            .map(|s| s.time_to_reach(self.expected_records))
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// Do all replicas report identical response sets?
    #[must_use]
    pub fn responses_consistent(&self) -> bool {
        let sets: Vec<_> = self
            .responses
            .iter()
            .map(CollectorSink::message_set)
            .collect();
        sets.windows(2).all(|w| w[0] == w[1])
    }

    /// Total responses seen across replicas.
    #[must_use]
    pub fn total_responses(&self) -> usize {
        self.responses.iter().map(CollectorSink::len).sum()
    }
}

/// The reporting-server replica component.
///
/// Input convention (any port): data tuples of arity 3 are clicks
/// `(id, campaign, window)`; arity 1 are requests `(id)`. Seal messages
/// carry `campaign` and `producer` keys. Responses are emitted on port 0.
pub struct ReportServer {
    bloom: ModuleInstance,
    seal: Option<SealManager>,
    series: TimeSeries,
    pending_clicks: Vec<Tuple>,
    /// Sealed mode only: requests are re-posed after every partition
    /// release, so replicas answer from *final* partition contents only —
    /// the query-delay half of the synthesized seal protocol (paper
    /// Section V-B1 footnote 2).
    pending_requests: Vec<Tuple>,
    tick_every: usize,
    name: String,
}

impl ReportServer {
    /// Build a replica running `query`; `seal_registry` enables the sealed
    /// strategy.
    pub fn new(
        query: ReportQuery,
        seal_registry: Option<ProducerRegistry>,
        tick_every: usize,
        name: impl Into<String>,
    ) -> Self {
        ReportServer {
            bloom: ModuleInstance::new(query.module()).expect("query module stratifies"),
            seal: seal_registry.map(SealManager::new),
            series: TimeSeries::new(),
            pending_clicks: Vec::new(),
            pending_requests: Vec::new(),
            tick_every: tick_every.max(1),
            name: name.into(),
        }
    }

    /// The processed-records series (shared handle).
    #[must_use]
    pub fn series(&self) -> TimeSeries {
        self.series.clone()
    }

    fn flush_clicks(&mut self, ctx: &mut Context) {
        if self.pending_clicks.is_empty() {
            return;
        }
        let clicks = std::mem::take(&mut self.pending_clicks);
        let mut inputs = BTreeMap::new();
        inputs.insert("click".to_string(), clicks);
        let out = self.bloom.tick(inputs).expect("click tick");
        // Click ticks may produce responses only when joined with pending
        // requests (there are none buffered), so `out` is typically empty;
        // emit anything derived for completeness.
        for t in out.on("response") {
            ctx.emit(0, Message::Data(t.clone()));
        }
    }

    fn ingest_click(&mut self, tuple: Tuple, ctx: &mut Context) {
        self.series.increment(ctx.now);
        self.pending_clicks.push(tuple);
        if self.pending_clicks.len() >= self.tick_every {
            self.flush_clicks(ctx);
        }
    }

    fn handle_request(&mut self, tuple: Tuple, ctx: &mut Context) {
        if self.seal.is_some() {
            // Query delay: remember the request and answer (again) after
            // each partition release, so only final contents are read.
            self.pending_requests.push(tuple.clone());
        }
        self.flush_clicks(ctx);
        let mut inputs = BTreeMap::new();
        inputs.insert("request".to_string(), vec![tuple]);
        let out = self.bloom.tick(inputs).expect("request tick");
        for t in out.on("response") {
            ctx.emit(0, Message::Data(t.clone()));
        }
    }

    /// Re-pose all pending requests (sealed mode, after a release).
    fn replay_requests(&mut self, ctx: &mut Context) {
        if self.pending_requests.is_empty() {
            return;
        }
        let mut inputs = BTreeMap::new();
        inputs.insert("request".to_string(), self.pending_requests.clone());
        let out = self.bloom.tick(inputs).expect("request replay tick");
        for t in out.on("response") {
            ctx.emit(0, Message::Data(t.clone()));
        }
    }
}

/// Checkpoint of a replica's state for time-warp speculation: the Bloom
/// interpreter instance plus the batching buffers, and the length of the
/// shared processed-records series (truncated on restore).
struct ReportSnapshot {
    bloom: ModuleInstance,
    pending_clicks: Vec<Tuple>,
    pending_requests: Vec<Tuple>,
    series_len: usize,
}

impl Component for ReportServer {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(tuple) if tuple.arity() == 3 => {
                match &mut self.seal {
                    None => self.ingest_click(tuple, ctx),
                    Some(mgr) => {
                        let campaign = tuple.get(1).cloned().expect("click tuple has a campaign");
                        match mgr.on_data(campaign, tuple) {
                            SealOutcome::Buffered => {}
                            SealOutcome::Released(tuples) => {
                                for t in tuples {
                                    self.ingest_click(t, ctx);
                                }
                                self.flush_clicks(ctx);
                                self.replay_requests(ctx);
                            }
                            SealOutcome::LateArrival => {
                                // A protocol violation; count it processed so
                                // runs terminate, but it would be a bug.
                                debug_assert!(false, "late click after seal");
                            }
                        }
                    }
                }
            }
            Message::Data(tuple) => self.handle_request(tuple, ctx),
            Message::Seal(key) => {
                let Some(mgr) = &mut self.seal else { return };
                let (Some(campaign), Some(producer)) = (
                    key.value_of("campaign").cloned(),
                    key.value_of("producer").and_then(Value::as_int),
                ) else {
                    return;
                };
                if let SealOutcome::Released(tuples) = mgr.on_seal(campaign, producer as usize) {
                    for t in tuples {
                        self.ingest_click(t, ctx);
                    }
                    self.flush_clicks(ctx);
                    self.replay_requests(ctx);
                }
            }
            Message::Eos => self.flush_clicks(ctx),
        }
    }

    fn snapshot(&self) -> Option<Box<dyn std::any::Any + Send>> {
        if self.seal.is_some() {
            // Native sealed mode runs the blocking protocol inside the
            // replica; its SealManager state is not checkpointed, so opt
            // out and let the runtime defer speculative deliveries.
            return None;
        }
        Some(Box::new(ReportSnapshot {
            bloom: self.bloom.clone(),
            pending_clicks: self.pending_clicks.clone(),
            pending_requests: self.pending_requests.clone(),
            series_len: self.series.len(),
        }))
    }

    fn restore(&mut self, snapshot: Box<dyn std::any::Any + Send>) {
        let snap = snapshot
            .downcast::<ReportSnapshot>()
            .expect("report snapshot");
        self.bloom = snap.bloom;
        self.pending_clicks = snap.pending_clicks;
        self.pending_requests = snap.pending_requests;
        self.series.truncate(snap.series_len);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Forwarder used for ad servers: broadcasts whatever is injected into it
/// to all wired consumers.
struct Broadcast {
    name: String,
}

impl Component for Broadcast {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        ctx.emit(0, msg);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The producer registry the seal protocol votes against, per the
/// workload's campaign placement (who produces which campaign).
#[must_use]
pub fn seal_registry_for(workload: &ClickWorkload) -> ProducerRegistry {
    match workload.placement {
        CampaignPlacement::Spread => ProducerRegistry::all_produce(0..workload.ad_servers),
        CampaignPlacement::Independent => {
            let mut reg = ProducerRegistry::new();
            for c in 0..workload.campaigns as i64 {
                reg.register(Value::Int(c), [(c as usize) % workload.ad_servers]);
            }
            reg
        }
    }
}

/// Assemble the ad-reporting topology on any backend. Returns the
/// per-replica processed-records series and response sinks, the latter
/// paired with their backend instance ids so a distributed run can tell
/// which process owns (and must stream back) which sink.
pub fn assemble_scenario<B: ExecutorBuilder>(
    sc: &AdScenario,
    b: &mut B,
) -> (Vec<TimeSeries>, Vec<(InstanceId, CollectorSink)>) {
    // Reporting replicas + response sinks.
    let registry = (sc.strategy == StrategyKind::Sealed).then(|| seal_registry_for(&sc.workload));
    let mut replica_ids = Vec::with_capacity(sc.replicas);
    let mut series = Vec::with_capacity(sc.replicas);
    let mut responses = Vec::with_capacity(sc.replicas);
    for r in 0..sc.replicas {
        let server = ReportServer::new(
            sc.query,
            registry.clone(),
            sc.tick_every,
            format!("report[{r}]"),
        );
        series.push(server.series());
        let id = b.add_instance(Box::new(server));
        b.set_service_time(id, sc.report_service);
        let sink = CollectorSink::new();
        let sid = b.add_instance(Box::new(sink.clone()));
        b.connect_with(id, PortId(0), sid, PortId(0), ChannelConfig::lan());
        responses.push((sid, sink));
        replica_ids.push(id);
    }

    // Optional sequencer.
    let sequencer = (sc.strategy == StrategyKind::Ordered).then(|| {
        let id = b.add_instance(Box::new(Sequencer::new()));
        b.set_service_time(id, sc.sequencer_service);
        let ordered = b.add_channel(ChannelConfig::ordered(1_000));
        for &rid in &replica_ids {
            b.connect(id, PortId(0), rid, PortId(0), ordered);
        }
        id
    });

    // Ad servers: broadcast instances fed by injection.
    let click_channel = ChannelConfig::lan()
        .with_jitter(5_000)
        .with_duplicates(sc.click_duplicates);
    let mut latest: Time = 0;
    for s in 0..sc.workload.ad_servers {
        let ad = b.add_instance(Box::new(Broadcast {
            name: format!("adserver[{s}]"),
        }));
        if s == 0 && sc.straggler_service != 0 {
            b.set_service_time(ad, sc.straggler_service);
        }
        match sequencer {
            Some(seq) => b.connect_with(ad, PortId(0), seq, PortId(0), ChannelConfig::lan()),
            None => {
                for &rid in &replica_ids {
                    b.connect_with(ad, PortId(0), rid, PortId(0), click_channel.clone());
                }
            }
        }
        let log = sc.workload.generate(s);
        for (at, click) in &log.clicks {
            b.inject(*at, ad, PortId(0), Message::Data(click.clone()));
        }
        latest = latest.max(log.end_time);
        if matches!(sc.strategy, StrategyKind::Sealed | StrategyKind::Bare) {
            for (at, c) in &log.seals {
                b.inject(
                    *at,
                    ad,
                    PortId(0),
                    Message::Seal(SealKey::new([
                        ("campaign", Value::Int(*c)),
                        ("producer", Value::Int(s as i64)),
                    ])),
                );
            }
        }
    }

    // Analyst requests, spread over the generation span, each posed to all
    // replicas — through the sequencer under ordering, otherwise through
    // an analyst broadcast instance whose forwarding *races* with click
    // ingestion on the execution substrate (the race behind the paper's
    // Section III-A cross-instance nondeterminism).
    let ad_space = (sc.workload.campaigns * sc.workload.ads_per_campaign) as i64;
    let analyst = (sequencer.is_none() && sc.requests_via_analyst).then(|| {
        let analyst = b.add_instance(Box::new(Broadcast {
            name: "analyst".to_string(),
        }));
        for &rid in &replica_ids {
            b.connect_with(
                analyst,
                PortId(0),
                rid,
                PortId(0),
                ChannelConfig::lan().with_jitter(5_000),
            );
        }
        analyst
    });
    for r in 0..sc.requests {
        let at = (latest * (r as u64 + 1)) / (sc.requests as u64 + 1);
        let req = Message::Data(Tuple(vec![Value::Int(r as i64 % ad_space)]));
        match (sequencer, analyst) {
            (Some(seq), _) => b.inject(at, seq, PortId(0), req),
            (None, Some(analyst)) => b.inject(at, analyst, PortId(0), req),
            (None, None) => {
                for &rid in &replica_ids {
                    b.inject(at, rid, PortId(0), req.clone());
                }
            }
        }
    }

    (series, responses)
}

/// Run one scenario to quiescence on the discrete-event simulator.
#[must_use]
pub fn run_scenario(sc: &AdScenario) -> AdRunResult {
    let mut b = SimBuilder::new(sc.seed);
    let (series, responses) = assemble_scenario(sc, &mut b);
    let mut sim = b.build();
    let stats = sim.run(None);
    AdRunResult {
        series,
        responses: responses.into_iter().map(|(_, s)| s).collect(),
        stats,
        expected_records: sc.workload.total_entries() as u64,
    }
}

/// Result of one scenario run on the parallel executor. Series totals are
/// meaningful (records processed); series *times* are per-instance event
/// ordinals, not virtual microseconds.
#[derive(Debug)]
pub struct AdParResult {
    /// Per-replica cumulative processed-records series.
    pub series: Vec<TimeSeries>,
    /// Per-replica response collections.
    pub responses: Vec<CollectorSink>,
    /// Parallel-executor statistics.
    pub stats: ParStats,
    /// Records each replica was expected to process.
    pub expected_records: u64,
}

impl AdParResult {
    /// Did every replica process every record?
    #[must_use]
    pub fn processed_everything(&self) -> bool {
        self.series
            .iter()
            .all(|s| s.total() == self.expected_records)
    }

    /// Do all replicas report identical response sets?
    #[must_use]
    pub fn responses_consistent(&self) -> bool {
        let sets: Vec<_> = self
            .responses
            .iter()
            .map(CollectorSink::message_set)
            .collect();
        sets.windows(2).all(|w| w[0] == w[1])
    }
}

/// Run one scenario to quiescence on the multi-worker parallel executor.
/// The sequencer (ordered strategy) and seal managers are ordinary
/// components, so every strategy runs threaded; service times do not apply.
///
/// # Panics
/// Panics when `tuning` is invalid (zero batch size, capacity or spill
/// threshold).
#[must_use]
pub fn run_scenario_parallel(sc: &AdScenario, workers: usize, tuning: ParTuning) -> AdParResult {
    let mut b = ParBuilder::new(sc.seed)
        .with_workers(workers)
        .with_tuning(tuning)
        .expect("valid parallel tuning");
    let (series, responses) = assemble_scenario(sc, &mut b);
    let stats = b.build().run();
    AdParResult {
        series,
        responses: responses.into_iter().map(|(_, s)| s).collect(),
        stats,
        expected_records: sc.workload.total_entries() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload(placement: CampaignPlacement) -> ClickWorkload {
        ClickWorkload {
            ad_servers: 3,
            entries_per_server: 60,
            batch_size: 20,
            sleep_between_batches: 50_000,
            entry_interval: 200,
            campaigns: 6,
            ads_per_campaign: 4,
            placement,
            seed: 5,
        }
    }

    fn scenario(strategy: StrategyKind, placement: CampaignPlacement) -> AdScenario {
        AdScenario {
            workload: small_workload(placement),
            strategy,
            replicas: 3,
            requests: 6,
            report_service: 100,
            sequencer_service: 2_000,
            query: ReportQuery::Campaign,
            tick_every: 10,
            click_duplicates: 0.0,
            straggler_service: 0,
            requests_via_analyst: false,
            seed: 21,
        }
    }

    #[test]
    fn uncoordinated_processes_everything() {
        let res = run_scenario(&scenario(
            StrategyKind::Uncoordinated,
            CampaignPlacement::Spread,
        ));
        assert_eq!(res.expected_records, 180);
        for s in &res.series {
            assert_eq!(s.total(), 180, "every replica sees every record");
        }
        assert!(res.completion_time().is_some());
    }

    #[test]
    fn sealed_spread_processes_everything() {
        let res = run_scenario(&scenario(StrategyKind::Sealed, CampaignPlacement::Spread));
        for s in &res.series {
            assert_eq!(s.total(), 180, "all partitions released");
        }
    }

    #[test]
    fn sealed_independent_processes_everything() {
        let res = run_scenario(&scenario(
            StrategyKind::Sealed,
            CampaignPlacement::Independent,
        ));
        for s in &res.series {
            assert_eq!(s.total(), 180);
        }
    }

    #[test]
    fn ordered_processes_everything_and_is_consistent() {
        let res = run_scenario(&scenario(StrategyKind::Ordered, CampaignPlacement::Spread));
        for s in &res.series {
            assert_eq!(s.total(), 180);
        }
        assert!(res.responses_consistent(), "total order implies agreement");
    }

    #[test]
    fn sealed_responses_are_consistent() {
        // CAMPAIGN + campaign seals: deterministic outcomes (paper VI-B2).
        // Requests race with ongoing partitions in general, but with the
        // CAMPAIGN query a replica only answers from *released* partitions,
        // which every replica releases with identical contents.
        let res = run_scenario(&scenario(StrategyKind::Sealed, CampaignPlacement::Spread));
        assert!(res.responses_consistent());
    }

    #[test]
    fn parallel_backend_processes_everything_under_every_strategy() {
        // Figures 12–14's scenarios, threaded: every strategy must still
        // deliver all records to all replicas, under both schedulers.
        for strategy in [
            StrategyKind::Uncoordinated,
            StrategyKind::Ordered,
            StrategyKind::Sealed,
        ] {
            for stealing in [true, false] {
                let tuning = ParTuning {
                    stealing,
                    ..ParTuning::default()
                };
                let res = run_scenario_parallel(
                    &scenario(strategy, CampaignPlacement::Spread),
                    3,
                    tuning,
                );
                assert!(
                    res.processed_everything(),
                    "{strategy:?} stealing={stealing}: {:?}",
                    res.series.iter().map(TimeSeries::total).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn parallel_sealed_responses_are_consistent() {
        // Replicas only answer from released (seal-complete) partitions,
        // so agreement must survive real thread nondeterminism.
        let res = run_scenario_parallel(
            &scenario(StrategyKind::Sealed, CampaignPlacement::Spread),
            4,
            ParTuning::default(),
        );
        assert!(res.processed_everything());
        assert!(res.responses_consistent());
    }

    #[test]
    fn ordered_is_slower_than_uncoordinated() {
        let fast = run_scenario(&scenario(
            StrategyKind::Uncoordinated,
            CampaignPlacement::Spread,
        ));
        let slow = run_scenario(&scenario(StrategyKind::Ordered, CampaignPlacement::Spread));
        assert!(
            slow.completion_time().unwrap() > fast.completion_time().unwrap(),
            "ordering must cost time: {:?} vs {:?}",
            slow.completion_time(),
            fast.completion_time()
        );
    }

    #[test]
    fn independent_seals_release_earlier_than_spread() {
        let ind = run_scenario(&scenario(
            StrategyKind::Sealed,
            CampaignPlacement::Independent,
        ));
        let spread = run_scenario(&scenario(StrategyKind::Sealed, CampaignPlacement::Spread));
        // Under spread placement, each campaign waits for *every* server's
        // seal, which only happens at end-of-log: releases cluster late.
        // Independent campaigns release as soon as their one master seals.
        let t_ind = ind.series[0].time_to_reach(60).unwrap();
        let t_spread = spread.series[0].time_to_reach(60).unwrap();
        assert!(
            t_ind <= t_spread,
            "first third of records should land no later under independent seals \
             ({t_ind} vs {t_spread})"
        );
    }

    #[test]
    fn strategy_labels_match_figures() {
        assert_eq!(
            StrategyKind::Sealed.label(CampaignPlacement::Independent),
            "Independent Seal"
        );
        assert_eq!(
            StrategyKind::Sealed.label(CampaignPlacement::Spread),
            "Seal"
        );
        assert_eq!(
            StrategyKind::Ordered.label(CampaignPlacement::Spread),
            "Ordered"
        );
    }
}
