//! The reporting-server queries of the paper's Fig. 6, as mini-Bloom
//! modules.
//!
//! | name     | continuous query (SQL in the paper)                                  |
//! |----------|----------------------------------------------------------------------|
//! | THRESH   | `select id from clicks group by id having count(*) > 1000`           |
//! | POOR     | `select id from clicks group by id having count(*) < 100`            |
//! | WINDOW   | `select window, id from clicks group by window, id having count(*) < 100` |
//! | CAMPAIGN | `select campaign, id from clicks group by campaign, id having count(*) < 100` |
//!
//! Each module accumulates clicks in a persistent `log` table (the CW write
//! path) and answers requests by joining the standing query result with the
//! request stream (the read path whose annotation varies per query).

use blazes_bloom::ast::Module;
use blazes_bloom::parser::parse_module;

/// Which continuous query the reporting server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportQuery {
    /// Ads with at least 1000 clicks (confluent).
    Thresh,
    /// Ads with fewer than 100 clicks (nonmonotonic, partitioned on `id`).
    Poor,
    /// Per-window poor performers (partitioned on `id, window`).
    Window,
    /// Per-campaign poor performers (partitioned on `campaign, id`).
    Campaign,
}

impl ReportQuery {
    /// All four queries.
    pub const ALL: [ReportQuery; 4] = [
        ReportQuery::Thresh,
        ReportQuery::Poor,
        ReportQuery::Window,
        ReportQuery::Campaign,
    ];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReportQuery::Thresh => "THRESH",
            ReportQuery::Poor => "POOR",
            ReportQuery::Window => "WINDOW",
            ReportQuery::Campaign => "CAMPAIGN",
        }
    }

    /// The threshold used by the query (1000 for THRESH, 100 otherwise).
    #[must_use]
    pub fn threshold(self) -> i64 {
        match self {
            ReportQuery::Thresh => 1_000,
            _ => 100,
        }
    }

    /// The mini-Bloom source of the Report module running this query.
    #[must_use]
    pub fn module_source(self) -> String {
        let query_rule = match self {
            ReportQuery::Thresh => {
                // Monotone threshold: lower bound + projection drops count.
                "q <= log group by (log.id) agg count(*) as n having n > 1000 -> (log.id, 0)"
                    .to_string()
            }
            ReportQuery::Poor => {
                "q <= log group by (log.id) agg count(*) as n having n < 100".to_string()
            }
            ReportQuery::Window => {
                "q <= log group by (log.id, log.window) agg count(*) as n having n < 100 \
                 -> (log.id, n)"
                    .to_string()
            }
            ReportQuery::Campaign => {
                "q <= log group by (log.campaign, log.id) agg count(*) as n having n < 100 \
                 -> (log.id, n)"
                    .to_string()
            }
        };
        format!(
            r#"
module Report {{
  input click(id, campaign, window)
  input request(id)
  output response(id, n)
  table log(id, campaign, window)
  scratch q(id, n)

  log <= click
  {query_rule}
  response <~ (q * request) on (q.id = request.id) -> (q.id, q.n)
}}
"#
        )
    }

    /// Parse the module (panics only on an internal template bug).
    #[must_use]
    pub fn module(self) -> Module {
        parse_module(&self.module_source()).expect("query template parses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazes_bloom::analyze::annotate_module;
    use blazes_bloom::interp::ModuleInstance;
    use blazes_core::annotation::ComponentAnnotation;
    use blazes_dataflow::value::{Tuple, Value};
    use std::collections::BTreeMap;

    fn click(id: i64, campaign: i64, window: i64) -> Tuple {
        Tuple(vec![
            Value::Int(id),
            Value::Int(campaign),
            Value::Int(window),
        ])
    }

    fn run_query(q: ReportQuery, clicks: Vec<Tuple>, request_id: i64) -> Vec<Tuple> {
        let mut inst = ModuleInstance::new(q.module()).unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("click".to_string(), clicks);
        inputs.insert(
            "request".to_string(),
            vec![Tuple(vec![Value::Int(request_id)])],
        );
        inst.tick(inputs).unwrap().on("response").to_vec()
    }

    #[test]
    fn all_modules_parse_and_stratify() {
        for q in ReportQuery::ALL {
            let m = q.module();
            assert_eq!(m.name, "Report");
            assert!(ModuleInstance::new(m).is_ok(), "{} must stratify", q.name());
        }
    }

    #[test]
    fn poor_reports_low_click_ads() {
        // Ad 1 has 2 distinct clicks (< 100): reported.
        let out = run_query(ReportQuery::Poor, vec![click(1, 0, 0), click(1, 0, 1)], 1);
        assert_eq!(out, vec![Tuple(vec![Value::Int(1), Value::Int(2)])]);
    }

    #[test]
    fn poor_set_shrinks_as_clicks_arrive() {
        // The hallmark of nonmonotonicity: more input, smaller answer.
        let q = ReportQuery::Poor.module();
        let mut inst = ModuleInstance::new(q).unwrap();
        let mut inputs = BTreeMap::new();
        // 150 distinct clicks for ad 7 (window differentiates tuples).
        inputs.insert(
            "click".to_string(),
            (0..150).map(|w| click(7, 0, w)).collect(),
        );
        inputs.insert("request".to_string(), vec![Tuple(vec![Value::Int(7)])]);
        let out = inst.tick(inputs).unwrap();
        assert!(out.on("response").is_empty(), "ad 7 is no longer poor");
    }

    #[test]
    fn thresh_fires_only_after_1000_clicks() {
        let below: Vec<Tuple> = (0..999).map(|w| click(3, 0, w)).collect();
        assert!(run_query(ReportQuery::Thresh, below, 3).is_empty());
        let above: Vec<Tuple> = (0..1001).map(|w| click(3, 0, w)).collect();
        let out = run_query(ReportQuery::Thresh, above, 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), Some(&Value::Int(3)));
    }

    #[test]
    fn window_scopes_counts_per_window() {
        // 2 clicks in window 0, 1 in window 1 — both groups are "poor",
        // and the response joins on id.
        let out = run_query(
            ReportQuery::Window,
            vec![click(5, 0, 0), click(5, 1, 0), click(5, 0, 1)],
            5,
        );
        // Two groups (5,w0) count 2 and (5,w1) count 1 -> both respond.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn campaign_scopes_counts_per_campaign() {
        let out = run_query(
            ReportQuery::Campaign,
            vec![click(9, 1, 0), click(9, 1, 1), click(9, 2, 0)],
            9,
        );
        // Groups (c1,9) count 2 and (c2,9) count 1.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn white_box_annotations_match_paper_section_vi() {
        // Paper Section VI-B1's annotation file, derived automatically.
        let expect = [
            (ReportQuery::Thresh, ComponentAnnotation::cr()),
            (ReportQuery::Poor, ComponentAnnotation::or(["id"])),
            (
                ReportQuery::Window,
                ComponentAnnotation::or(["id", "window"]),
            ),
            (
                ReportQuery::Campaign,
                ComponentAnnotation::or(["campaign", "id"]),
            ),
        ];
        for (q, want) in expect {
            let anns = annotate_module(&q.module()).unwrap();
            let click_path = anns.iter().find(|a| a.from == "click").unwrap();
            assert_eq!(
                click_path.annotation,
                ComponentAnnotation::cw(),
                "{}: click path must be CW",
                q.name()
            );
            let request_path = anns.iter().find(|a| a.from == "request").unwrap();
            assert_eq!(request_path.annotation, want, "{}: request path", q.name());
        }
    }

    #[test]
    fn thresholds_match_figure_6() {
        assert_eq!(ReportQuery::Thresh.threshold(), 1000);
        assert_eq!(ReportQuery::Poor.threshold(), 100);
        assert_eq!(ReportQuery::ALL.len(), 4);
    }
}
