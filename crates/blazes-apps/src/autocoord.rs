//! Auto-coordinated variants of the case studies: the full
//! annotate→analyze→inject pipeline, end to end.
//!
//! The hand-wired deployments in [`crate::adreport`] and
//! [`crate::wordcount`] pick their coordination manually. Here the
//! *analysis* picks it:
//!
//! * [`ad_network_spec`] derives the coordination spec for the ad network
//!   running a given query (white-box Bloom annotations, campaign
//!   punctuations available). [`run_ad_auto`] then assembles the **bare**
//!   topology — no seal managers, no sequencer — and lets
//!   [`blazes_autocoord::AutoCoordRules`] rewrite it: CAMPAIGN gets seal
//!   gates, POOR gets an ordering service, THRESH gets nothing.
//! * [`wordcount_spec`] does the same for the Storm wordcount through the
//!   grey-box adapter; [`run_wordcount_auto`] threads it through
//!   [`TopologyBuilder::build_coordinated_on`], where sealing maps onto
//!   the engine-native punctuation protocol (zero injected operators —
//!   the minimality proof) and ordering onto transactional commits.
//!
//! Both runners take a [`BackendSpec`], so one call site covers the
//! simulator, the parallel executor and the distributed multi-process
//! backend; the former per-backend entry points survive as deprecated
//! wrappers.

use crate::adreport::{seal_registry_for, AdParResult, AdRunResult, AdScenario, StrategyKind};
use crate::casestudy::{ad_network_graph, wordcount_graph};
use crate::queries::ReportQuery;
use crate::wordcount::{
    counts_of, wordcount_topology, WordcountParResult, WordcountResult, WordcountScenario,
};
use blazes_autocoord::{AutoCoordRules, InjectionSummary, SealBinding};
use blazes_core::placement::{CoordDirective, CoordinationSpec};
use blazes_dataflow::backend::{
    BackendRunStats, BackendSpec, ExecutorBuilder, NoopPass, RewriteStats, RewritingBuilder,
};
use blazes_dataflow::dist::{run_dist, ProbeBuilder};
use blazes_dataflow::message::Message;
use blazes_dataflow::metrics::TimeSeries;
use blazes_dataflow::par::{ParBuilder, ParTuning};
use blazes_dataflow::sim::{InstanceId, SimBuilder};
use blazes_dataflow::sinks::CollectorSink;
use blazes_dataflow::value::Value;
use blazes_storm::topology::{CoordinationOutcome, TransactionalConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What the injection pass did to an auto-coordinated ad-report run.
#[derive(Debug, Clone)]
pub struct AutoCoordReport {
    /// The analysis-derived spec that drove the rewrite.
    pub spec: CoordinationSpec,
    /// Machine-checkable accounting from the rewrite pass.
    pub stats: RewriteStats,
    /// Per-directive summary (which mechanism, how many operators).
    pub summary: InjectionSummary,
}

/// Derive the coordination spec for the ad network running `query`, with
/// the ad servers' campaign punctuations available (the workload always
/// emits them; whether they *suffice* is the analysis's call).
///
/// # Panics
/// Panics only if the bundled query modules stop analyzing — a bug.
#[must_use]
pub fn ad_network_spec(query: ReportQuery) -> CoordinationSpec {
    let (graph, _) = ad_network_graph(query, Some(&["campaign"]));
    CoordinationSpec::derive(&graph, true).expect("ad network graph analyzes")
}

/// The runtime binding for the Report component's seal directive: clicks
/// are `(id, campaign, window)` (campaign in column 1), requests are
/// `(id)` and read the campaign partition `id / ads_per_campaign`.
#[must_use]
pub fn report_seal_binding(sc: &AdScenario) -> SealBinding {
    let ads = sc.workload.ads_per_campaign as i64;
    SealBinding::new(seal_registry_for(&sc.workload), 1, 3).with_query_partition(Arc::new(
        move |t| {
            t.get(0)
                .and_then(Value::as_int)
                .map(|id| Value::Int(id / ads))
        },
    ))
}

/// The injection rules for `sc`: one seal binding for the Report replicas
/// when the spec sealed them, the scenario's sequencer toll when it
/// ordered them.
#[must_use]
pub fn ad_network_rules(sc: &AdScenario, spec: &CoordinationSpec) -> AutoCoordRules {
    let mut rules = AutoCoordRules::new(spec).with_sequencer_service(sc.sequencer_service);
    if matches!(
        spec.directive_for("Report"),
        Some(CoordDirective::Seal { .. })
    ) {
        rules = rules.bind_seal("Report", report_seal_binding(sc));
    }
    rules
}

fn bare(sc: &AdScenario) -> AdScenario {
    AdScenario {
        strategy: StrategyKind::Bare,
        ..sc.clone()
    }
}

/// Everything one auto-coordinated assembly of the ad network produced:
/// the per-replica series and id-tagged response sinks straight from
/// [`crate::adreport::assemble_scenario`], plus the rewrite accounting.
pub struct AdAutoAssembly {
    /// Per-replica cumulative processed-records series.
    pub series: Vec<TimeSeries>,
    /// Per-replica response sinks with their backend instance ids.
    pub responses: Vec<(InstanceId, CollectorSink)>,
    /// What the analysis demanded and what the pass injected.
    pub report: AutoCoordReport,
}

/// Assemble the **bare** ad-network scenario through the auto-coordination
/// rewrite pass onto any backend builder. This is the one assembly the
/// simulator, the parallel executor and every process of a distributed
/// run share; `speculation` selects the speculative seal-gate variant
/// (meaningful on the parallel substrate only, but it must be part of the
/// assembly so all processes agree on the rewritten graph).
pub fn assemble_ad_auto<B: ExecutorBuilder>(
    sc: &AdScenario,
    speculation: bool,
    b: &mut B,
) -> AdAutoAssembly {
    let spec = ad_network_spec(sc.query);
    let sc = bare(sc);
    let rules = ad_network_rules(&sc, &spec).with_speculation(speculation);
    let mut rb = RewritingBuilder::new(b, rules);
    let (series, responses) = crate::adreport::assemble_scenario(&sc, &mut rb);
    let (rules, stats) = rb.finish();
    AdAutoAssembly {
        series,
        responses,
        report: AutoCoordReport {
            summary: rules.summary(),
            spec,
            stats,
        },
    }
}

/// Result of an auto-coordinated ad-network run on any backend.
///
/// On [`BackendSpec::Dist`] the per-replica `series` is empty: those
/// counters live inside the worker processes and only the response sinks
/// are streamed back over the wire.
pub struct AdAutoRun {
    /// Per-replica cumulative processed-records series (empty on dist).
    pub series: Vec<TimeSeries>,
    /// Per-replica response collections.
    pub responses: Vec<CollectorSink>,
    /// Backend-tagged run statistics.
    pub stats: BackendRunStats,
    /// Records each replica was expected to process.
    pub expected_records: u64,
}

impl AdAutoRun {
    /// Did every replica process every record? Always `false` on the
    /// distributed backend, whose series stay in the workers.
    #[must_use]
    pub fn processed_everything(&self) -> bool {
        !self.series.is_empty()
            && self
                .series
                .iter()
                .all(|s| s.total() == self.expected_records)
    }

    /// Do all replicas report identical response sets?
    #[must_use]
    pub fn responses_consistent(&self) -> bool {
        let sets: Vec<_> = self
            .responses
            .iter()
            .map(CollectorSink::message_set)
            .collect();
        sets.windows(2).all(|w| w[0] == w[1])
    }

    /// Total responses across all replicas.
    #[must_use]
    pub fn total_responses(&self) -> usize {
        self.responses.iter().map(CollectorSink::len).sum()
    }
}

/// Run `sc` with analysis-driven coordination on the backend selected by
/// `backend` — the single entry point that replaced the
/// `run_scenario_auto` / `run_scenario_auto_parallel` pair. The bare
/// topology is assembled through the rewrite pass, which injects exactly
/// what [`ad_network_spec`] demands for `sc.query`, then runs on the
/// simulator, the parallel executor, or (via
/// [`crate::dist::dist_registry`]) a fleet of worker processes.
///
/// On [`BackendSpec::Dist`] the spec's `topology`/`params` fields are
/// overwritten with the ad-report registry entry for `sc`; everything
/// else (process count, wire faults, worker command) is honored as given,
/// and the returned report is computed parent-side by probing the same
/// assembly.
///
/// # Panics
/// Panics when a `Par` tuning is invalid, and on any distributed
/// transport failure.
#[must_use]
pub fn run_ad_auto(sc: &AdScenario, backend: &BackendSpec) -> (AdAutoRun, AutoCoordReport) {
    let expected_records = sc.workload.total_entries() as u64;
    match backend {
        BackendSpec::Sim => {
            let mut b = SimBuilder::new(sc.seed);
            let asm = assemble_ad_auto(sc, false, &mut b);
            let stats = b.build().run(None);
            (
                AdAutoRun {
                    series: asm.series,
                    responses: asm.responses.into_iter().map(|(_, s)| s).collect(),
                    stats: BackendRunStats::Sim(stats),
                    expected_records,
                },
                asm.report,
            )
        }
        BackendSpec::Par { workers, tuning } => {
            let mut b = ParBuilder::new(sc.seed)
                .with_workers(*workers)
                .with_tuning(*tuning)
                .expect("valid parallel tuning");
            let asm = assemble_ad_auto(sc, tuning.speculation, &mut b);
            let stats = b.build().run();
            (
                AdAutoRun {
                    series: asm.series,
                    responses: asm.responses.into_iter().map(|(_, s)| s).collect(),
                    stats: BackendRunStats::Par(stats),
                    expected_records,
                },
                asm.report,
            )
        }
        BackendSpec::Dist(d) => {
            // The report comes from probing the identical assembly
            // parent-side; the run itself re-assembles in every process
            // through the registry.
            let mut probe = ProbeBuilder::new();
            let asm = assemble_ad_auto(sc, d.speculation, &mut probe);
            let mut spec = d.clone();
            spec.topology = crate::dist::AD_TOPOLOGY.to_string();
            spec.params = crate::dist::encode_ad_params(sc, true, d.speculation);
            let run =
                run_dist(&spec, &crate::dist::dist_registry()).expect("distributed ad-report run");
            (
                AdAutoRun {
                    series: Vec::new(),
                    responses: run.sinks.into_iter().map(|(_, s)| s).collect(),
                    stats: BackendRunStats::Dist(run.stats),
                    expected_records,
                },
                asm.report,
            )
        }
    }
}

/// Run `sc` on the simulator with analysis-driven coordination.
#[deprecated(note = "use run_ad_auto with BackendSpec::Sim")]
#[must_use]
pub fn run_scenario_auto(sc: &AdScenario) -> (AdRunResult, AutoCoordReport) {
    let (run, report) = run_ad_auto(sc, &BackendSpec::Sim);
    let BackendRunStats::Sim(stats) = run.stats else {
        unreachable!("Sim spec produces Sim stats")
    };
    (
        AdRunResult {
            series: run.series,
            responses: run.responses,
            stats,
            expected_records: run.expected_records,
        },
        report,
    )
}

/// Run `sc` on the multi-worker parallel executor with analysis-driven
/// coordination — the same rewritten graph the simulator runs. When
/// `tuning` enables time-warp speculation, the injected seal gates are the
/// speculative variant, so flagged consumers run ahead of missing
/// punctuations and roll back on violations.
///
/// # Panics
/// Panics when `tuning` is invalid.
#[deprecated(note = "use run_ad_auto with BackendSpec::Par")]
#[must_use]
pub fn run_scenario_auto_parallel(
    sc: &AdScenario,
    workers: usize,
    tuning: ParTuning,
) -> (AdParResult, AutoCoordReport) {
    let (run, report) = run_ad_auto(sc, &BackendSpec::Par { workers, tuning });
    let BackendRunStats::Par(stats) = run.stats else {
        unreachable!("Par spec produces Par stats")
    };
    (
        AdParResult {
            series: run.series,
            responses: run.responses,
            stats,
            expected_records: run.expected_records,
        },
        report,
    )
}

/// The per-replica output digest used by the differential proof: each
/// replica's response multiset in canonical order. Two runs are
/// behaviorally identical iff their digests are equal — delivery order
/// may differ, the answers may not.
#[must_use]
pub fn response_digests(responses: &[CollectorSink]) -> Vec<Vec<Message>> {
    responses
        .iter()
        .map(|sink| {
            let mut msgs = sink.messages();
            msgs.sort();
            msgs
        })
        .collect()
}

/// Derive the coordination spec for the Storm wordcount (grey-box
/// annotations, Section VI-A): `sealed` states whether the tweet stream's
/// batch punctuations are declared to the analysis.
///
/// # Panics
/// Panics only if the bundled wordcount graph stops analyzing — a bug.
#[must_use]
pub fn wordcount_spec(sealed: bool) -> CoordinationSpec {
    let (graph, _) = wordcount_graph(sealed);
    CoordinationSpec::derive(&graph, false).expect("wordcount graph analyzes")
}

/// The transactional-coordination parameters (coordinator service time,
/// channel latency, pending window) implied by a wordcount scenario —
/// shared by every backend's coordinated assembly.
#[must_use]
pub fn wordcount_ordering_config(sc: &WordcountScenario) -> TransactionalConfig {
    TransactionalConfig {
        service_time: sc.coordinator_service,
        channel: blazes_dataflow::channel::ChannelConfig::lan()
            .with_latency(sc.coordinator_latency),
        first_batch: 0,
        max_pending: sc.max_pending,
    }
}

/// Result of an auto-coordinated wordcount run on any backend.
pub struct WordcountAutoRun {
    /// The committed `(word, batch, count)` records.
    pub committed: CollectorSink,
    /// Backend-tagged run statistics.
    pub stats: BackendRunStats,
    /// Tweets the spouts emitted.
    pub tweets: u64,
}

impl WordcountAutoRun {
    /// Final `(word, batch) -> count` table.
    #[must_use]
    pub fn counts(&self) -> BTreeMap<(String, i64), i64> {
        counts_of(&self.committed)
    }
}

/// Shared Sim/Par body of the coordinated wordcount runners: build the
/// plain topology, apply `spec`, assemble on `backend`, run.
fn wordcount_on(
    sc: &WordcountScenario,
    spec: &CoordinationSpec,
    backend: &BackendSpec,
) -> (WordcountAutoRun, CoordinationOutcome) {
    assert!(
        !sc.transactional,
        "auto-coordination replaces the hand-wired transactional flag"
    );
    let (t, committed) = wordcount_topology(sc);
    let (mut exec, outcome) = t
        .build_coordinated_on(spec, &wordcount_ordering_config(sc), backend)
        .expect("spec fits the wordcount topology");
    let stats = exec.run();
    (
        WordcountAutoRun {
            committed,
            stats,
            tweets: (sc.spouts * sc.workload.tweets_per_instance()) as u64,
        },
        outcome,
    )
}

/// Run the wordcount with analysis-driven coordination on the backend
/// selected by `backend` — the single entry point that replaced the
/// `run_wordcount_coordinated` / `run_wordcount_coordinated_parallel`
/// pair. The spec is derived from `sealed` (whether the tweet stream's
/// batch punctuations are declared to the analysis) via
/// [`wordcount_spec`], so every process of a distributed run can
/// re-derive the identical spec from one bit.
///
/// On [`BackendSpec::Dist`] the spec's `topology`/`params` are overwritten
/// with the wordcount registry entry and the coordination outcome is
/// computed parent-side by probing the same coordinated assembly.
///
/// # Panics
/// Panics when `sc.transactional` is set (coordination comes from the
/// analysis here), when the spec does not fit the topology, when a `Par`
/// tuning is invalid, and on any distributed transport failure.
#[must_use]
pub fn run_wordcount_auto(
    sc: &WordcountScenario,
    sealed: bool,
    backend: &BackendSpec,
) -> (WordcountAutoRun, CoordinationOutcome) {
    let spec = wordcount_spec(sealed);
    match backend {
        BackendSpec::Sim | BackendSpec::Par { .. } => wordcount_on(sc, &spec, backend),
        BackendSpec::Dist(d) => {
            assert!(
                !sc.transactional,
                "auto-coordination replaces the hand-wired transactional flag"
            );
            // Parent-side outcome from probing the coordinated assembly.
            let (mut t, _local_sink) = wordcount_topology(sc);
            let mut outcome = t
                .apply_coordination(&spec, &wordcount_ordering_config(sc))
                .expect("spec fits the wordcount topology");
            let mut probe = ProbeBuilder::new();
            let mut rb = RewritingBuilder::new(&mut probe, NoopPass);
            let _ = t.assemble(&mut rb);
            outcome.rewrite = rb.finish().1;
            let mut spec_d = d.clone();
            spec_d.topology = crate::dist::WORDCOUNT_TOPOLOGY.to_string();
            spec_d.params = crate::dist::encode_wordcount_params(sc, sealed);
            let mut run = run_dist(&spec_d, &crate::dist::dist_registry())
                .expect("distributed wordcount run");
            let committed = match run.sinks.pop() {
                Some((_, sink)) => sink,
                None => CollectorSink::new(),
            };
            (
                WordcountAutoRun {
                    committed,
                    stats: BackendRunStats::Dist(run.stats),
                    tweets: (sc.spouts * sc.workload.tweets_per_instance()) as u64,
                },
                outcome,
            )
        }
    }
}

/// Run the wordcount with analysis-driven coordination on the simulator:
/// the topology is built plain (no hand-picked transactional flag) and
/// [`TopologyBuilder::build_coordinated`] applies `spec`.
///
/// # Panics
/// Panics when `sc.transactional` is set (coordination comes from the
/// spec here) or when the spec does not fit the topology.
#[deprecated(note = "use run_wordcount_auto with BackendSpec::Sim")]
#[must_use]
pub fn run_wordcount_coordinated(
    sc: &WordcountScenario,
    spec: &CoordinationSpec,
) -> (WordcountResult, CoordinationOutcome) {
    let (run, outcome) = wordcount_on(sc, spec, &BackendSpec::Sim);
    let BackendRunStats::Sim(stats) = run.stats else {
        unreachable!("Sim spec produces Sim stats")
    };
    (
        WordcountResult {
            stats,
            committed: run.committed,
            tweets: run.tweets,
        },
        outcome,
    )
}

/// Run the wordcount with analysis-driven coordination on the parallel
/// executor — the same rewritten graph, on `workers` OS threads.
///
/// # Panics
/// As [`run_wordcount_coordinated`], plus invalid `tuning`.
#[deprecated(note = "use run_wordcount_auto with BackendSpec::Par")]
#[must_use]
pub fn run_wordcount_coordinated_parallel(
    sc: &WordcountScenario,
    spec: &CoordinationSpec,
    workers: usize,
    tuning: ParTuning,
) -> (WordcountParResult, CoordinationOutcome) {
    let (run, outcome) = wordcount_on(sc, spec, &BackendSpec::Par { workers, tuning });
    let BackendRunStats::Par(stats) = run.stats else {
        unreachable!("Par spec produces Par stats")
    };
    (
        WordcountParResult {
            stats,
            committed: run.committed,
            tweets: run.tweets,
        },
        outcome,
    )
}

// `TopologyBuilder` appears in doc links above.
#[allow(unused_imports)]
use blazes_storm::topology::TopologyBuilder;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CampaignPlacement, ClickWorkload, TweetWorkload};

    fn small_scenario(query: ReportQuery) -> AdScenario {
        AdScenario {
            workload: ClickWorkload {
                ad_servers: 3,
                entries_per_server: 60,
                batch_size: 20,
                sleep_between_batches: 50_000,
                entry_interval: 200,
                campaigns: 6,
                ads_per_campaign: 4,
                placement: CampaignPlacement::Spread,
                seed: 5,
            },
            query,
            replicas: 3,
            requests: 6,
            tick_every: 10,
            seed: 21,
            ..AdScenario::default()
        }
    }

    #[test]
    fn analysis_picks_the_mechanism_per_query() {
        // CAMPAIGN: campaign seals are compatible -> seal protocol.
        let campaign = ad_network_spec(ReportQuery::Campaign);
        assert!(matches!(
            campaign.directive_for("Report"),
            Some(CoordDirective::Seal { .. })
        ));
        // POOR: seals incompatible with the id partition -> ordering.
        let poor = ad_network_spec(ReportQuery::Poor);
        assert!(matches!(
            poor.directive_for("Report"),
            Some(CoordDirective::Order { .. })
        ));
        // THRESH: confluent -> nothing at all.
        assert!(ad_network_spec(ReportQuery::Thresh).is_empty());
    }

    #[test]
    fn auto_sealed_campaign_processes_everything_and_agrees() {
        let (res, report) = run_ad_auto(&small_scenario(ReportQuery::Campaign), &BackendSpec::Sim);
        assert!(report.stats.injected_operators > 0, "gates were injected");
        assert_eq!(
            report.stats.injected_operators, 3,
            "one seal gate per replica: {report:?}"
        );
        for s in &res.series {
            assert_eq!(s.total(), 180, "all partitions released");
        }
        assert!(res.responses_consistent(), "replicas agree");
        assert!(res.total_responses() > 0, "queries were answered");
    }

    #[test]
    fn auto_ordered_poor_processes_everything_and_agrees() {
        let (res, report) = run_ad_auto(&small_scenario(ReportQuery::Poor), &BackendSpec::Sim);
        assert_eq!(
            report.stats.injected_operators, 1,
            "one shared sequencer: {report:?}"
        );
        for s in &res.series {
            assert_eq!(s.total(), 180);
        }
        assert!(res.responses_consistent(), "total order implies agreement");
    }

    #[test]
    fn auto_thresh_is_rewrite_free() {
        let (res, report) = run_ad_auto(&small_scenario(ReportQuery::Thresh), &BackendSpec::Sim);
        assert!(report.stats.is_untouched(), "{report:?}");
        for s in &res.series {
            assert_eq!(s.total(), 180);
        }
    }

    #[test]
    fn auto_parallel_campaign_is_deterministic_across_workers() {
        let sc = small_scenario(ReportQuery::Campaign);
        let mut digests = Vec::new();
        for workers in [1usize, 3] {
            let (res, _) = run_ad_auto(&sc, &BackendSpec::par(workers));
            assert!(res.processed_everything());
            digests.push(response_digests(&res.responses));
        }
        assert_eq!(digests[0], digests[1], "digests differ across workers");
        assert!(!digests[0].iter().all(Vec::is_empty), "responses exist");
    }

    fn wc_scenario() -> WordcountScenario {
        WordcountScenario {
            workers: 3,
            workload: TweetWorkload {
                vocabulary: 50,
                batches: 5,
                tweets_per_batch: 10,
                ..TweetWorkload::default()
            },
            seed: 9,
            ..WordcountScenario::default()
        }
    }

    #[test]
    fn coordinated_wordcount_sealed_is_rewrite_free_and_exact() {
        let sc = wc_scenario();
        let baseline = crate::wordcount::run_wordcount(&sc);
        let (auto, outcome) = run_wordcount_auto(&sc, true, &BackendSpec::Sim);
        assert!(outcome.is_rewrite_free(), "{outcome:?}");
        assert_eq!(outcome.seal_native.len(), 1, "{outcome:?}");
        assert_eq!(auto.counts(), baseline.counts());
    }

    #[test]
    fn coordinated_wordcount_unsealed_orders_the_count_bolt() {
        let sc = wc_scenario();
        let baseline = crate::wordcount::run_wordcount(&sc);
        let (auto, outcome) = run_wordcount_auto(&sc, false, &BackendSpec::Sim);
        assert_eq!(outcome.ordered, vec!["Count".to_string()]);
        assert_eq!(auto.counts(), baseline.counts());
        assert!(
            auto.stats.as_sim().expect("sim run").end_time > baseline.stats.end_time,
            "ordering costs virtual time"
        );
    }

    #[test]
    fn coordinated_wordcount_parallel_matches_simulator() {
        let sc = wc_scenario();
        let (sim, _) = run_wordcount_auto(&sc, true, &BackendSpec::Sim);
        let (par, outcome) = run_wordcount_auto(&sc, true, &BackendSpec::par(4));
        assert!(outcome.is_rewrite_free());
        assert_eq!(par.counts(), sim.counts());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_match_the_unified_runner() {
        let sc = small_scenario(ReportQuery::Campaign);
        let (new_run, _) = run_ad_auto(&sc, &BackendSpec::Sim);
        let (old_run, _) = run_scenario_auto(&sc);
        assert_eq!(
            response_digests(&old_run.responses),
            response_digests(&new_run.responses)
        );
        let (old_par, _) = run_scenario_auto_parallel(&sc, 2, ParTuning::default());
        assert_eq!(
            response_digests(&old_par.responses),
            response_digests(&new_run.responses)
        );
        let wc = wc_scenario();
        let spec = wordcount_spec(true);
        let (new_wc, _) = run_wordcount_auto(&wc, true, &BackendSpec::Sim);
        let (old_wc, _) = run_wordcount_coordinated(&wc, &spec);
        assert_eq!(old_wc.counts(), new_wc.counts());
        let (old_wc_par, _) =
            run_wordcount_coordinated_parallel(&wc, &spec, 3, ParTuning::default());
        assert_eq!(old_wc_par.counts(), new_wc.counts());
    }
}
