//! Auto-coordinated variants of the case studies: the full
//! annotate→analyze→inject pipeline, end to end.
//!
//! The hand-wired deployments in [`crate::adreport`] and
//! [`crate::wordcount`] pick their coordination manually. Here the
//! *analysis* picks it:
//!
//! * [`ad_network_spec`] derives the coordination spec for the ad network
//!   running a given query (white-box Bloom annotations, campaign
//!   punctuations available). [`run_scenario_auto`] /
//!   [`run_scenario_auto_parallel`] then assemble the **bare** topology —
//!   no seal managers, no sequencer — and let
//!   [`blazes_autocoord::AutoCoordRules`] rewrite it: CAMPAIGN gets seal
//!   gates, POOR gets an ordering service, THRESH gets nothing.
//! * [`wordcount_spec`] does the same for the Storm wordcount through the
//!   grey-box adapter; [`run_wordcount_coordinated`] /
//!   [`run_wordcount_coordinated_parallel`] thread it through
//!   [`TopologyBuilder::build_coordinated`], where sealing maps onto the
//!   engine-native punctuation protocol (zero injected operators — the
//!   minimality proof) and ordering onto transactional commits.

use crate::adreport::{seal_registry_for, AdParResult, AdRunResult, AdScenario, StrategyKind};
use crate::casestudy::{ad_network_graph, wordcount_graph};
use crate::queries::ReportQuery;
use crate::wordcount::{
    wordcount_topology, WordcountParResult, WordcountResult, WordcountScenario,
};
use blazes_autocoord::{AutoCoordRules, InjectionSummary, SealBinding};
use blazes_core::placement::{CoordDirective, CoordinationSpec};
use blazes_dataflow::backend::{RewriteStats, RewritingBuilder};
use blazes_dataflow::message::Message;
use blazes_dataflow::par::{ParBuilder, ParTuning};
use blazes_dataflow::sim::SimBuilder;
use blazes_dataflow::sinks::CollectorSink;
use blazes_dataflow::value::Value;
use blazes_storm::topology::{CoordinationOutcome, TransactionalConfig};
use std::sync::Arc;

/// What the injection pass did to an auto-coordinated ad-report run.
#[derive(Debug, Clone)]
pub struct AutoCoordReport {
    /// The analysis-derived spec that drove the rewrite.
    pub spec: CoordinationSpec,
    /// Machine-checkable accounting from the rewrite pass.
    pub stats: RewriteStats,
    /// Per-directive summary (which mechanism, how many operators).
    pub summary: InjectionSummary,
}

/// Derive the coordination spec for the ad network running `query`, with
/// the ad servers' campaign punctuations available (the workload always
/// emits them; whether they *suffice* is the analysis's call).
///
/// # Panics
/// Panics only if the bundled query modules stop analyzing — a bug.
#[must_use]
pub fn ad_network_spec(query: ReportQuery) -> CoordinationSpec {
    let (graph, _) = ad_network_graph(query, Some(&["campaign"]));
    CoordinationSpec::derive(&graph, true).expect("ad network graph analyzes")
}

/// The runtime binding for the Report component's seal directive: clicks
/// are `(id, campaign, window)` (campaign in column 1), requests are
/// `(id)` and read the campaign partition `id / ads_per_campaign`.
#[must_use]
pub fn report_seal_binding(sc: &AdScenario) -> SealBinding {
    let ads = sc.workload.ads_per_campaign as i64;
    SealBinding::new(seal_registry_for(&sc.workload), 1, 3).with_query_partition(Arc::new(
        move |t| {
            t.get(0)
                .and_then(Value::as_int)
                .map(|id| Value::Int(id / ads))
        },
    ))
}

/// The injection rules for `sc`: one seal binding for the Report replicas
/// when the spec sealed them, the scenario's sequencer toll when it
/// ordered them.
#[must_use]
pub fn ad_network_rules(sc: &AdScenario, spec: &CoordinationSpec) -> AutoCoordRules {
    let mut rules = AutoCoordRules::new(spec).with_sequencer_service(sc.sequencer_service);
    if matches!(
        spec.directive_for("Report"),
        Some(CoordDirective::Seal { .. })
    ) {
        rules = rules.bind_seal("Report", report_seal_binding(sc));
    }
    rules
}

fn bare(sc: &AdScenario) -> AdScenario {
    AdScenario {
        strategy: StrategyKind::Bare,
        ..sc.clone()
    }
}

/// Run `sc` on the simulator with analysis-driven coordination: the bare
/// topology is assembled through the rewrite pass, which injects exactly
/// what [`ad_network_spec`] demands for `sc.query`.
#[must_use]
pub fn run_scenario_auto(sc: &AdScenario) -> (AdRunResult, AutoCoordReport) {
    let spec = ad_network_spec(sc.query);
    let sc = bare(sc);
    let mut b = SimBuilder::new(sc.seed);
    let mut rb = RewritingBuilder::new(&mut b, ad_network_rules(&sc, &spec));
    let (series, responses) = crate::adreport::assemble_scenario(&sc, &mut rb);
    let (rules, stats) = rb.finish();
    let mut sim = b.build();
    let run_stats = sim.run(None);
    (
        AdRunResult {
            series,
            responses,
            stats: run_stats,
            expected_records: sc.workload.total_entries() as u64,
        },
        AutoCoordReport {
            summary: rules.summary(),
            spec,
            stats,
        },
    )
}

/// Run `sc` on the multi-worker parallel executor with analysis-driven
/// coordination — the same rewritten graph the simulator runs. When
/// `tuning` enables time-warp speculation, the injected seal gates are the
/// speculative variant, so flagged consumers run ahead of missing
/// punctuations and roll back on violations.
///
/// # Panics
/// Panics when `tuning` is invalid.
#[must_use]
pub fn run_scenario_auto_parallel(
    sc: &AdScenario,
    workers: usize,
    tuning: ParTuning,
) -> (AdParResult, AutoCoordReport) {
    let spec = ad_network_spec(sc.query);
    let sc = bare(sc);
    let speculation = tuning.speculation;
    let mut b = ParBuilder::new(sc.seed)
        .with_workers(workers)
        .with_tuning(tuning)
        .expect("valid parallel tuning");
    let rules = ad_network_rules(&sc, &spec).with_speculation(speculation);
    let mut rb = RewritingBuilder::new(&mut b, rules);
    let (series, responses) = crate::adreport::assemble_scenario(&sc, &mut rb);
    let (rules, stats) = rb.finish();
    let run_stats = b.build().run();
    (
        AdParResult {
            series,
            responses,
            stats: run_stats,
            expected_records: sc.workload.total_entries() as u64,
        },
        AutoCoordReport {
            summary: rules.summary(),
            spec,
            stats,
        },
    )
}

/// The per-replica output digest used by the differential proof: each
/// replica's response multiset in canonical order. Two runs are
/// behaviorally identical iff their digests are equal — delivery order
/// may differ, the answers may not.
#[must_use]
pub fn response_digests(responses: &[CollectorSink]) -> Vec<Vec<Message>> {
    responses
        .iter()
        .map(|sink| {
            let mut msgs = sink.messages();
            msgs.sort();
            msgs
        })
        .collect()
}

/// Derive the coordination spec for the Storm wordcount (grey-box
/// annotations, Section VI-A): `sealed` states whether the tweet stream's
/// batch punctuations are declared to the analysis.
///
/// # Panics
/// Panics only if the bundled wordcount graph stops analyzing — a bug.
#[must_use]
pub fn wordcount_spec(sealed: bool) -> CoordinationSpec {
    let (graph, _) = wordcount_graph(sealed);
    CoordinationSpec::derive(&graph, false).expect("wordcount graph analyzes")
}

fn wordcount_ordering_config(sc: &WordcountScenario) -> TransactionalConfig {
    TransactionalConfig {
        service_time: sc.coordinator_service,
        channel: blazes_dataflow::channel::ChannelConfig::lan()
            .with_latency(sc.coordinator_latency),
        first_batch: 0,
        max_pending: sc.max_pending,
    }
}

/// Run the wordcount with analysis-driven coordination on the simulator:
/// the topology is built plain (no hand-picked transactional flag) and
/// [`TopologyBuilder::build_coordinated`] applies `spec`.
///
/// # Panics
/// Panics when `sc.transactional` is set (coordination comes from the
/// spec here) or when the spec does not fit the topology.
#[must_use]
pub fn run_wordcount_coordinated(
    sc: &WordcountScenario,
    spec: &CoordinationSpec,
) -> (WordcountResult, CoordinationOutcome) {
    assert!(
        !sc.transactional,
        "auto-coordination replaces the hand-wired transactional flag"
    );
    let (t, committed) = wordcount_topology(sc);
    let (mut run, outcome) = t
        .build_coordinated(spec, &wordcount_ordering_config(sc))
        .expect("spec fits the wordcount topology");
    let stats = run.run(None);
    (
        WordcountResult {
            stats,
            committed,
            tweets: (sc.spouts * sc.workload.tweets_per_instance()) as u64,
        },
        outcome,
    )
}

/// Run the wordcount with analysis-driven coordination on the parallel
/// executor — the same rewritten graph, on `workers` OS threads.
///
/// # Panics
/// As [`run_wordcount_coordinated`], plus invalid `tuning`.
#[must_use]
pub fn run_wordcount_coordinated_parallel(
    sc: &WordcountScenario,
    spec: &CoordinationSpec,
    workers: usize,
    tuning: ParTuning,
) -> (WordcountParResult, CoordinationOutcome) {
    assert!(
        !sc.transactional,
        "auto-coordination replaces the hand-wired transactional flag"
    );
    let (t, committed) = wordcount_topology(sc);
    let (mut run, outcome) = t
        .build_coordinated_parallel(spec, &wordcount_ordering_config(sc), workers, tuning)
        .expect("spec fits the wordcount topology");
    let stats = run.run();
    (
        WordcountParResult {
            stats,
            committed,
            tweets: (sc.spouts * sc.workload.tweets_per_instance()) as u64,
        },
        outcome,
    )
}

// `TopologyBuilder` appears in doc links above.
#[allow(unused_imports)]
use blazes_storm::topology::TopologyBuilder;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CampaignPlacement, ClickWorkload, TweetWorkload};

    fn small_scenario(query: ReportQuery) -> AdScenario {
        AdScenario {
            workload: ClickWorkload {
                ad_servers: 3,
                entries_per_server: 60,
                batch_size: 20,
                sleep_between_batches: 50_000,
                entry_interval: 200,
                campaigns: 6,
                ads_per_campaign: 4,
                placement: CampaignPlacement::Spread,
                seed: 5,
            },
            query,
            replicas: 3,
            requests: 6,
            tick_every: 10,
            seed: 21,
            ..AdScenario::default()
        }
    }

    #[test]
    fn analysis_picks_the_mechanism_per_query() {
        // CAMPAIGN: campaign seals are compatible -> seal protocol.
        let campaign = ad_network_spec(ReportQuery::Campaign);
        assert!(matches!(
            campaign.directive_for("Report"),
            Some(CoordDirective::Seal { .. })
        ));
        // POOR: seals incompatible with the id partition -> ordering.
        let poor = ad_network_spec(ReportQuery::Poor);
        assert!(matches!(
            poor.directive_for("Report"),
            Some(CoordDirective::Order { .. })
        ));
        // THRESH: confluent -> nothing at all.
        assert!(ad_network_spec(ReportQuery::Thresh).is_empty());
    }

    #[test]
    fn auto_sealed_campaign_processes_everything_and_agrees() {
        let (res, report) = run_scenario_auto(&small_scenario(ReportQuery::Campaign));
        assert!(report.stats.injected_operators > 0, "gates were injected");
        assert_eq!(
            report.stats.injected_operators, 3,
            "one seal gate per replica: {report:?}"
        );
        for s in &res.series {
            assert_eq!(s.total(), 180, "all partitions released");
        }
        assert!(res.responses_consistent(), "replicas agree");
        assert!(res.total_responses() > 0, "queries were answered");
    }

    #[test]
    fn auto_ordered_poor_processes_everything_and_agrees() {
        let (res, report) = run_scenario_auto(&small_scenario(ReportQuery::Poor));
        assert_eq!(
            report.stats.injected_operators, 1,
            "one shared sequencer: {report:?}"
        );
        for s in &res.series {
            assert_eq!(s.total(), 180);
        }
        assert!(res.responses_consistent(), "total order implies agreement");
    }

    #[test]
    fn auto_thresh_is_rewrite_free() {
        let (res, report) = run_scenario_auto(&small_scenario(ReportQuery::Thresh));
        assert!(report.stats.is_untouched(), "{report:?}");
        for s in &res.series {
            assert_eq!(s.total(), 180);
        }
    }

    #[test]
    fn auto_parallel_campaign_is_deterministic_across_workers() {
        let sc = small_scenario(ReportQuery::Campaign);
        let mut digests = Vec::new();
        for workers in [1usize, 3] {
            let (res, _) = run_scenario_auto_parallel(&sc, workers, ParTuning::default());
            assert!(res.processed_everything());
            digests.push(response_digests(&res.responses));
        }
        assert_eq!(digests[0], digests[1], "digests differ across workers");
        assert!(!digests[0].iter().all(Vec::is_empty), "responses exist");
    }

    fn wc_scenario() -> WordcountScenario {
        WordcountScenario {
            workers: 3,
            workload: TweetWorkload {
                vocabulary: 50,
                batches: 5,
                tweets_per_batch: 10,
                ..TweetWorkload::default()
            },
            seed: 9,
            ..WordcountScenario::default()
        }
    }

    #[test]
    fn coordinated_wordcount_sealed_is_rewrite_free_and_exact() {
        let sc = wc_scenario();
        let baseline = crate::wordcount::run_wordcount(&sc);
        let (auto, outcome) = run_wordcount_coordinated(&sc, &wordcount_spec(true));
        assert!(outcome.is_rewrite_free(), "{outcome:?}");
        assert_eq!(outcome.seal_native.len(), 1, "{outcome:?}");
        assert_eq!(auto.counts(), baseline.counts());
    }

    #[test]
    fn coordinated_wordcount_unsealed_orders_the_count_bolt() {
        let sc = wc_scenario();
        let spec = wordcount_spec(false);
        let baseline = crate::wordcount::run_wordcount(&sc);
        let (auto, outcome) = run_wordcount_coordinated(&sc, &spec);
        assert_eq!(outcome.ordered, vec!["Count".to_string()]);
        assert_eq!(auto.counts(), baseline.counts());
        assert!(
            auto.stats.end_time > baseline.stats.end_time,
            "ordering costs virtual time"
        );
    }

    #[test]
    fn coordinated_wordcount_parallel_matches_simulator() {
        let sc = wc_scenario();
        let spec = wordcount_spec(true);
        let (sim, _) = run_wordcount_coordinated(&sc, &spec);
        let (par, outcome) =
            run_wordcount_coordinated_parallel(&sc, &spec, 4, ParTuning::default());
        assert!(outcome.is_rewrite_free());
        assert_eq!(par.counts(), sim.counts());
    }
}
