//! Synthetic workload generators.
//!
//! Substitutes for the paper's live inputs: the Twitter firehose becomes a
//! Zipf-distributed tweet stream; the ad servers' click logs become
//! synthetic logs with controllable campaign partitioning (the
//! "independent" vs "spread" placements of Section VIII-B3).

use blazes_dataflow::sim::Time;
use blazes_dataflow::value::{Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf sampler over ranks `0..n` with exponent `s`, via inverse-CDF
/// table lookup (we avoid a `rand_distr` dependency).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (s=1.0 is classic
    /// Zipf).
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Configuration for the tweet workload feeding the wordcount topology.
#[derive(Debug, Clone)]
pub struct TweetWorkload {
    /// Vocabulary size (distinct words).
    pub vocabulary: usize,
    /// Zipf exponent for word popularity.
    pub zipf_exponent: f64,
    /// Words per tweet.
    pub words_per_tweet: usize,
    /// Tweets per batch *per spout instance*.
    pub tweets_per_batch: usize,
    /// Number of batches.
    pub batches: usize,
    /// Virtual time between successive tweets from one spout instance.
    pub tweet_interval: Time,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TweetWorkload {
    fn default() -> Self {
        TweetWorkload {
            vocabulary: 1_000,
            zipf_exponent: 1.1,
            words_per_tweet: 5,
            tweets_per_batch: 20,
            batches: 10,
            tweet_interval: 100,
            seed: 7,
        }
    }
}

impl TweetWorkload {
    /// Generate one spout instance's schedule: `(time, (text, batch))`
    /// tweet tuples, in batch order. Batch boundaries are *not* included —
    /// the caller appends seal punctuations where its topology needs them.
    #[must_use]
    pub fn generate(&self, spout_instance: usize) -> Vec<(Time, Tuple)> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (spout_instance as u64).wrapping_mul(0x9e37_79b9));
        let zipf = Zipf::new(self.vocabulary, self.zipf_exponent);
        let mut out = Vec::with_capacity(self.batches * self.tweets_per_batch);
        let mut t: Time = 0;
        for batch in 0..self.batches {
            for _ in 0..self.tweets_per_batch {
                let words: Vec<String> = (0..self.words_per_tweet)
                    .map(|_| format!("w{}", zipf.sample(&mut rng)))
                    .collect();
                out.push((
                    t,
                    Tuple(vec![Value::Str(words.join(" ")), Value::Int(batch as i64)]),
                ));
                t += self.tweet_interval;
            }
        }
        out
    }

    /// Total tweets per spout instance.
    #[must_use]
    pub fn tweets_per_instance(&self) -> usize {
        self.batches * self.tweets_per_batch
    }
}

/// How campaigns are placed across ad servers (paper Section VIII-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPlacement {
    /// Each campaign is mastered at exactly one ad server ("Independent
    /// seal"): server `campaign % n` produces all of that campaign's
    /// clicks.
    Independent,
    /// Every ad server produces clicks for every campaign ("Seal"): the
    /// non-independent placement that forces unanimous votes.
    Spread,
}

/// Configuration for the ad click-log workload.
#[derive(Debug, Clone)]
pub struct ClickWorkload {
    /// Number of ad servers.
    pub ad_servers: usize,
    /// Log entries generated per ad server (the paper uses 1000).
    pub entries_per_server: usize,
    /// Entries dispatched back-to-back before sleeping (the paper uses 50).
    pub batch_size: usize,
    /// Virtual sleep between bursts.
    pub sleep_between_batches: Time,
    /// Virtual gap between entries inside a burst.
    pub entry_interval: Time,
    /// Number of distinct campaigns.
    pub campaigns: usize,
    /// Distinct ads (ids) per campaign.
    pub ads_per_campaign: usize,
    /// Campaign placement across servers.
    pub placement: CampaignPlacement,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClickWorkload {
    fn default() -> Self {
        ClickWorkload {
            ad_servers: 5,
            entries_per_server: 1_000,
            batch_size: 50,
            sleep_between_batches: 500_000, // 0.5 s
            entry_interval: 200,
            campaigns: 20,
            ads_per_campaign: 10,
            placement: CampaignPlacement::Spread,
            seed: 11,
        }
    }
}

/// One ad server's generated log: click tuples plus the seal punctuation
/// schedule.
#[derive(Debug, Clone)]
pub struct AdServerLog {
    /// `(time, (id, campaign, window))` click entries.
    pub clicks: Vec<(Time, Tuple)>,
    /// `(time, campaign)` seals: the server promises no further records for
    /// `campaign` from `time` on. Campaigns are produced in contiguous
    /// segments, so seals are spread through the run (temporal locality, as
    /// the paper's Section III-C assumes).
    pub seals: Vec<(Time, i64)>,
    /// Virtual time at which the last entry is dispatched.
    pub end_time: Time,
}

impl ClickWorkload {
    /// Campaigns produced by `server` under the configured placement, in
    /// the order the server works through them.
    ///
    /// Under [`CampaignPlacement::Spread`], servers iterate the shared
    /// campaign list *rotated* by their index: ad content is placed close
    /// to consumers, so each server is busy with different campaigns at any
    /// moment. This is the paper's "coordination locality" conflict — a
    /// campaign's unanimous seal completes only when the *last* producer
    /// finishes its segment, which is what produces Figure 14's step shape.
    #[must_use]
    pub fn campaigns_of(&self, server: usize) -> Vec<i64> {
        match self.placement {
            CampaignPlacement::Independent => (0..self.campaigns)
                .filter(|c| c % self.ad_servers == server)
                .map(|c| c as i64)
                .collect(),
            CampaignPlacement::Spread => {
                let offset = server * self.campaigns / self.ad_servers.max(1);
                (0..self.campaigns)
                    .map(|i| ((i + offset) % self.campaigns) as i64)
                    .collect()
            }
        }
    }

    /// Generate the log of one ad server.
    ///
    /// The server works through its campaigns in contiguous segments
    /// (campaign lifetimes have temporal locality) and seals each campaign
    /// immediately after its segment ends.
    #[must_use]
    pub fn generate(&self, server: usize) -> AdServerLog {
        assert!(server < self.ad_servers);
        let mut rng = StdRng::seed_from_u64(self.seed ^ (server as u64).wrapping_mul(0x517c_c1b7));
        let my_campaigns = self.campaigns_of(server);
        let per_campaign = (self.entries_per_server / my_campaigns.len().max(1)).max(1);
        let mut clicks = Vec::with_capacity(self.entries_per_server);
        let mut seals = Vec::with_capacity(my_campaigns.len());
        let mut t: Time = 0;
        let mut i = 0usize;
        for (ci, &campaign) in my_campaigns.iter().enumerate() {
            let count = if ci + 1 == my_campaigns.len() {
                self.entries_per_server - i // remainder goes to the last one
            } else {
                per_campaign
            };
            for _ in 0..count {
                if i > 0 && i.is_multiple_of(self.batch_size) {
                    t += self.sleep_between_batches;
                }
                let ad = rng.random_range(0..self.ads_per_campaign as i64);
                let id = campaign * self.ads_per_campaign as i64 + ad;
                let window = (t / 1_000_000) as i64; // 1-second windows
                clicks.push((
                    t,
                    Tuple(vec![
                        Value::Int(id),
                        Value::Int(campaign),
                        Value::Int(window),
                    ]),
                ));
                t += self.entry_interval;
                i += 1;
            }
            seals.push((t, campaign));
        }
        AdServerLog {
            clicks,
            seals,
            end_time: t,
        }
    }

    /// Total click records across all servers.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.ad_servers * self.entries_per_server
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 must dominate rank 10");
        assert!(counts[0] > 1_000, "rank 0 should take >10% of mass");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn tweets_have_batch_structure() {
        let w = TweetWorkload {
            batches: 3,
            tweets_per_batch: 4,
            ..TweetWorkload::default()
        };
        let sched = w.generate(0);
        assert_eq!(sched.len(), 12);
        let batches: Vec<i64> = sched
            .iter()
            .map(|(_, t)| t.get(1).and_then(Value::as_int).unwrap())
            .collect();
        assert_eq!(batches.iter().filter(|&&b| b == 0).count(), 4);
        assert!(batches.windows(2).all(|w| w[0] <= w[1]), "batch-ordered");
    }

    #[test]
    fn tweet_generation_is_deterministic_per_seed() {
        let w = TweetWorkload::default();
        assert_eq!(w.generate(0), w.generate(0));
        assert_ne!(w.generate(0), w.generate(1), "instances differ");
    }

    #[test]
    fn independent_placement_partitions_campaigns() {
        let w = ClickWorkload {
            ad_servers: 5,
            campaigns: 20,
            placement: CampaignPlacement::Independent,
            ..ClickWorkload::default()
        };
        let mut all: Vec<i64> = Vec::new();
        for s in 0..5 {
            let mine = w.campaigns_of(s);
            assert_eq!(mine.len(), 4);
            all.extend(mine);
        }
        all.sort_unstable();
        assert_eq!(all, (0..20i64).collect::<Vec<_>>(), "exact partition");
    }

    #[test]
    fn spread_placement_shares_all_campaigns() {
        let w = ClickWorkload {
            placement: CampaignPlacement::Spread,
            ..ClickWorkload::default()
        };
        // Same campaign *set* for every server, rotated starting points.
        let mut a = w.campaigns_of(0);
        let mut b = w.campaigns_of(1);
        assert_ne!(a, b, "servers start at different campaigns");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a.len(), w.campaigns);
    }

    #[test]
    fn click_log_respects_batch_sleeps() {
        let w = ClickWorkload {
            entries_per_server: 100,
            batch_size: 50,
            sleep_between_batches: 1_000_000,
            entry_interval: 100,
            ..ClickWorkload::default()
        };
        let log = w.generate(0);
        assert_eq!(log.clicks.len(), 100);
        let t49 = log.clicks[49].0;
        let t50 = log.clicks[50].0;
        assert!(t50 - t49 >= 1_000_000, "sleep between bursts");
    }

    #[test]
    fn clicks_only_contain_my_campaigns() {
        let w = ClickWorkload {
            placement: CampaignPlacement::Independent,
            ..ClickWorkload::default()
        };
        let log = w.generate(2);
        let mine = w.campaigns_of(2);
        for (_, click) in &log.clicks {
            let c = click.get(1).and_then(Value::as_int).unwrap();
            assert!(mine.contains(&c));
        }
        let sealed: Vec<i64> = log.seals.iter().map(|(_, c)| *c).collect();
        assert_eq!(sealed, mine);
    }

    #[test]
    fn seals_are_spread_through_the_run() {
        let w = ClickWorkload {
            placement: CampaignPlacement::Independent,
            ..ClickWorkload::default()
        };
        let log = w.generate(0);
        assert!(log.seals.len() >= 2);
        // The first campaign seals well before the log ends.
        let (first_seal, _) = log.seals[0];
        assert!(
            first_seal < log.end_time / 2,
            "first seal at {first_seal}, log ends {}",
            log.end_time
        );
        // Seal times are nondecreasing and every click of a campaign
        // precedes its seal.
        for w2 in log.seals.windows(2) {
            assert!(w2[0].0 <= w2[1].0);
        }
        for (t, click) in &log.clicks {
            let c = click.get(1).and_then(Value::as_int).unwrap();
            let (seal_t, _) = log.seals.iter().find(|(_, sc)| *sc == c).unwrap();
            assert!(
                t < seal_t,
                "click at {t} after its campaign sealed at {seal_t}"
            );
        }
    }

    #[test]
    fn id_encodes_campaign() {
        let w = ClickWorkload::default();
        let log = w.generate(0);
        for (_, click) in &log.clicks {
            let id = click.get(0).and_then(Value::as_int).unwrap();
            let c = click.get(1).and_then(Value::as_int).unwrap();
            assert_eq!(id / w.ads_per_campaign as i64, c, "id determines campaign");
        }
    }
}
