//! Distributed deployments of the case studies.
//!
//! The distributed backend cannot ship component closures across the
//! process boundary, so every process re-assembles the topology from a
//! *name* plus a *parameter string* (see
//! [`blazes_dataflow::dist::Registry`]). This module provides that
//! registry for the bundled case studies — the auto-coordinated ad
//! network and the Storm wordcount — together with the exact, line-based
//! `key=value` codecs that round-trip their scenario structs through the
//! plan frame. Floating-point fields travel as IEEE-754 bit patterns
//! (`f64::to_bits`), so a parsed scenario is bit-identical to the one the
//! parent encoded and the SPMD assembly stays deterministic everywhere.

use crate::adreport::{AdScenario, StrategyKind};
use crate::autocoord::{assemble_ad_auto, wordcount_ordering_config, wordcount_spec};
use crate::queries::ReportQuery;
use crate::wordcount::{wordcount_topology, WordcountScenario};
use crate::workload::{CampaignPlacement, ClickWorkload, TweetWorkload};
use blazes_dataflow::dist::{Registry, SinkSet};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Registry name of the auto-coordinated ad-report topology.
pub const AD_TOPOLOGY: &str = "ad-report";

/// Registry name of the coordinated Storm wordcount topology.
pub const WORDCOUNT_TOPOLOGY: &str = "wordcount";

fn put(out: &mut String, key: &str, value: impl std::fmt::Display) {
    writeln!(out, "{key}={value}").expect("string write");
}

fn kv(params: &str) -> BTreeMap<&str, &str> {
    params
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split_once('=').expect("malformed key=value parameter"))
        .collect()
}

fn get<'a>(map: &BTreeMap<&str, &'a str>, key: &str) -> &'a str {
    map.get(key)
        .unwrap_or_else(|| panic!("missing parameter `{key}`"))
}

fn get_usize(map: &BTreeMap<&str, &str>, key: &str) -> usize {
    get(map, key).parse().expect("usize parameter")
}

fn get_u64(map: &BTreeMap<&str, &str>, key: &str) -> u64 {
    get(map, key).parse().expect("u64 parameter")
}

fn get_bool(map: &BTreeMap<&str, &str>, key: &str) -> bool {
    match get(map, key) {
        "0" => false,
        "1" => true,
        other => panic!("boolean parameter must be 0/1, got `{other}`"),
    }
}

fn get_f64_bits(map: &BTreeMap<&str, &str>, key: &str) -> f64 {
    f64::from_bits(get_u64(map, key))
}

/// Encode an ad-report scenario (plus the auto-coordination and
/// speculation flags) into the plan parameter string parsed by
/// [`parse_ad_params`].
#[must_use]
pub fn encode_ad_params(sc: &AdScenario, auto: bool, speculation: bool) -> String {
    let mut out = String::new();
    put(&mut out, "auto", u8::from(auto));
    put(&mut out, "speculation", u8::from(speculation));
    put(
        &mut out,
        "strategy",
        match sc.strategy {
            StrategyKind::Uncoordinated => "uncoordinated",
            StrategyKind::Ordered => "ordered",
            StrategyKind::Sealed => "sealed",
            StrategyKind::Bare => "bare",
        },
    );
    put(
        &mut out,
        "query",
        match sc.query {
            ReportQuery::Thresh => "thresh",
            ReportQuery::Poor => "poor",
            ReportQuery::Window => "window",
            ReportQuery::Campaign => "campaign",
        },
    );
    put(&mut out, "replicas", sc.replicas);
    put(&mut out, "requests", sc.requests);
    put(&mut out, "report_service", sc.report_service);
    put(&mut out, "sequencer_service", sc.sequencer_service);
    put(&mut out, "tick_every", sc.tick_every);
    put(&mut out, "click_duplicates", sc.click_duplicates.to_bits());
    put(&mut out, "straggler_service", sc.straggler_service);
    put(
        &mut out,
        "requests_via_analyst",
        u8::from(sc.requests_via_analyst),
    );
    put(&mut out, "seed", sc.seed);
    let w = &sc.workload;
    put(&mut out, "w_ad_servers", w.ad_servers);
    put(&mut out, "w_entries_per_server", w.entries_per_server);
    put(&mut out, "w_batch_size", w.batch_size);
    put(&mut out, "w_sleep_between_batches", w.sleep_between_batches);
    put(&mut out, "w_entry_interval", w.entry_interval);
    put(&mut out, "w_campaigns", w.campaigns);
    put(&mut out, "w_ads_per_campaign", w.ads_per_campaign);
    put(
        &mut out,
        "w_placement",
        match w.placement {
            CampaignPlacement::Independent => "independent",
            CampaignPlacement::Spread => "spread",
        },
    );
    put(&mut out, "w_seed", w.seed);
    out
}

/// Parse the parameter string produced by [`encode_ad_params`] back into
/// the scenario plus the `(auto, speculation)` flags.
///
/// # Panics
/// Panics on any missing or malformed field — the string comes from the
/// parent's deterministic encoder, so damage means a protocol bug.
#[must_use]
pub fn parse_ad_params(params: &str) -> (AdScenario, bool, bool) {
    let m = kv(params);
    let sc = AdScenario {
        workload: ClickWorkload {
            ad_servers: get_usize(&m, "w_ad_servers"),
            entries_per_server: get_usize(&m, "w_entries_per_server"),
            batch_size: get_usize(&m, "w_batch_size"),
            sleep_between_batches: get_u64(&m, "w_sleep_between_batches"),
            entry_interval: get_u64(&m, "w_entry_interval"),
            campaigns: get_usize(&m, "w_campaigns"),
            ads_per_campaign: get_usize(&m, "w_ads_per_campaign"),
            placement: match get(&m, "w_placement") {
                "independent" => CampaignPlacement::Independent,
                "spread" => CampaignPlacement::Spread,
                other => panic!("unknown placement `{other}`"),
            },
            seed: get_u64(&m, "w_seed"),
        },
        strategy: match get(&m, "strategy") {
            "uncoordinated" => StrategyKind::Uncoordinated,
            "ordered" => StrategyKind::Ordered,
            "sealed" => StrategyKind::Sealed,
            "bare" => StrategyKind::Bare,
            other => panic!("unknown strategy `{other}`"),
        },
        replicas: get_usize(&m, "replicas"),
        requests: get_usize(&m, "requests"),
        report_service: get_u64(&m, "report_service"),
        sequencer_service: get_u64(&m, "sequencer_service"),
        query: match get(&m, "query") {
            "thresh" => ReportQuery::Thresh,
            "poor" => ReportQuery::Poor,
            "window" => ReportQuery::Window,
            "campaign" => ReportQuery::Campaign,
            other => panic!("unknown query `{other}`"),
        },
        tick_every: get_usize(&m, "tick_every"),
        click_duplicates: get_f64_bits(&m, "click_duplicates"),
        straggler_service: get_u64(&m, "straggler_service"),
        requests_via_analyst: get_bool(&m, "requests_via_analyst"),
        seed: get_u64(&m, "seed"),
    };
    (sc, get_bool(&m, "auto"), get_bool(&m, "speculation"))
}

/// Encode a wordcount scenario (plus the `sealed` analysis flag) into the
/// plan parameter string parsed by [`parse_wordcount_params`].
#[must_use]
pub fn encode_wordcount_params(sc: &WordcountScenario, sealed: bool) -> String {
    let mut out = String::new();
    put(&mut out, "sealed", u8::from(sealed));
    put(&mut out, "workers", sc.workers);
    put(&mut out, "spouts", sc.spouts);
    put(&mut out, "committers", sc.committers);
    put(&mut out, "transactional", u8::from(sc.transactional));
    put(&mut out, "count_service", sc.count_service);
    put(&mut out, "splitter_service", sc.splitter_service);
    put(&mut out, "coordinator_service", sc.coordinator_service);
    put(&mut out, "coordinator_latency", sc.coordinator_latency);
    put(&mut out, "max_pending", sc.max_pending);
    put(&mut out, "seed", sc.seed);
    let w = &sc.workload;
    put(&mut out, "w_vocabulary", w.vocabulary);
    put(&mut out, "w_zipf_exponent", w.zipf_exponent.to_bits());
    put(&mut out, "w_words_per_tweet", w.words_per_tweet);
    put(&mut out, "w_tweets_per_batch", w.tweets_per_batch);
    put(&mut out, "w_batches", w.batches);
    put(&mut out, "w_tweet_interval", w.tweet_interval);
    put(&mut out, "w_seed", w.seed);
    out
}

/// Parse the parameter string produced by [`encode_wordcount_params`]
/// back into the scenario plus the `sealed` flag.
///
/// # Panics
/// Panics on any missing or malformed field, as [`parse_ad_params`].
#[must_use]
pub fn parse_wordcount_params(params: &str) -> (WordcountScenario, bool) {
    let m = kv(params);
    let sc = WordcountScenario {
        workers: get_usize(&m, "workers"),
        spouts: get_usize(&m, "spouts"),
        committers: get_usize(&m, "committers"),
        workload: TweetWorkload {
            vocabulary: get_usize(&m, "w_vocabulary"),
            zipf_exponent: get_f64_bits(&m, "w_zipf_exponent"),
            words_per_tweet: get_usize(&m, "w_words_per_tweet"),
            tweets_per_batch: get_usize(&m, "w_tweets_per_batch"),
            batches: get_usize(&m, "w_batches"),
            tweet_interval: get_u64(&m, "w_tweet_interval"),
            seed: get_u64(&m, "w_seed"),
        },
        transactional: get_bool(&m, "transactional"),
        count_service: get_u64(&m, "count_service"),
        splitter_service: get_u64(&m, "splitter_service"),
        coordinator_service: get_u64(&m, "coordinator_service"),
        coordinator_latency: get_u64(&m, "coordinator_latency"),
        max_pending: get_usize(&m, "max_pending"),
        seed: get_u64(&m, "seed"),
    };
    (sc, get_bool(&m, "sealed"))
}

/// The case-study registry for distributed runs: [`AD_TOPOLOGY`] is the
/// ad network assembled through the auto-coordination rewrite pass when
/// the params say `auto=1` (bare otherwise, for divergence baselines),
/// [`WORDCOUNT_TOPOLOGY`] is the Storm wordcount with its
/// analysis-derived coordination applied before assembly. Both assemblies
/// are pure functions of the parameter string, which is what keeps every
/// process's instance numbering identical.
#[must_use]
pub fn dist_registry() -> Registry {
    let mut reg = Registry::new();
    reg.register(AD_TOPOLOGY, |b, params| -> SinkSet {
        let (sc, auto, speculation) = parse_ad_params(params);
        if auto {
            assemble_ad_auto(&sc, speculation, &mut &mut *b).responses
        } else {
            let (_series, responses) = crate::adreport::assemble_scenario(&sc, &mut &mut *b);
            responses
        }
    });
    reg.register(WORDCOUNT_TOPOLOGY, |b, params| -> SinkSet {
        let (sc, sealed) = parse_wordcount_params(params);
        let spec = wordcount_spec(sealed);
        let (mut t, committed) = wordcount_topology(&sc);
        t.apply_coordination(&spec, &wordcount_ordering_config(&sc))
            .expect("spec fits the wordcount topology");
        let store = t
            .describe()
            .nodes
            .iter()
            .position(|n| n.name == "store")
            .expect("wordcount has a store sink");
        let (instances, _) = t.assemble(&mut &mut *b);
        vec![(instances[store][0], committed)]
    });
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ad_params_round_trip_exactly() {
        let sc = AdScenario {
            click_duplicates: 0.2,
            requests_via_analyst: true,
            query: ReportQuery::Poor,
            strategy: StrategyKind::Bare,
            ..AdScenario::default()
        };
        let enc = encode_ad_params(&sc, true, true);
        let (back, auto, speculation) = parse_ad_params(&enc);
        assert!(auto && speculation);
        assert_eq!(format!("{back:?}"), format!("{sc:?}"));
        assert_eq!(
            back.click_duplicates.to_bits(),
            sc.click_duplicates.to_bits()
        );
    }

    #[test]
    fn wordcount_params_round_trip_exactly() {
        let sc = WordcountScenario {
            workers: 5,
            max_pending: 2,
            ..WordcountScenario::default()
        };
        let enc = encode_wordcount_params(&sc, true);
        let (back, sealed) = parse_wordcount_params(&enc);
        assert!(sealed);
        assert_eq!(format!("{back:?}"), format!("{sc:?}"));
    }

    #[test]
    fn registry_knows_both_case_studies() {
        let reg = dist_registry();
        assert_eq!(reg.names(), vec![AD_TOPOLOGY, WORDCOUNT_TOPOLOGY]);
    }
}
