//! The injection pass: [`AutoCoordRules`] turns a
//! [`CoordinationSpec`] into wire/injection rewrites.
//!
//! The pass recognizes flagged components by instance name (a directive
//! for component `Report` matches instances `Report`, `Report[0]`,
//! `report[3]`, … — engines suffix the parallelism index in brackets) and
//! reroutes their inbound traffic:
//!
//! * **Seal** directives get one [`SealGate`] per `(consumer instance,
//!   input port)`, fed by every producer wire and by redirected external
//!   injections. The runtime half of the directive — who produces which
//!   partition, where the key sits in a tuple — comes from a
//!   [`SealBinding`] the application registers per component.
//! * **Order** directives get one shared [`Sequencer`] per flagged
//!   component: every producer wire funnels into it and it fans out over
//!   ordered channels, so all consumer instances observe the same total
//!   order. External injections addressed to the component's instances
//!   collapse to a single sequencer send per distinct `(time, port,
//!   message)` — the sequencer broadcast delivers to every instance.

use crate::gate::{SealGate, SpeculativeSealGate};
use blazes_coord::registry::ProducerRegistry;
use blazes_coord::sequencer::Sequencer;
use blazes_core::placement::{CoordDirective, CoordinationSpec};
use blazes_dataflow::backend::{GateAlloc, InjectAction, PortId, RewritePass, WireAction};
use blazes_dataflow::channel::ChannelConfig;
use blazes_dataflow::component::Component;
use blazes_dataflow::message::Message;
use blazes_dataflow::sim::{InstanceId, Time};
use blazes_dataflow::value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Maps a query tuple to the partition it reads, so the gate can delay it
/// until that partition is sealed (`None` = forward immediately).
pub type QueryPartition = Arc<dyn Fn(&Tuple) -> Option<Value> + Send + Sync>;

/// Runtime binding for one Seal directive: everything the analysis cannot
/// know about the wire format.
#[derive(Clone)]
pub struct SealBinding {
    /// Who produces which partition (the unanimous-vote stakeholders).
    pub registry: ProducerRegistry,
    /// Columns of covered tuples holding the partition key values, paired
    /// positionally with the seal key's attributes in canonical (sorted)
    /// order. A single column is the common case; multi-column keys gate
    /// on the composite.
    pub key_columns: Vec<usize>,
    /// Arity distinguishing covered records from queries.
    pub covered_arity: usize,
    /// Seal-key attribute carrying the producer id (default `"producer"`).
    pub producer_attr: String,
    /// Optional query → partition mapping enabling read delay.
    pub query_partition: Option<QueryPartition>,
}

impl SealBinding {
    /// Binding with the default producer attribute and no query delay.
    #[must_use]
    pub fn new(registry: ProducerRegistry, key_column: usize, covered_arity: usize) -> Self {
        SealBinding {
            registry,
            key_columns: vec![key_column],
            covered_arity,
            producer_attr: "producer".to_string(),
            query_partition: None,
        }
    }

    /// Gate on a composite key: `columns` hold the covered tuple's key
    /// values, paired positionally with the seal key's attributes in
    /// canonical (sorted) order.
    #[must_use]
    pub fn with_key_columns(mut self, columns: Vec<usize>) -> Self {
        self.key_columns = columns;
        self
    }

    /// Override the seal-key attribute naming the producer.
    #[must_use]
    pub fn with_producer_attr(mut self, attr: impl Into<String>) -> Self {
        self.producer_attr = attr.into();
        self
    }

    /// Enable read delay: queries wait for the partition `f` maps them to.
    #[must_use]
    pub fn with_query_partition(mut self, f: QueryPartition) -> Self {
        self.query_partition = Some(f);
        self
    }
}

impl std::fmt::Debug for SealBinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealBinding")
            .field("key_columns", &self.key_columns)
            .field("covered_arity", &self.covered_arity)
            .field("producer_attr", &self.producer_attr)
            .field("query_partition", &self.query_partition.is_some())
            .finish_non_exhaustive()
    }
}

enum RuleKind {
    Seal {
        key_attrs: Vec<String>,
        binding: Option<SealBinding>,
        /// One gate per `(consumer instance, input port)`.
        gates: BTreeMap<(usize, PortId), InstanceId>,
    },
    Order {
        sequencer: Option<InstanceId>,
        /// Which destinations each distinct injection has covered: the
        /// first destination routes through the sequencer, further
        /// destinations are satisfied by its broadcast (Absorb), and a
        /// repeat of an already-covered destination is a genuinely new
        /// copy and routes again.
        routed: BTreeMap<(Time, PortId, Message), BTreeSet<usize>>,
        /// Producer ports already feeding the sequencer: further wires
        /// from the same port are replica fan-out and collapse into the
        /// sequencer's broadcast.
        routed_ports: BTreeSet<(usize, PortId)>,
        /// The single input port the ordered component receives on. The
        /// sequencer broadcast cannot distinguish ports, so a component
        /// whose instances listen on several ports is rejected loudly
        /// rather than silently double-delivered.
        in_port: Option<PortId>,
    },
}

struct Rule {
    component: String,
    kind: RuleKind,
}

/// Enforce the single-input-port restriction of the ordering rewrite.
fn check_order_port(component: &str, in_port: &mut Option<PortId>, port: PortId) {
    match in_port {
        None => *in_port = Some(port),
        Some(p) if *p == port => {}
        Some(p) => panic!(
            "ordering rewrite for {component:?} saw inputs on ports {p} and {port}: \
             the injected sequencer broadcasts on one port, so multi-input-port \
             consumers are not supported by the wire-level Order rewrite \
             (use an engine-native mechanism instead)"
        ),
    }
}

/// What the pass injected, per directive — the human-readable half of the
/// overhead accounting ([`blazes_dataflow::backend::RewriteStats`] holds
/// the machine-checkable half).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionSummary {
    /// `(component, mechanism, operators injected)` per directive.
    pub per_directive: Vec<(String, &'static str, usize)>,
}

impl InjectionSummary {
    /// Total operators injected.
    #[must_use]
    pub fn operators(&self) -> usize {
        self.per_directive.iter().map(|(_, _, n)| n).sum()
    }

    /// Render for logs.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        if self.per_directive.is_empty() {
            return "no coordination injected (confluent topology)\n".to_string();
        }
        let mut s = String::new();
        for (comp, mech, n) in &self.per_directive {
            let _ = writeln!(s, "{comp}: injected {n} {mech} operator(s)");
        }
        s
    }
}

/// The coordination-injection rewrite pass. Build from a spec, register a
/// [`SealBinding`] per Seal directive, then hand to
/// [`blazes_dataflow::backend::RewritingBuilder`].
pub struct AutoCoordRules {
    rules: Vec<Rule>,
    /// Flagged instance → rule index.
    flagged: BTreeMap<usize, usize>,
    sequencer_service: Time,
    ordered_latency: Time,
    seal_delivery: ChannelConfig,
    speculation: bool,
}

impl AutoCoordRules {
    /// Build the pass for `spec`. Seal directives with multi-attribute
    /// keys gate on the composite of all attributes in canonical order;
    /// the registered [`SealBinding`] pairs tuple columns with them via
    /// [`SealBinding::with_key_columns`].
    #[must_use]
    pub fn new(spec: &CoordinationSpec) -> Self {
        let rules = spec
            .directives
            .iter()
            .map(|d| match d {
                CoordDirective::Seal { component, key, .. } => Rule {
                    component: component.clone(),
                    kind: RuleKind::Seal {
                        key_attrs: key.iter().map(ToString::to_string).collect(),
                        binding: None,
                        gates: BTreeMap::new(),
                    },
                },
                CoordDirective::Order { component, .. } => Rule {
                    component: component.clone(),
                    kind: RuleKind::Order {
                        sequencer: None,
                        routed: BTreeMap::new(),
                        routed_ports: BTreeSet::new(),
                        in_port: None,
                    },
                },
            })
            .collect();
        AutoCoordRules {
            rules,
            flagged: BTreeMap::new(),
            sequencer_service: 0,
            ordered_latency: 1_000,
            seal_delivery: ChannelConfig::instant(),
            speculation: false,
        }
    }

    /// Register the runtime binding for `component`'s Seal directive.
    ///
    /// # Panics
    /// Panics when `component` has no Seal directive in the spec.
    #[must_use]
    pub fn bind_seal(mut self, component: &str, binding: SealBinding) -> Self {
        let rule = self
            .rules
            .iter_mut()
            .find(|r| r.component == component)
            .unwrap_or_else(|| panic!("no directive for component {component:?}"));
        match &mut rule.kind {
            RuleKind::Seal { binding: slot, .. } => *slot = Some(binding),
            RuleKind::Order { .. } => {
                panic!("component {component:?} is ordered, not sealed")
            }
        }
        self
    }

    /// Service time charged per message at injected sequencers (the
    /// serialization toll of the ordering strategy).
    #[must_use]
    pub fn with_sequencer_service(mut self, service: Time) -> Self {
        self.sequencer_service = service;
        self
    }

    /// Latency of the ordered channels out of injected sequencers.
    #[must_use]
    pub fn with_ordered_latency(mut self, latency: Time) -> Self {
        self.ordered_latency = latency;
        self
    }

    /// Channel used from injected seal gates to their consumers.
    #[must_use]
    pub fn with_seal_delivery(mut self, cfg: ChannelConfig) -> Self {
        self.seal_delivery = cfg;
        self
    }

    /// Inject [`SpeculativeSealGate`]s instead of blocking [`SealGate`]s:
    /// consumers run ahead of missing punctuations under the parallel
    /// backend's time-warp mode ([`ParTuning::with_speculation`]) and roll
    /// back on straggler violations. Only valid on the parallel backend —
    /// the simulator rejects speculative emissions.
    ///
    /// [`ParTuning::with_speculation`]: blazes_dataflow::par::ParTuning::with_speculation
    #[must_use]
    pub fn with_speculation(mut self, on: bool) -> Self {
        self.speculation = on;
        self
    }

    /// Per-directive injection accounting.
    #[must_use]
    pub fn summary(&self) -> InjectionSummary {
        InjectionSummary {
            per_directive: self
                .rules
                .iter()
                .map(|r| match &r.kind {
                    RuleKind::Seal { gates, .. } => (r.component.clone(), "seal-gate", gates.len()),
                    RuleKind::Order { sequencer, .. } => (
                        r.component.clone(),
                        "sequencer",
                        usize::from(sequencer.is_some()),
                    ),
                })
                .collect(),
        }
    }

    /// Does `name` belong to the component a directive flags? Engines
    /// label instances `Component[k]`; matching is case-insensitive.
    fn matches(component: &str, name: &str) -> bool {
        let n = name.as_bytes();
        let c = component.as_bytes();
        if n.len() < c.len() || !n[..c.len()].eq_ignore_ascii_case(c) {
            return false;
        }
        n.len() == c.len() || n[c.len()] == b'['
    }
}

impl RewritePass for AutoCoordRules {
    fn observe_instance(&mut self, id: InstanceId, name: &str) {
        for (i, rule) in self.rules.iter().enumerate() {
            if Self::matches(&rule.component, name) {
                self.flagged.insert(id.0, i);
                break;
            }
        }
    }

    fn rewrite_wire(
        &mut self,
        from: InstanceId,
        out_port: PortId,
        to: InstanceId,
        in_port: PortId,
        alloc: &mut GateAlloc<'_>,
    ) -> WireAction {
        let Some(&ri) = self.flagged.get(&to.0) else {
            return WireAction::Keep;
        };
        let rule = &mut self.rules[ri];
        match &mut rule.kind {
            RuleKind::Seal {
                key_attrs,
                binding,
                gates,
            } => WireAction::Via {
                gate: seal_gate(
                    &rule.component,
                    key_attrs,
                    binding,
                    gates,
                    to,
                    in_port,
                    self.speculation,
                    alloc,
                ),
                gate_in_port: PortId(0),
                delivery: self.seal_delivery.clone(),
            },
            RuleKind::Order {
                sequencer,
                routed_ports,
                in_port: order_port,
                ..
            } => {
                check_order_port(&rule.component, order_port, in_port);
                let gate = *sequencer.get_or_insert_with(|| {
                    alloc(Box::new(Sequencer::new()), self.sequencer_service)
                });
                let delivery = ChannelConfig::ordered(self.ordered_latency);
                if routed_ports.insert((from.0, out_port)) {
                    WireAction::Via {
                        gate,
                        gate_in_port: PortId(0),
                        delivery,
                    }
                } else {
                    // Replica fan-out: this producer port already feeds
                    // the sequencer, whose broadcast reaches every
                    // instance — wiring it again would duplicate traffic.
                    WireAction::Absorb { gate, delivery }
                }
            }
        }
    }

    fn rewrite_injection(
        &mut self,
        at: Time,
        to: InstanceId,
        port: PortId,
        msg: &Message,
        alloc: &mut GateAlloc<'_>,
    ) -> InjectAction {
        let Some(&ri) = self.flagged.get(&to.0) else {
            return InjectAction::Keep;
        };
        let rule = &mut self.rules[ri];
        match &mut rule.kind {
            RuleKind::Seal {
                key_attrs,
                binding,
                gates,
            } => InjectAction::Via {
                gate: seal_gate(
                    &rule.component,
                    key_attrs,
                    binding,
                    gates,
                    to,
                    port,
                    self.speculation,
                    alloc,
                ),
                gate_in_port: PortId(0),
                delivery: self.seal_delivery.clone(),
            },
            RuleKind::Order {
                sequencer,
                routed,
                in_port: order_port,
                ..
            } => {
                check_order_port(&rule.component, order_port, port);
                let gate = *sequencer.get_or_insert_with(|| {
                    alloc(Box::new(Sequencer::new()), self.sequencer_service)
                });
                let delivery = ChannelConfig::ordered(self.ordered_latency);
                let covered = routed.entry((at, port, msg.clone())).or_default();
                if covered.insert(to.0) {
                    if covered.len() == 1 {
                        // First destination of this logical message:
                        // route it through the sequencer once.
                        InjectAction::Via {
                            gate,
                            gate_in_port: PortId(0),
                            delivery,
                        }
                    } else {
                        // Broadcast collapse: the sequencer already
                        // carries this message for a sibling instance;
                        // just make sure it reaches this one too.
                        InjectAction::Absorb { gate, delivery }
                    }
                } else {
                    // The same destination again: a genuinely new copy of
                    // an identical payload — deliver it (to everyone, as
                    // the ordering service broadcasts) rather than
                    // silently dropping it.
                    covered.clear();
                    covered.insert(to.0);
                    InjectAction::Via {
                        gate,
                        gate_in_port: PortId(0),
                        delivery,
                    }
                }
            }
        }
    }
}

/// Materialize (or reuse) the gate for one `(consumer instance, input
/// port)` — shared by the wire and injection paths so the two can never
/// disagree on gate identity. `speculative` selects the time-warp variant
/// over the blocking protocol.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by two rewrite paths
fn seal_gate(
    component: &str,
    key_attrs: &[String],
    binding: &Option<SealBinding>,
    gates: &mut BTreeMap<(usize, PortId), InstanceId>,
    to: InstanceId,
    in_port: PortId,
    speculative: bool,
    alloc: &mut GateAlloc<'_>,
) -> InstanceId {
    *gates.entry((to.0, in_port)).or_insert_with(|| {
        let binding = binding
            .clone()
            .unwrap_or_else(|| panic!("seal directive for {component:?} needs bind_seal()"));
        let name = format!("autocoord-seal({component}@{}:{})", to.0, in_port.0);
        let gate: Box<dyn Component> = if speculative {
            Box::new(SpeculativeSealGate::new(key_attrs.to_vec(), binding, name))
        } else {
            Box::new(SealGate::new_multi(key_attrs.to_vec(), binding, name))
        };
        alloc(gate, 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazes_core::keys::KeySet;
    use blazes_dataflow::backend::{ExecutorBuilder, RewritingBuilder};
    use blazes_dataflow::component::{Component, Context, FnComponent};
    use blazes_dataflow::message::SealKey;
    use blazes_dataflow::par::ParBuilder;
    use blazes_dataflow::sim::SimBuilder;
    use blazes_dataflow::sinks::CollectorSink;

    fn spec_seal(component: &str) -> CoordinationSpec {
        CoordinationSpec {
            directives: vec![CoordDirective::Seal {
                component: component.to_string(),
                input: "click".to_string(),
                key: KeySet::single("campaign"),
            }],
        }
    }

    fn spec_order(component: &str) -> CoordinationSpec {
        CoordinationSpec {
            directives: vec![CoordDirective::Order {
                component: component.to_string(),
                inputs: vec!["in".to_string()],
                dynamic: false,
            }],
        }
    }

    fn forwarder(name: &str) -> Box<dyn Component> {
        Box::new(FnComponent::new(
            name.to_string(),
            |_, msg, ctx: &mut Context| ctx.emit(0, msg),
        ))
    }

    #[test]
    fn name_matching_covers_parallel_instances() {
        assert!(AutoCoordRules::matches("Report", "Report"));
        assert!(AutoCoordRules::matches("Report", "report[3]"));
        assert!(AutoCoordRules::matches("Report", "REPORT[0]"));
        assert!(!AutoCoordRules::matches("Report", "Reporter"));
        assert!(!AutoCoordRules::matches("Report", "Repo"));
        assert!(!AutoCoordRules::matches("Report", "Reporter[0]"));
    }

    /// Assemble: two producers feed one flagged consumer, which forwards
    /// to a sink; a query is injected directly into the consumer.
    fn seal_topology<B: ExecutorBuilder>(b: &mut B, sink: CollectorSink) {
        let consumer = b.add_instance(forwarder("Report[0]"));
        let s = b.add_instance(Box::new(sink));
        b.connect_with(consumer, PortId(0), s, PortId(0), ChannelConfig::instant());
        for k in 0..2i64 {
            let p = b.add_instance(forwarder("producer"));
            b.connect_with(
                p,
                PortId(0),
                consumer,
                PortId(0),
                ChannelConfig::lan().with_jitter(9_000),
            );
            for i in 0..5i64 {
                b.inject(0, p, PortId(0), Message::data([k * 100 + i, 1i64, 0i64]));
            }
            b.inject(
                1,
                p,
                PortId(0),
                Message::Seal(SealKey::new([
                    ("campaign", Value::Int(1)),
                    ("producer", Value::Int(k)),
                ])),
            );
        }
    }

    fn seal_rules() -> AutoCoordRules {
        AutoCoordRules::new(&spec_seal("Report")).bind_seal(
            "Report",
            SealBinding::new(ProducerRegistry::all_produce(0..2), 1, 3),
        )
    }

    #[test]
    fn seal_directive_gates_the_consumer_on_both_backends() {
        // Simulator.
        let sim_sink = CollectorSink::new();
        let mut sim = SimBuilder::new(4);
        let mut rb = RewritingBuilder::new(&mut sim, seal_rules());
        seal_topology(&mut rb, sim_sink.clone());
        let (rules, stats) = rb.finish();
        assert_eq!(stats.injected_operators, 1, "one gate for one consumer");
        assert_eq!(stats.rewritten_wires, 2, "both producer wires rerouted");
        assert_eq!(rules.summary().operators(), 1);
        sim.build().run(None);
        assert_eq!(sim_sink.len(), 12, "10 records + both producer votes");

        // Only the data payload is schedule-independent: the forwarded
        // punctuation names whichever producer completed the vote.
        fn data_set(sink: &CollectorSink) -> std::collections::BTreeSet<Message> {
            sink.message_set()
                .into_iter()
                .filter(|m| m.as_data().is_some())
                .collect()
        }

        // Parallel, both schedulers.
        for stealing in [true, false] {
            let par_sink = CollectorSink::new();
            let mut par = ParBuilder::new(4).with_workers(3).with_stealing(stealing);
            let mut rb = RewritingBuilder::new(&mut par, seal_rules());
            seal_topology(&mut rb, par_sink.clone());
            let (_, stats) = rb.finish();
            assert_eq!(stats.injected_operators, 1);
            let _ = par.build().run();
            assert_eq!(
                data_set(&par_sink),
                data_set(&sim_sink),
                "stealing={stealing}"
            );
            // Release discipline: all 10 records precede the punctuation.
            let msgs = par_sink.messages();
            let seal_pos = msgs
                .iter()
                .position(|m| matches!(m, Message::Seal(_)))
                .expect("punctuation forwarded");
            assert_eq!(seal_pos, 10, "seal after every covered record");
        }
    }

    #[test]
    fn order_directive_serializes_replicas_identically() {
        fn topology<B: ExecutorBuilder>(b: &mut B) -> Vec<CollectorSink> {
            let mut sinks = Vec::new();
            let mut replicas = Vec::new();
            for r in 0..2 {
                let rep = b.add_instance(forwarder(&format!("Replica[{r}]")));
                let sink = CollectorSink::new();
                let s = b.add_instance(Box::new(sink.clone()));
                b.connect_with(rep, PortId(0), s, PortId(0), ChannelConfig::instant());
                sinks.push(sink);
                replicas.push(rep);
            }
            for k in 0..3i64 {
                let p = b.add_instance(forwarder("producer"));
                for &rep in &replicas {
                    b.connect_with(
                        p,
                        PortId(0),
                        rep,
                        PortId(0),
                        ChannelConfig::lan().with_jitter(7_000),
                    );
                }
                for i in 0..30i64 {
                    b.inject(0, p, PortId(0), Message::data([k * 1_000 + i]));
                }
            }
            // A broadcast injection addressed to each replica: must
            // collapse through the sequencer to one delivery per replica.
            for &rep in &replicas {
                b.inject(5, rep, PortId(0), Message::data([-7i64]));
            }
            sinks
        }

        for workers in [1usize, 4] {
            let mut par = ParBuilder::new(9).with_workers(workers);
            let mut rb =
                RewritingBuilder::new(&mut par, AutoCoordRules::new(&spec_order("Replica")));
            let sinks = topology(&mut rb);
            let (rules, stats) = rb.finish();
            assert_eq!(stats.injected_operators, 1, "one shared sequencer");
            assert_eq!(stats.rewritten_wires, 3, "one wire per producer port");
            assert_eq!(stats.absorbed_wires, 3, "replica fan-out collapsed");
            assert_eq!(stats.redirected_injections, 1);
            assert_eq!(stats.absorbed_injections, 1);
            assert_eq!(rules.summary().per_directive[0].1, "sequencer");
            let _ = par.build().run();
            assert_eq!(
                sinks[0].messages(),
                sinks[1].messages(),
                "replicas must observe one total order ({workers} workers)"
            );
            assert_eq!(sinks[0].len(), 91, "90 records + 1 collapsed broadcast");
        }
    }

    #[test]
    fn duplicate_injections_to_the_same_instance_are_not_dropped() {
        // Two *identical* injections to one flagged replica are genuinely
        // distinct copies: both must survive the broadcast collapse.
        let mut par = ParBuilder::new(2).with_workers(2);
        let mut rb = RewritingBuilder::new(&mut par, AutoCoordRules::new(&spec_order("Replica")));
        let rep = rb.add_instance(forwarder("Replica[0]"));
        let sink = CollectorSink::new();
        let s = rb.add_instance(Box::new(sink.clone()));
        rb.connect_with(rep, PortId(0), s, PortId(0), ChannelConfig::instant());
        rb.inject(0, rep, PortId(0), Message::data([7i64]));
        rb.inject(0, rep, PortId(0), Message::data([7i64]));
        let (_, stats) = rb.finish();
        assert_eq!(stats.redirected_injections, 2, "both copies routed");
        assert_eq!(stats.absorbed_injections, 0);
        let _ = par.build().run();
        assert_eq!(sink.len(), 2, "uncoordinated multiplicity preserved");
    }

    #[test]
    #[should_panic(expected = "multi-input-port")]
    fn ordered_multi_input_port_consumers_are_rejected() {
        // The sequencer broadcast cannot preserve port identity; wiring a
        // second distinct input port must fail loudly, not double-deliver.
        let mut sim = SimBuilder::new(0);
        let mut rb = RewritingBuilder::new(&mut sim, AutoCoordRules::new(&spec_order("Replica")));
        let rep = rb.add_instance(forwarder("Replica[0]"));
        let p = rb.add_instance(forwarder("producer"));
        rb.connect_with(p, PortId(0), rep, PortId(0), ChannelConfig::instant());
        rb.connect_with(p, PortId(1), rep, PortId(1), ChannelConfig::instant());
    }

    #[test]
    fn unflagged_topologies_pass_through_untouched() {
        let sink = CollectorSink::new();
        let mut sim = SimBuilder::new(0);
        let mut rb =
            RewritingBuilder::new(&mut sim, AutoCoordRules::new(&CoordinationSpec::default()));
        seal_topology(&mut rb, sink.clone());
        let (rules, stats) = rb.finish();
        assert!(stats.is_untouched());
        assert_eq!(rules.summary().operators(), 0);
        assert!(rules.summary().render().contains("confluent"));
    }

    #[test]
    #[should_panic(expected = "needs bind_seal")]
    fn missing_seal_binding_panics_at_first_wire() {
        let mut sim = SimBuilder::new(0);
        let mut rb = RewritingBuilder::new(&mut sim, AutoCoordRules::new(&spec_seal("Report")));
        let sink = CollectorSink::new();
        seal_topology(&mut rb, sink);
    }
}
