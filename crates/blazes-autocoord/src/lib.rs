//! # blazes-autocoord
//!
//! The bridge the paper promises: **annotate → analyze → inject**.
//!
//! `blazes-core` decides *where* a dataflow needs coordination and *which*
//! mechanism is cheapest ([`blazes_core::placement::CoordinationSpec`]);
//! `blazes-coord` provides the runtime primitives ([`SealManager`],
//! [`Sequencer`]); this crate closes the loop. [`AutoCoordRules`] is a
//! [`blazes_dataflow::backend::RewritePass`]: wrap any backend builder in
//! a [`RewritingBuilder`], assemble the *uncoordinated* topology, and every
//! wire or injection into a component the spec flags is transparently
//! rerouted —
//!
//! * through a [`SealGate`] (per consumer instance) where the analysis
//!   proved a seal protocol suffices: partitions buffer until the
//!   unanimous producer vote completes, and queries are held until the
//!   partition they read is released (paper Section V-B1);
//! * through one shared [`Sequencer`] (per flagged component) where the
//!   analysis fell back to ordering: all inputs serialize through the
//!   simulated ordering service and fan out over ordered channels, so
//!   every replica observes one total order (paper Section V-B2);
//! * through **nothing at all** on confluent paths — an empty spec leaves
//!   the topology bit-identical, which
//!   [`blazes_dataflow::backend::RewriteStats::is_untouched`] certifies.
//!
//! Because the pass lives below the shared
//! [`blazes_dataflow::backend::ExecutorBuilder`] surface, the same
//! rewritten graph runs on the discrete-event simulator and the
//! multi-worker parallel executor alike.
//!
//! ```
//! use blazes_autocoord::{AutoCoordRules, SealBinding};
//! use blazes_core::placement::CoordinationSpec;
//! use blazes_core::prelude::*;
//! use blazes_coord::registry::ProducerRegistry;
//! use blazes_dataflow::backend::{ExecutorBuilder, RewritingBuilder};
//! use blazes_dataflow::sim::SimBuilder;
//!
//! // 1. Annotate + analyze (a sealed source feeding an OW component).
//! let mut g = DataflowGraph::new("demo");
//! let src = g.add_source("clicks", &["id", "campaign"]);
//! g.seal_source(src, ["campaign"]);
//! let report = g.add_component("Report");
//! g.add_path(report, "click", "out", ComponentAnnotation::ow(["campaign", "id"]));
//! let sink = g.add_sink("analyst");
//! g.connect_source(src, report, "click");
//! g.connect_sink(report, "out", sink);
//! let spec = CoordinationSpec::derive(&g, false).unwrap();
//! assert!(!spec.is_empty());
//!
//! // 2. Inject: assemble the bare topology through the rewrite pass.
//! let rules = AutoCoordRules::new(&spec)
//!     .bind_seal("Report", SealBinding::new(ProducerRegistry::all_produce([0]), 1, 2));
//! let mut sim = SimBuilder::new(0);
//! let mut b = RewritingBuilder::new(&mut sim, rules);
//! // ... add instances / connect / inject as if uncoordinated ...
//! # let _ = &mut b;
//! ```

pub mod gate;
pub mod rules;

#[doc(no_inline)]
pub use blazes_coord::{SealManager, Sequencer};
#[doc(no_inline)]
pub use blazes_core::placement::{CoordDirective, CoordinationSpec};
#[doc(no_inline)]
pub use blazes_dataflow::backend::{RewriteStats, RewritingBuilder};
pub use gate::{SealGate, SealGateStats, SpecGateStats, SpeculativeSealGate};
pub use rules::{AutoCoordRules, InjectionSummary, QueryPartition, SealBinding};
