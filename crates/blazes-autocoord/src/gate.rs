//! The injected seal-protocol operator.
//!
//! A [`SealGate`] sits on the wires into one consumer instance whose input
//! the analysis proved sealable. It runs the paper's Section V-B1 protocol
//! *outside* the consumer, so the consumer itself stays the plain
//! uncoordinated component the programmer wrote:
//!
//! * covered records (recognized by arity) buffer per partition in a
//!   [`SealManager`] until every registered producer has sealed the
//!   partition (the unanimous vote), then release downstream in one burst,
//!   followed by the seal punctuation itself;
//! * queries (any other data tuple) are *delayed* until the partition they
//!   read has been released — the read-delay half of the protocol that
//!   makes answers functions of final partition contents only;
//! * duplicate seals after release are absorbed (idempotent votes);
//!   covered records arriving after their partition released — possible
//!   only on non-FIFO channels — are forwarded rather than lost, and
//!   counted in [`SealGateStats::late_forwards`].

use crate::rules::SealBinding;
use blazes_coord::seal::{SealManager, SealOutcome};
use blazes_dataflow::component::{Component, Context};
use blazes_dataflow::message::Message;
use blazes_dataflow::value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Counters describing one gate's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SealGateStats {
    /// Partitions released.
    pub released: u64,
    /// Covered records forwarded after their partition had released.
    pub late_forwards: u64,
    /// Queries that were delayed at least once.
    pub held_queries: u64,
}

/// The injected seal-protocol operator (one per coordinated consumer
/// instance and input port). All upstream wires converge on any input
/// port; everything leaves on output port 0, which the rewrite pass wires
/// to the consumer.
pub struct SealGate {
    mgr: SealManager,
    key_attr: String,
    binding: SealBinding,
    /// Queries delayed until their partition releases.
    held: BTreeMap<Value, Vec<Tuple>>,
    /// Seal punctuations collected per open partition, one per distinct
    /// producer (duplicated votes collapse), re-emitted after the
    /// partition's records on release so downstream hops running the
    /// protocol natively can complete their own unanimous votes.
    pending_seals: BTreeMap<Value, BTreeMap<usize, Message>>,
    released: BTreeSet<Value>,
    stats: SealGateStats,
    name: String,
}

impl SealGate {
    /// Build a gate enforcing `binding` for seal punctuations keyed by
    /// `key_attr`.
    #[must_use]
    pub fn new(key_attr: impl Into<String>, binding: SealBinding, name: impl Into<String>) -> Self {
        SealGate {
            mgr: SealManager::new(binding.registry.clone()),
            key_attr: key_attr.into(),
            binding,
            held: BTreeMap::new(),
            pending_seals: BTreeMap::new(),
            released: BTreeSet::new(),
            stats: SealGateStats::default(),
            name: name.into(),
        }
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> SealGateStats {
        self.stats
    }

    fn release(&mut self, partition: Value, tuples: Vec<Tuple>, ctx: &mut Context) {
        self.stats.released += 1;
        for t in tuples {
            ctx.emit(0, Message::Data(t));
        }
        // Every collected punctuation follows the records it covers, so a
        // downstream hop running the protocol natively can complete its
        // own unanimous vote (one seal per producer, none early).
        for (_, seal) in self.pending_seals.remove(&partition).unwrap_or_default() {
            ctx.emit(0, seal);
        }
        self.released.insert(partition.clone());
        for q in self.held.remove(&partition).unwrap_or_default() {
            ctx.emit(0, Message::Data(q));
        }
    }

    fn on_covered(&mut self, partition: Value, tuple: Tuple, ctx: &mut Context) {
        match self.mgr.on_data(partition, tuple.clone()) {
            SealOutcome::Buffered | SealOutcome::Released(_) => {}
            SealOutcome::LateArrival => {
                self.stats.late_forwards += 1;
                ctx.emit(0, Message::Data(tuple));
            }
        }
    }

    fn on_query(&mut self, tuple: Tuple, ctx: &mut Context) {
        let partition = self
            .binding
            .query_partition
            .as_ref()
            .and_then(|f| f(&tuple));
        match partition {
            Some(p) if !self.released.contains(&p) => {
                self.stats.held_queries += 1;
                self.held.entry(p).or_default().push(tuple);
            }
            _ => ctx.emit(0, Message::Data(tuple)),
        }
    }
}

impl Component for SealGate {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) if t.arity() == self.binding.covered_arity => {
                match t.get(self.binding.key_column).cloned() {
                    Some(partition) => self.on_covered(partition, t, ctx),
                    None => ctx.emit(0, Message::Data(t)),
                }
            }
            Message::Data(t) => self.on_query(t, ctx),
            Message::Seal(key) => {
                let Some(partition) = key.value_of(&self.key_attr).cloned() else {
                    // A seal for some other key: not ours to gate.
                    ctx.emit(0, Message::Seal(key));
                    return;
                };
                let producer = key
                    .value_of(&self.binding.producer_attr)
                    .and_then(Value::as_int)
                    .unwrap_or(0) as usize;
                match self.mgr.on_seal(partition.clone(), producer) {
                    SealOutcome::Released(tuples) => {
                        self.pending_seals
                            .entry(partition.clone())
                            .or_default()
                            .insert(producer, Message::Seal(key));
                        self.release(partition, tuples, ctx);
                    }
                    // Partial vote: remember the punctuation for the
                    // release burst (one per producer). Duplicate seal
                    // after release: absorb (idempotent).
                    SealOutcome::Buffered => {
                        if !self.released.contains(&partition) {
                            self.pending_seals
                                .entry(partition)
                                .or_default()
                                .insert(producer, Message::Seal(key));
                        }
                    }
                    SealOutcome::LateArrival => {}
                }
            }
            Message::Eos => ctx.emit(0, Message::Eos),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazes_coord::registry::ProducerRegistry;
    use blazes_dataflow::message::SealKey;
    use blazes_dataflow::sim::InstanceId;
    use std::sync::Arc;

    fn click(campaign: i64, n: i64) -> Tuple {
        Tuple::new([Value::Int(n), Value::Int(campaign), Value::Int(0)])
    }

    fn seal(campaign: i64, producer: i64) -> Message {
        Message::Seal(SealKey::new([
            ("campaign", Value::Int(campaign)),
            ("producer", Value::Int(producer)),
        ]))
    }

    fn gate(producers: usize, with_query_map: bool) -> SealGate {
        let mut binding = SealBinding::new(ProducerRegistry::all_produce(0..producers), 1, 3);
        if with_query_map {
            binding = binding.with_query_partition(Arc::new(|t: &Tuple| t.get(0).cloned()));
        }
        SealGate::new("campaign", binding, "gate")
    }

    fn ctx() -> Context {
        Context::new(0, InstanceId(0))
    }

    #[test]
    fn buffers_until_unanimous_vote_then_releases_with_punctuation() {
        let mut g = gate(2, false);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(1, 10)), &mut c);
        g.on_message(0, seal(1, 0), &mut c);
        assert!(c.emitted().is_empty(), "one vote of two must not release");
        g.on_message(0, Message::Data(click(1, 11)), &mut c);
        g.on_message(0, seal(1, 1), &mut c);
        let out = c.emitted();
        assert_eq!(out.len(), 4, "two records then both votes: {out:?}");
        assert_eq!(out[0].1, Message::Data(click(1, 10)));
        assert_eq!(out[1].1, Message::Data(click(1, 11)));
        assert!(matches!(out[2].1, Message::Seal(_)));
        assert!(matches!(out[3].1, Message::Seal(_)));
        assert_eq!(g.stats().released, 1);
    }

    #[test]
    fn duplicate_seals_are_idempotent() {
        let mut g = gate(2, false);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(1, 1)), &mut c);
        g.on_message(0, seal(1, 0), &mut c);
        g.on_message(0, seal(1, 0), &mut c); // duplicated vote
        assert!(c.emitted().is_empty());
        g.on_message(0, seal(1, 1), &mut c);
        // One record, then one punctuation per producer (the duplicated
        // vote collapsed).
        assert_eq!(c.emitted().len(), 3);
        g.on_message(0, seal(1, 1), &mut c); // duplicate after release
        assert_eq!(c.emitted().len(), 3, "late duplicate absorbed");
        assert_eq!(g.stats().released, 1);
    }

    #[test]
    fn seal_before_any_data_releases_empty_partition() {
        let mut g = gate(1, false);
        let mut c = ctx();
        g.on_message(0, seal(5, 0), &mut c);
        assert_eq!(c.emitted().len(), 1, "just the punctuation");
        // A straggler after release is forwarded, not lost.
        g.on_message(0, Message::Data(click(5, 9)), &mut c);
        assert_eq!(c.emitted().len(), 2);
        assert_eq!(g.stats().late_forwards, 1);
    }

    #[test]
    fn queries_are_delayed_until_their_partition_releases() {
        let mut g = gate(1, true);
        let mut c = ctx();
        let query = Tuple::new([Value::Int(2)]);
        g.on_message(0, Message::Data(query.clone()), &mut c);
        assert!(c.emitted().is_empty(), "query held until campaign 2 seals");
        g.on_message(0, Message::Data(click(2, 7)), &mut c);
        g.on_message(0, seal(2, 0), &mut c);
        let out = c.emitted();
        assert_eq!(out.len(), 3, "record, seal, then the delayed query");
        assert_eq!(out[2].1, Message::Data(query));
        assert_eq!(g.stats().held_queries, 1);
    }

    #[test]
    fn queries_for_released_partitions_pass_straight_through() {
        let mut g = gate(1, true);
        let mut c = ctx();
        g.on_message(0, seal(3, 0), &mut c);
        g.on_message(0, Message::Data(Tuple::new([Value::Int(3)])), &mut c);
        assert_eq!(c.emitted().len(), 2);
    }

    /// The chaining property: a consumer that runs the seal protocol
    /// *natively* downstream of the gate still completes its own
    /// unanimous vote, because the gate re-emits every producer's
    /// punctuation after the released records.
    #[test]
    fn released_punctuations_complete_a_downstream_native_vote() {
        let mut g = gate(2, false);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(4, 1)), &mut c);
        g.on_message(0, Message::Data(click(4, 2)), &mut c);
        g.on_message(0, seal(4, 0), &mut c);
        g.on_message(0, seal(4, 1), &mut c);

        // Replay the gate's output into a second, native seal consumer.
        let mut downstream = SealManager::new(ProducerRegistry::all_produce(0..2));
        let mut released = None;
        for (_, msg) in c.emitted() {
            match msg {
                Message::Data(t) => {
                    assert!(matches!(
                        downstream.on_data(t.get(1).cloned().unwrap(), t.clone()),
                        SealOutcome::Buffered
                    ));
                }
                Message::Seal(key) => {
                    let campaign = key.value_of("campaign").cloned().unwrap();
                    let producer = key.value_of("producer").and_then(Value::as_int).unwrap();
                    if let SealOutcome::Released(tuples) =
                        downstream.on_seal(campaign, producer as usize)
                    {
                        released = Some(tuples);
                    }
                }
                Message::Eos => {}
            }
        }
        assert_eq!(
            released.map(|t| t.len()),
            Some(2),
            "downstream unanimous vote must complete with the full buffer"
        );
    }

    #[test]
    fn unmapped_queries_and_foreign_seals_forward() {
        let mut g = gate(1, false); // no query map: queries pass through
        let mut c = ctx();
        g.on_message(0, Message::Data(Tuple::new([Value::Int(1)])), &mut c);
        g.on_message(
            0,
            Message::Seal(SealKey::new([("batch", Value::Int(0))])),
            &mut c,
        );
        g.on_message(0, Message::Eos, &mut c);
        assert_eq!(c.emitted().len(), 3);
    }
}
