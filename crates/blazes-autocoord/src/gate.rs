//! The injected seal-protocol operator.
//!
//! A [`SealGate`] sits on the wires into one consumer instance whose input
//! the analysis proved sealable. It runs the paper's Section V-B1 protocol
//! *outside* the consumer, so the consumer itself stays the plain
//! uncoordinated component the programmer wrote:
//!
//! * covered records (recognized by arity) buffer per partition in a
//!   [`SealManager`] until every registered producer has sealed the
//!   partition (the unanimous vote), then release downstream in one burst,
//!   followed by the seal punctuation itself;
//! * queries (any other data tuple) are *delayed* until the partition they
//!   read has been released — the read-delay half of the protocol that
//!   makes answers functions of final partition contents only;
//! * duplicate seals after release are absorbed (idempotent votes);
//!   covered records arriving after their partition released — possible
//!   only on non-FIFO channels — are forwarded rather than lost, and
//!   counted in [`SealGateStats::late_forwards`].
//!
//! Seal keys may span several attributes: the gate then partitions on the
//! composite of all key values (see [`composite_partition`]).
//!
//! [`SpeculativeSealGate`] is the time-warp variant for the parallel
//! backend's speculation mode: instead of buffering, it forwards covered
//! records and answers queries *ahead of* the unanimous vote, tagged with
//! a speculation epoch, and aborts the epoch when a straggler record
//! proves a speculative answer saw an incomplete partition.

use crate::rules::SealBinding;
use blazes_coord::seal::{SealManager, SealOutcome};
use blazes_dataflow::component::{Component, Context};
use blazes_dataflow::message::{Message, SealKey};
use blazes_dataflow::value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Join key values into one partition identity. A single value stays
/// itself, so single-attribute seals keep their raw [`Value`] identity in
/// the producer registry; composites join the values' display forms with
/// the ASCII unit separator, which cannot occur in integer or boolean
/// renderings.
#[must_use]
pub fn composite_partition(values: Vec<Value>) -> Value {
    if values.len() == 1 {
        return values.into_iter().next().expect("one value");
    }
    let joined = values
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\u{1f}");
    Value::str(joined)
}

/// Partition identity of a covered tuple under (possibly composite) key
/// columns; `None` when the tuple is too short.
#[must_use]
pub fn covered_partition(key_columns: &[usize], t: &Tuple) -> Option<Value> {
    key_columns
        .iter()
        .map(|&c| t.get(c).cloned())
        .collect::<Option<Vec<_>>>()
        .map(composite_partition)
}

/// Partition identity of a seal punctuation under (possibly composite)
/// key attributes; `None` when any attribute is missing — a seal for some
/// other key, not ours to gate.
#[must_use]
pub fn seal_partition(key_attrs: &[String], key: &SealKey) -> Option<Value> {
    key_attrs
        .iter()
        .map(|a| key.value_of(a).cloned())
        .collect::<Option<Vec<_>>>()
        .map(composite_partition)
}

/// Counters describing one gate's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SealGateStats {
    /// Partitions released.
    pub released: u64,
    /// Covered records forwarded after their partition had released.
    pub late_forwards: u64,
    /// Queries that were delayed at least once.
    pub held_queries: u64,
    /// Duplicate seal votes absorbed by the underlying manager — the
    /// signature of a crash-recovered producer re-running its vote.
    pub revotes: u64,
}

/// The injected seal-protocol operator (one per coordinated consumer
/// instance and input port). All upstream wires converge on any input
/// port; everything leaves on output port 0, which the rewrite pass wires
/// to the consumer.
pub struct SealGate {
    mgr: SealManager,
    key_attrs: Vec<String>,
    binding: SealBinding,
    /// Queries delayed until their partition releases.
    held: BTreeMap<Value, Vec<Tuple>>,
    /// Seal punctuations collected per open partition, one per distinct
    /// producer (duplicated votes collapse), re-emitted after the
    /// partition's records on release so downstream hops running the
    /// protocol natively can complete their own unanimous votes.
    pending_seals: BTreeMap<Value, BTreeMap<usize, Message>>,
    released: BTreeSet<Value>,
    stats: SealGateStats,
    name: String,
}

impl SealGate {
    /// Build a gate enforcing `binding` for seal punctuations keyed by
    /// the single attribute `key_attr`.
    #[must_use]
    pub fn new(key_attr: impl Into<String>, binding: SealBinding, name: impl Into<String>) -> Self {
        SealGate::new_multi(vec![key_attr.into()], binding, name)
    }

    /// Build a gate sealing on a composite key: `key_attrs` in canonical
    /// (sorted) order, paired positionally with the binding's key columns.
    ///
    /// # Panics
    /// Panics when the attribute and column lists disagree in length.
    #[must_use]
    pub fn new_multi(
        key_attrs: Vec<String>,
        binding: SealBinding,
        name: impl Into<String>,
    ) -> Self {
        assert_eq!(
            key_attrs.len(),
            binding.key_columns.len(),
            "seal key attributes and tuple key columns must pair up"
        );
        SealGate {
            mgr: SealManager::new(binding.registry.clone()),
            key_attrs,
            binding,
            held: BTreeMap::new(),
            pending_seals: BTreeMap::new(),
            released: BTreeSet::new(),
            stats: SealGateStats::default(),
            name: name.into(),
        }
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> SealGateStats {
        SealGateStats {
            revotes: self.mgr.revotes(),
            ..self.stats
        }
    }

    fn release(&mut self, partition: Value, tuples: Vec<Tuple>, ctx: &mut Context) {
        self.stats.released += 1;
        for t in tuples {
            ctx.emit(0, Message::Data(t));
        }
        // Every collected punctuation follows the records it covers, so a
        // downstream hop running the protocol natively can complete its
        // own unanimous vote (one seal per producer, none early).
        for (_, seal) in self.pending_seals.remove(&partition).unwrap_or_default() {
            ctx.emit(0, seal);
        }
        self.released.insert(partition.clone());
        for q in self.held.remove(&partition).unwrap_or_default() {
            ctx.emit(0, Message::Data(q));
        }
    }

    fn on_covered(&mut self, partition: Value, tuple: Tuple, ctx: &mut Context) {
        match self.mgr.on_data(partition, tuple.clone()) {
            SealOutcome::Buffered | SealOutcome::Released(_) => {}
            SealOutcome::LateArrival => {
                self.stats.late_forwards += 1;
                ctx.emit(0, Message::Data(tuple));
            }
        }
    }

    fn on_query(&mut self, tuple: Tuple, ctx: &mut Context) {
        let partition = self
            .binding
            .query_partition
            .as_ref()
            .and_then(|f| f(&tuple));
        match partition {
            Some(p) if !self.released.contains(&p) => {
                self.stats.held_queries += 1;
                self.held.entry(p).or_default().push(tuple);
            }
            _ => ctx.emit(0, Message::Data(tuple)),
        }
    }
}

impl Component for SealGate {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) if t.arity() == self.binding.covered_arity => {
                match covered_partition(&self.binding.key_columns, &t) {
                    Some(partition) => self.on_covered(partition, t, ctx),
                    None => ctx.emit(0, Message::Data(t)),
                }
            }
            Message::Data(t) => self.on_query(t, ctx),
            Message::Seal(key) => {
                let Some(partition) = seal_partition(&self.key_attrs, &key) else {
                    // A seal for some other key: not ours to gate.
                    ctx.emit(0, Message::Seal(key));
                    return;
                };
                let producer = key
                    .value_of(&self.binding.producer_attr)
                    .and_then(Value::as_int)
                    .unwrap_or(0) as usize;
                // `a` = voting producer, `b` = gate instance.
                blazes_obs::record(
                    blazes_obs::EventKind::SealVote,
                    producer as u64,
                    ctx.instance.0 as u64,
                );
                match self.mgr.on_seal(partition.clone(), producer) {
                    SealOutcome::Released(tuples) => {
                        self.pending_seals
                            .entry(partition.clone())
                            .or_default()
                            .insert(producer, Message::Seal(key));
                        self.release(partition, tuples, ctx);
                    }
                    // Partial vote: remember the punctuation for the
                    // release burst (one per producer). Duplicate seal
                    // after release: absorb (idempotent).
                    SealOutcome::Buffered => {
                        if !self.released.contains(&partition) {
                            self.pending_seals
                                .entry(partition)
                                .or_default()
                                .insert(producer, Message::Seal(key));
                        }
                    }
                    SealOutcome::LateArrival => {}
                }
            }
            Message::Eos => ctx.emit(0, Message::Eos),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Counters describing one speculative gate's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecGateStats {
    /// Partitions released (unanimous vote completed).
    pub released: u64,
    /// Covered records forwarded committed after their partition released.
    pub late_forwards: u64,
    /// Covered records forwarded speculatively ahead of their seal.
    pub speculative_forwards: u64,
    /// Queries answered speculatively ahead of their partition's seal.
    pub speculative_queries: u64,
    /// Queries held back the blocking way (burned partitions only).
    pub held_queries: u64,
    /// Speculation sessions aborted by a straggler record arriving behind
    /// a speculatively answered query.
    pub violations: u64,
    /// Speculation sessions opened.
    pub sessions: u64,
    /// Sessions resolved by the runtime's end-of-run drain signal (the
    /// never-sealed case: some partition's unanimous vote never arrived).
    pub drained_sessions: u64,
}

/// Everything emitted speculatively for one partition, kept so a
/// violation can re-emit it — committed for partitions whose vote had
/// completed, under a fresh epoch for partitions still open.
#[derive(Default)]
struct PartRetain {
    records: Vec<Tuple>,
    seals: Vec<Message>,
    queries: Vec<Tuple>,
    released: bool,
}

/// The time-warp seal operator: same wire protocol as [`SealGate`], but
/// optimistic. Covered records and queries flow through immediately,
/// tagged with a speculation epoch (the *session*); the session commits
/// once every partition it touched has completed its unanimous vote. A
/// straggler record arriving behind a speculatively answered query of the
/// same partition proves that answer saw an incomplete partition — the
/// gate then aborts the whole session (rolling back every consumer that
/// used its output), re-emits the already-voted partitions committed, and
/// re-speculates the rest under a fresh session. The violated partition is
/// permanently *burned* back to the blocking protocol, so each violation
/// retires one partition from speculation and the abort count is bounded
/// by the partition count.
///
/// Digest identity with the blocking gate rests on two facts: violation
/// detection is complete (any record arriving behind a speculative query
/// of an open partition aborts, so a surviving speculative answer saw the
/// full partition), and query responses are functions of the queried
/// partition's final contents only.
///
/// Only meaningful under the parallel backend with
/// `ParTuning::with_speculation` — the simulator rejects speculative
/// emissions.
pub struct SpeculativeSealGate {
    mgr: SealManager,
    key_attrs: Vec<String>,
    binding: SealBinding,
    /// Seal punctuations collected per open partition, one per distinct
    /// producer, exactly as in the blocking gate.
    pending_seals: BTreeMap<Value, BTreeMap<usize, Message>>,
    released: BTreeSet<Value>,
    /// The open speculation epoch, if any. One session tags all
    /// speculative traffic until it commits or aborts.
    session: Option<u64>,
    /// Monotonic per-gate sequence for minting distinct epoch ids.
    epoch_seq: u64,
    /// Speculative output per partition, for re-emission on violation.
    retained: BTreeMap<Value, PartRetain>,
    /// Partitions in the order their votes completed during this session,
    /// so a violation can re-emit their bursts in release order.
    release_order: Vec<Value>,
    /// Partitions retired from speculation by a violation.
    burned: BTreeSet<Value>,
    /// Blocking-style held queries, burned partitions only.
    held: BTreeMap<Value, Vec<Tuple>>,
    stats: SpecGateStats,
    name: String,
}

impl SpeculativeSealGate {
    /// Build a speculative gate; `key_attrs` in canonical (sorted) order,
    /// paired positionally with the binding's key columns.
    ///
    /// # Panics
    /// Panics when the attribute and column lists disagree in length.
    #[must_use]
    pub fn new(key_attrs: Vec<String>, binding: SealBinding, name: impl Into<String>) -> Self {
        assert_eq!(
            key_attrs.len(),
            binding.key_columns.len(),
            "seal key attributes and tuple key columns must pair up"
        );
        SpeculativeSealGate {
            mgr: SealManager::new(binding.registry.clone()),
            key_attrs,
            binding,
            pending_seals: BTreeMap::new(),
            released: BTreeSet::new(),
            session: None,
            epoch_seq: 0,
            retained: BTreeMap::new(),
            release_order: Vec::new(),
            burned: BTreeSet::new(),
            held: BTreeMap::new(),
            stats: SpecGateStats::default(),
            name: name.into(),
        }
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> SpecGateStats {
        self.stats
    }

    /// The current session epoch, minted lazily on first speculative
    /// emission. Ids embed the gate's instance so concurrent gates never
    /// collide; 0 is reserved for "committed".
    fn session_epoch(&mut self, ctx: &Context) -> u64 {
        if let Some(e) = self.session {
            return e;
        }
        self.epoch_seq += 1;
        let e = ((ctx.instance.0 as u64 + 1) << 32) | self.epoch_seq;
        self.session = Some(e);
        self.stats.sessions += 1;
        e
    }

    fn on_covered(&mut self, partition: Value, tuple: Tuple, ctx: &mut Context) {
        match self.mgr.on_data(partition.clone(), tuple.clone()) {
            SealOutcome::LateArrival => {
                // After release the partition's contents are final on
                // both gates; forward committed exactly like blocking.
                self.stats.late_forwards += 1;
                ctx.emit(0, Message::Data(tuple));
            }
            SealOutcome::Buffered | SealOutcome::Released(_) => {
                if self.burned.contains(&partition) {
                    // Burned partitions run the blocking protocol: the
                    // manager buffers, the unanimous vote releases.
                    return;
                }
                if self
                    .retained
                    .get(&partition)
                    .is_some_and(|r| !r.queries.is_empty())
                {
                    // A straggler behind a speculatively answered query
                    // of the same partition: that answer saw an
                    // incomplete partition. Abort the session.
                    self.violation(partition, ctx);
                    return;
                }
                let epoch = self.session_epoch(ctx);
                self.stats.speculative_forwards += 1;
                ctx.emit_speculative(0, Message::Data(tuple.clone()), epoch);
                self.retained
                    .entry(partition)
                    .or_default()
                    .records
                    .push(tuple);
            }
        }
    }

    fn on_query(&mut self, tuple: Tuple, ctx: &mut Context) {
        let partition = self
            .binding
            .query_partition
            .as_ref()
            .and_then(|f| f(&tuple));
        match partition {
            Some(p) if self.burned.contains(&p) => {
                self.stats.held_queries += 1;
                self.held.entry(p).or_default().push(tuple);
            }
            Some(p) if self.released.contains(&p) && !self.retained.contains_key(&p) => {
                // Released outside any live session: fully committed.
                ctx.emit(0, Message::Data(tuple));
            }
            Some(p) => {
                // Open, or released within the live session: answer now,
                // speculatively. For an open partition this also arms the
                // violation trigger — a later record for `p` aborts.
                let epoch = self.session_epoch(ctx);
                self.stats.speculative_queries += 1;
                ctx.emit_speculative(0, Message::Data(tuple.clone()), epoch);
                self.retained.entry(p).or_default().queries.push(tuple);
            }
            None => ctx.emit(0, Message::Data(tuple)),
        }
    }

    fn release_spec(&mut self, partition: Value, tuples: Vec<Tuple>, ctx: &mut Context) {
        self.stats.released += 1;
        let seals: Vec<Message> = self
            .pending_seals
            .remove(&partition)
            .unwrap_or_default()
            .into_values()
            .collect();
        if self.burned.remove(&partition) {
            // Blocking semantics for a burned partition: the buffered
            // burst, the punctuations, then the held queries — all
            // committed.
            for t in tuples {
                ctx.emit(0, Message::Data(t));
            }
            for s in &seals {
                ctx.emit(0, s.clone());
            }
            self.released.insert(partition.clone());
            for q in self.held.remove(&partition).unwrap_or_default() {
                ctx.emit(0, Message::Data(q));
            }
        } else if self.session.is_some() {
            // Records already flowed speculatively as they arrived; the
            // vote adds only the punctuations, tagged with the session so
            // a downstream native vote rolls back with everything else.
            let epoch = self.session_epoch(ctx);
            for s in &seals {
                ctx.emit_speculative(0, s.clone(), epoch);
            }
            self.released.insert(partition.clone());
            let retain = self.retained.entry(partition.clone()).or_default();
            retain.released = true;
            retain.seals = seals;
            self.release_order.push(partition);
        } else {
            // No speculation outstanding (a partition sealed before any
            // of its records or readers showed up): plain committed
            // release.
            for t in tuples {
                ctx.emit(0, Message::Data(t));
            }
            for s in seals {
                ctx.emit(0, s);
            }
            self.released.insert(partition);
        }
        self.maybe_commit(ctx);
    }

    /// Commit the session once every partition it touched has completed
    /// its vote. Burned partitions never block the commit: their output
    /// is committed on release regardless of the session's fate.
    fn maybe_commit(&mut self, ctx: &mut Context) {
        let Some(epoch) = self.session else { return };
        if !self.retained.values().all(|r| r.released) {
            return;
        }
        self.session = None;
        ctx.resolve_speculation(epoch, true);
        self.retained.clear();
        self.release_order.clear();
    }

    /// A straggler record invalidated a speculative answer for
    /// `violated`. Abort the session, burn the violated partition back to
    /// blocking, re-emit completed partitions committed (in release
    /// order, so consumers replay them deterministically), and
    /// re-speculate the still-open remainder under a fresh session.
    fn violation(&mut self, violated: Value, ctx: &mut Context) {
        self.stats.violations += 1;
        let old = self
            .session
            .take()
            .expect("violation implies an open session");
        self.burned.insert(violated.clone());
        if let Some(retain) = self.retained.remove(&violated) {
            // The violated partition's records stay buffered in the
            // manager (its speculative copies die with the epoch); its
            // queries wait the blocking way for the vote.
            self.stats.held_queries += retain.queries.len() as u64;
            self.held
                .entry(violated.clone())
                .or_default()
                .extend(retain.queries);
        }
        // Consumers roll back before any of the re-emissions below reach
        // them: the abort resolution is ordered ahead of these sends.
        ctx.resolve_speculation(old, false);
        let mut remaining = std::mem::take(&mut self.retained);
        for p in std::mem::take(&mut self.release_order) {
            let Some(r) = remaining.remove(&p) else {
                continue;
            };
            for t in r.records {
                ctx.emit(0, Message::Data(t));
            }
            for s in r.seals {
                ctx.emit(0, s);
            }
            for q in r.queries {
                ctx.emit(0, Message::Data(q));
            }
        }
        // Still-open partitions re-speculate under a fresh session, in
        // deterministic key order.
        for (p, r) in remaining {
            let epoch = self.session_epoch(ctx);
            let entry = self.retained.entry(p).or_default();
            for t in r.records {
                ctx.emit_speculative(0, Message::Data(t.clone()), epoch);
                entry.records.push(t);
            }
            for q in r.queries {
                ctx.emit_speculative(0, Message::Data(q.clone()), epoch);
                entry.queries.push(q);
            }
        }
    }
}

impl SpeculativeSealGate {
    /// Resolve a never-sealed session at run end. The runtime only sends
    /// the drain signal once no in-flight message can still reach this
    /// gate, so an open session here will never commit: abort it (every
    /// consumer rolls back), re-emit the partitions whose votes *did*
    /// complete committed — in release order, exactly as a violation
    /// replays them — and hold the unsealed partitions back the blocking
    /// way: records stay buffered in the manager, queries wait for a
    /// vote that, at run end, never comes. That is precisely what the
    /// blocking gate would have delivered.
    fn drain_session(&mut self, ctx: &mut Context) {
        let Some(epoch) = self.session.take() else {
            return;
        };
        self.stats.drained_sessions += 1;
        // Consumers roll back before any re-emission below reaches them.
        ctx.resolve_speculation(epoch, false);
        let mut remaining = std::mem::take(&mut self.retained);
        for p in std::mem::take(&mut self.release_order) {
            let Some(r) = remaining.remove(&p) else {
                continue;
            };
            for t in r.records {
                ctx.emit(0, Message::Data(t));
            }
            for s in r.seals {
                ctx.emit(0, s);
            }
            for q in r.queries {
                ctx.emit(0, Message::Data(q));
            }
        }
        // Unsealed partitions fall back to blocking: their records are
        // still buffered in the manager (the speculative copies died
        // with the epoch), their queries wait for the vote. No
        // re-speculation — the run is ending.
        for (p, r) in remaining {
            self.stats.held_queries += r.queries.len() as u64;
            self.held.entry(p.clone()).or_default().extend(r.queries);
            self.burned.insert(p);
        }
    }
}

impl Component for SpeculativeSealGate {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(t) if t.arity() == self.binding.covered_arity => {
                match covered_partition(&self.binding.key_columns, &t) {
                    Some(partition) => self.on_covered(partition, t, ctx),
                    None => ctx.emit(0, Message::Data(t)),
                }
            }
            Message::Data(t) => self.on_query(t, ctx),
            Message::Seal(key) => {
                let Some(partition) = seal_partition(&self.key_attrs, &key) else {
                    ctx.emit(0, Message::Seal(key));
                    return;
                };
                let producer = key
                    .value_of(&self.binding.producer_attr)
                    .and_then(Value::as_int)
                    .unwrap_or(0) as usize;
                // `a` = voting producer, `b` = gate instance.
                blazes_obs::record(
                    blazes_obs::EventKind::SealVote,
                    producer as u64,
                    ctx.instance.0 as u64,
                );
                match self.mgr.on_seal(partition.clone(), producer) {
                    SealOutcome::Released(tuples) => {
                        self.pending_seals
                            .entry(partition.clone())
                            .or_default()
                            .insert(producer, Message::Seal(key));
                        self.release_spec(partition, tuples, ctx);
                    }
                    SealOutcome::Buffered => {
                        if !self.released.contains(&partition) {
                            self.pending_seals
                                .entry(partition)
                                .or_default()
                                .insert(producer, Message::Seal(key));
                        }
                    }
                    SealOutcome::LateArrival => {}
                }
            }
            Message::Eos => ctx.emit(0, Message::Eos),
        }
    }

    fn on_drain(&mut self, ctx: &mut Context) {
        self.drain_session(ctx);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazes_coord::registry::ProducerRegistry;
    use blazes_dataflow::message::SealKey;
    use blazes_dataflow::sim::InstanceId;
    use std::sync::Arc;

    fn click(campaign: i64, n: i64) -> Tuple {
        Tuple::new([Value::Int(n), Value::Int(campaign), Value::Int(0)])
    }

    fn seal(campaign: i64, producer: i64) -> Message {
        Message::Seal(SealKey::new([
            ("campaign", Value::Int(campaign)),
            ("producer", Value::Int(producer)),
        ]))
    }

    fn gate(producers: usize, with_query_map: bool) -> SealGate {
        let mut binding = SealBinding::new(ProducerRegistry::all_produce(0..producers), 1, 3);
        if with_query_map {
            binding = binding.with_query_partition(Arc::new(|t: &Tuple| t.get(0).cloned()));
        }
        SealGate::new("campaign", binding, "gate")
    }

    fn ctx() -> Context {
        Context::new(0, InstanceId(0))
    }

    #[test]
    fn buffers_until_unanimous_vote_then_releases_with_punctuation() {
        let mut g = gate(2, false);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(1, 10)), &mut c);
        g.on_message(0, seal(1, 0), &mut c);
        assert!(c.emitted().is_empty(), "one vote of two must not release");
        g.on_message(0, Message::Data(click(1, 11)), &mut c);
        g.on_message(0, seal(1, 1), &mut c);
        let out = c.emitted();
        assert_eq!(out.len(), 4, "two records then both votes: {out:?}");
        assert_eq!(out[0].1, Message::Data(click(1, 10)));
        assert_eq!(out[1].1, Message::Data(click(1, 11)));
        assert!(matches!(out[2].1, Message::Seal(_)));
        assert!(matches!(out[3].1, Message::Seal(_)));
        assert_eq!(g.stats().released, 1);
    }

    #[test]
    fn duplicate_seals_are_idempotent() {
        let mut g = gate(2, false);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(1, 1)), &mut c);
        g.on_message(0, seal(1, 0), &mut c);
        g.on_message(0, seal(1, 0), &mut c); // duplicated vote
        assert!(c.emitted().is_empty());
        g.on_message(0, seal(1, 1), &mut c);
        // One record, then one punctuation per producer (the duplicated
        // vote collapsed).
        assert_eq!(c.emitted().len(), 3);
        g.on_message(0, seal(1, 1), &mut c); // duplicate after release
        assert_eq!(c.emitted().len(), 3, "late duplicate absorbed");
        assert_eq!(g.stats().released, 1);
    }

    #[test]
    fn seal_before_any_data_releases_empty_partition() {
        let mut g = gate(1, false);
        let mut c = ctx();
        g.on_message(0, seal(5, 0), &mut c);
        assert_eq!(c.emitted().len(), 1, "just the punctuation");
        // A straggler after release is forwarded, not lost.
        g.on_message(0, Message::Data(click(5, 9)), &mut c);
        assert_eq!(c.emitted().len(), 2);
        assert_eq!(g.stats().late_forwards, 1);
    }

    #[test]
    fn queries_are_delayed_until_their_partition_releases() {
        let mut g = gate(1, true);
        let mut c = ctx();
        let query = Tuple::new([Value::Int(2)]);
        g.on_message(0, Message::Data(query.clone()), &mut c);
        assert!(c.emitted().is_empty(), "query held until campaign 2 seals");
        g.on_message(0, Message::Data(click(2, 7)), &mut c);
        g.on_message(0, seal(2, 0), &mut c);
        let out = c.emitted();
        assert_eq!(out.len(), 3, "record, seal, then the delayed query");
        assert_eq!(out[2].1, Message::Data(query));
        assert_eq!(g.stats().held_queries, 1);
    }

    #[test]
    fn queries_for_released_partitions_pass_straight_through() {
        let mut g = gate(1, true);
        let mut c = ctx();
        g.on_message(0, seal(3, 0), &mut c);
        g.on_message(0, Message::Data(Tuple::new([Value::Int(3)])), &mut c);
        assert_eq!(c.emitted().len(), 2);
    }

    /// The chaining property: a consumer that runs the seal protocol
    /// *natively* downstream of the gate still completes its own
    /// unanimous vote, because the gate re-emits every producer's
    /// punctuation after the released records.
    #[test]
    fn released_punctuations_complete_a_downstream_native_vote() {
        let mut g = gate(2, false);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(4, 1)), &mut c);
        g.on_message(0, Message::Data(click(4, 2)), &mut c);
        g.on_message(0, seal(4, 0), &mut c);
        g.on_message(0, seal(4, 1), &mut c);

        // Replay the gate's output into a second, native seal consumer.
        let mut downstream = SealManager::new(ProducerRegistry::all_produce(0..2));
        let mut released = None;
        for (_, msg) in c.emitted() {
            match msg {
                Message::Data(t) => {
                    assert!(matches!(
                        downstream.on_data(t.get(1).cloned().unwrap(), t.clone()),
                        SealOutcome::Buffered
                    ));
                }
                Message::Seal(key) => {
                    let campaign = key.value_of("campaign").cloned().unwrap();
                    let producer = key.value_of("producer").and_then(Value::as_int).unwrap();
                    if let SealOutcome::Released(tuples) =
                        downstream.on_seal(campaign, producer as usize)
                    {
                        released = Some(tuples);
                    }
                }
                Message::Eos => {}
            }
        }
        assert_eq!(
            released.map(|t| t.len()),
            Some(2),
            "downstream unanimous vote must complete with the full buffer"
        );
    }

    #[test]
    fn unmapped_queries_and_foreign_seals_forward() {
        let mut g = gate(1, false); // no query map: queries pass through
        let mut c = ctx();
        g.on_message(0, Message::Data(Tuple::new([Value::Int(1)])), &mut c);
        g.on_message(
            0,
            Message::Seal(SealKey::new([("batch", Value::Int(0))])),
            &mut c,
        );
        g.on_message(0, Message::Eos, &mut c);
        assert_eq!(c.emitted().len(), 3);
    }

    #[test]
    fn composite_partition_identities() {
        assert_eq!(
            composite_partition(vec![Value::Int(7)]),
            Value::Int(7),
            "single values keep their raw identity"
        );
        let ab = composite_partition(vec![Value::Int(1), Value::Int(2)]);
        let ba = composite_partition(vec![Value::Int(2), Value::Int(1)]);
        assert_ne!(ab, ba, "composite order matters");
        assert_eq!(ab, Value::str("1\u{1f}2"));
        // Helpers agree on the identity from both sides of the wire.
        let t = Tuple::new([Value::Int(99), Value::Int(1), Value::Int(2)]);
        assert_eq!(covered_partition(&[1, 2], &t), Some(ab.clone()));
        let key = SealKey::new([
            ("campaign", Value::Int(1)),
            ("window", Value::Int(2)),
            ("producer", Value::Int(0)),
        ]);
        assert_eq!(
            seal_partition(&["campaign".to_string(), "window".to_string()], &key),
            Some(ab)
        );
        assert_eq!(covered_partition(&[1, 9], &t), None, "short tuple");
        assert_eq!(
            seal_partition(&["campaign".to_string(), "missing".to_string()], &key),
            None,
            "incomplete seal key is foreign"
        );
    }

    /// Multi-attribute sealing: ad-report gated on (campaign, window).
    /// Sealing one window of a campaign must not release the other.
    #[test]
    fn multi_attribute_keys_seal_independent_composites() {
        let binding = SealBinding::new(ProducerRegistry::all_produce(0..1), 1, 3)
            .with_key_columns(vec![1, 2]);
        let mut g = SealGate::new_multi(
            vec!["campaign".to_string(), "window".to_string()],
            binding,
            "gate",
        );
        let mut c = ctx();
        let click = |campaign: i64, window: i64, n: i64| {
            Message::Data(Tuple::new([
                Value::Int(n),
                Value::Int(campaign),
                Value::Int(window),
            ]))
        };
        let seal = |campaign: i64, window: i64| {
            Message::Seal(SealKey::new([
                ("campaign", Value::Int(campaign)),
                ("window", Value::Int(window)),
                ("producer", Value::Int(0)),
            ]))
        };
        g.on_message(0, click(1, 0, 10), &mut c);
        g.on_message(0, click(1, 1, 11), &mut c);
        g.on_message(0, seal(1, 0), &mut c);
        let out = c.emitted().to_vec();
        assert_eq!(out.len(), 2, "window 0's record and punctuation only");
        assert_eq!(out[0].1, click(1, 0, 10));
        assert!(matches!(out[1].1, Message::Seal(_)));
        g.on_message(0, seal(1, 1), &mut c);
        assert_eq!(c.emitted().len(), 4, "window 1 releases separately");
        assert_eq!(g.stats().released, 2);
    }

    #[test]
    #[should_panic(expected = "must pair up")]
    fn mismatched_key_columns_are_rejected() {
        let binding = SealBinding::new(ProducerRegistry::all_produce(0..1), 1, 3);
        let _ = SealGate::new_multi(
            vec!["campaign".to_string(), "window".to_string()],
            binding,
            "gate",
        );
    }

    fn spec_gate(producers: usize) -> SpeculativeSealGate {
        let binding = SealBinding::new(ProducerRegistry::all_produce(0..producers), 1, 3)
            .with_query_partition(Arc::new(|t: &Tuple| t.get(0).cloned()));
        SpeculativeSealGate::new(vec!["campaign".to_string()], binding, "spec-gate")
    }

    /// The optimistic fast path: records and queries flow immediately
    /// under a speculation epoch, and the session commits once every
    /// touched partition's vote completes.
    #[test]
    fn speculative_gate_forwards_ahead_of_the_vote_and_commits() {
        let mut g = spec_gate(2);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(1, 10)), &mut c);
        assert_eq!(c.emitted().len(), 1, "record forwarded without waiting");
        let epoch = c.emission_epoch(0);
        assert_ne!(epoch, 0, "forwarded speculatively, not committed");
        let query = Tuple::new([Value::Int(1)]);
        g.on_message(0, Message::Data(query.clone()), &mut c);
        assert_eq!(c.emitted().len(), 2, "query answered without waiting");
        assert_eq!(c.emission_epoch(1), epoch, "one session tags everything");
        assert!(c.resolutions().is_empty(), "nothing resolved yet");
        g.on_message(0, seal(1, 0), &mut c);
        g.on_message(0, seal(1, 1), &mut c);
        // Both punctuations forwarded speculatively, then the session
        // commits: every touched partition completed its vote.
        let out = c.emitted().to_vec();
        assert_eq!(out.len(), 4);
        assert!(matches!(out[2].1, Message::Seal(_)));
        assert!(matches!(out[3].1, Message::Seal(_)));
        assert_eq!(c.resolutions(), &[(epoch, true, 4)]);
        let stats = g.stats();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.speculative_forwards, 1);
        assert_eq!(stats.speculative_queries, 1);
        assert_eq!(stats.violations, 0);
    }

    /// A partially-voted partition keeps the session open: committing
    /// after one of two votes would make the speculation unfalsifiable.
    #[test]
    fn partial_votes_do_not_commit_the_session() {
        let mut g = spec_gate(2);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(1, 10)), &mut c);
        g.on_message(0, seal(1, 0), &mut c);
        assert!(c.resolutions().is_empty(), "one vote of two: still open");
        assert_eq!(g.stats().released, 0);
    }

    /// The time-warp correctness core: a record arriving behind a
    /// speculatively answered query aborts the session, burns the
    /// partition back to blocking, and the blocking replay produces
    /// exactly what the blocking gate would have.
    #[test]
    fn straggler_behind_a_speculative_query_aborts_and_replays_blocking() {
        let mut g = spec_gate(1);
        let mut c = ctx();
        let query = Tuple::new([Value::Int(1)]);
        g.on_message(0, Message::Data(click(1, 10)), &mut c);
        g.on_message(0, Message::Data(query.clone()), &mut c);
        let epoch = c.emission_epoch(0);
        g.on_message(0, Message::Data(click(1, 11)), &mut c); // straggler
        assert_eq!(c.resolutions(), &[(epoch, false, 2)], "session aborted");
        assert_eq!(c.emitted().len(), 2, "no re-speculation: all burned");
        g.on_message(0, seal(1, 0), &mut c);
        // Blocking replay: both records, the punctuation, then the held
        // query — all committed.
        let out = c.emitted().to_vec();
        assert_eq!(out.len(), 6, "{out:?}");
        assert_eq!(out[2].1, Message::Data(click(1, 10)));
        assert_eq!(out[3].1, Message::Data(click(1, 11)));
        assert!(matches!(out[4].1, Message::Seal(_)));
        assert_eq!(out[5].1, Message::Data(query));
        for i in 2..6 {
            assert_eq!(c.emission_epoch(i), 0, "replay is committed");
        }
        let stats = g.stats();
        assert_eq!(stats.violations, 1);
        assert_eq!(stats.held_queries, 1);
        assert_eq!(stats.released, 1);
    }

    /// A violation in one partition re-speculates the other open
    /// partitions under a fresh session instead of blocking them.
    #[test]
    fn violation_respeculates_untouched_partitions_under_a_fresh_epoch() {
        let mut g = spec_gate(1);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(1, 10)), &mut c);
        g.on_message(0, Message::Data(click(2, 20)), &mut c);
        g.on_message(0, Message::Data(Tuple::new([Value::Int(1)])), &mut c);
        let old = c.emission_epoch(0);
        g.on_message(0, Message::Data(click(1, 11)), &mut c); // violation
        let out = c.emitted().to_vec();
        // Abort, then campaign 2's record re-speculated under a new
        // session (campaign 1 is burned, its traffic waits for the vote).
        assert_eq!(c.resolutions(), &[(old, false, 3)]);
        assert_eq!(out.len(), 4, "{out:?}");
        assert_eq!(out[3].1, Message::Data(click(2, 20)));
        let fresh = c.emission_epoch(3);
        assert_ne!(fresh, 0);
        assert_ne!(fresh, old, "fresh session after the abort");
        assert_eq!(g.stats().sessions, 2);
        // Campaign 2's vote completes: its session commits even while
        // burned campaign 1 stays open the blocking way.
        g.on_message(0, seal(2, 0), &mut c);
        assert_eq!(
            c.resolutions().last(),
            Some(&(fresh, true, 5)),
            "fresh session commits on campaign 2's vote"
        );
    }

    /// Released-then-committed partitions stop participating in later
    /// sessions: their queries pass straight through.
    #[test]
    fn committed_partitions_answer_queries_without_speculation() {
        let mut g = spec_gate(1);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(3, 30)), &mut c);
        g.on_message(0, seal(3, 0), &mut c);
        assert_eq!(c.resolutions().len(), 1, "session committed");
        g.on_message(0, Message::Data(Tuple::new([Value::Int(3)])), &mut c);
        let out = c.emitted().to_vec();
        assert_eq!(out.len(), 3);
        assert_eq!(c.emission_epoch(2), 0, "query committed, no session");
        assert_eq!(g.stats().sessions, 1, "no new session minted");
    }

    /// The end-of-run drain: a session held open by one never-sealed
    /// partition aborts, the voted partition replays committed, and the
    /// unsealed partition's traffic is withheld — blocking semantics.
    #[test]
    fn drain_aborts_open_session_and_replays_voted_partitions_committed() {
        let mut g = spec_gate(1);
        let mut c = ctx();
        g.on_message(0, Message::Data(click(1, 10)), &mut c);
        g.on_message(0, Message::Data(click(2, 20)), &mut c);
        g.on_message(0, Message::Data(Tuple::new([Value::Int(2)])), &mut c);
        let epoch = c.emission_epoch(0);
        // Campaign 1 seals; campaign 2 never does, so the session stays
        // open (its speculation is unfalsified but unconfirmed).
        g.on_message(0, seal(1, 0), &mut c);
        assert!(
            c.resolutions().is_empty(),
            "unsealed campaign 2 holds it open"
        );
        g.on_drain(&mut c);
        // Abort, then campaign 1's burst replays committed: its record
        // and its punctuation, in release order. Campaign 2's record and
        // query are withheld exactly as the blocking gate would.
        assert_eq!(c.resolutions(), &[(epoch, false, 4)]);
        let out = c.emitted().to_vec();
        assert_eq!(out.len(), 6, "{out:?}");
        assert_eq!(out[4].1, Message::Data(click(1, 10)));
        assert!(matches!(out[5].1, Message::Seal(_)));
        assert_eq!(c.emission_epoch(4), 0, "replay is committed");
        assert_eq!(c.emission_epoch(5), 0, "replay is committed");
        assert_eq!(g.stats().drained_sessions, 1);
        assert_eq!(g.stats().held_queries, 1, "campaign 2's query waits");
        // A second drain is idempotent: no session left to resolve.
        g.on_drain(&mut c);
        assert_eq!(c.resolutions().len(), 1);
        // Should campaign 2's vote arrive after all (a premature rescue),
        // the burned partition releases blocking-style, fully committed.
        g.on_message(0, seal(2, 0), &mut c);
        let out = c.emitted().to_vec();
        assert_eq!(out.len(), 9, "record, punctuation, held query: {out:?}");
        assert_eq!(out[6].1, Message::Data(click(2, 20)));
        assert!(matches!(out[7].1, Message::Seal(_)));
        assert_eq!(out[8].1, Message::Data(Tuple::new([Value::Int(2)])));
        for i in 6..9 {
            assert_eq!(c.emission_epoch(i), 0);
        }
    }

    /// An empty partition sealed while no speculation is outstanding
    /// releases committed, exactly like the blocking gate.
    #[test]
    fn speculative_gate_releases_empty_partitions_committed() {
        let mut g = spec_gate(1);
        let mut c = ctx();
        g.on_message(0, seal(5, 0), &mut c);
        assert_eq!(c.emitted().len(), 1, "just the punctuation");
        assert_eq!(c.emission_epoch(0), 0);
        assert!(c.resolutions().is_empty(), "no session to resolve");
    }
}
