//! The coordination protocols over a real byte boundary: seal votes and
//! sequencer ticks round-trip through the distributed backend's wire
//! codec, and the protocols behave identically on the decoded stream.

use blazes_coord::registry::ProducerRegistry;
use blazes_coord::seal::{SealManager, SealOutcome};
use blazes_coord::sequencer::Sequencer;
use blazes_dataflow::dist::wire::{encode, Frame, FrameDecoder};
use blazes_dataflow::message::{Message, SealKey};
use blazes_dataflow::prelude::*;

/// One seal-protocol event, as the ad-report consumer sees it.
#[derive(Debug, Clone, PartialEq)]
enum SealEvent {
    Data { campaign: i64, tuple: Tuple },
    Vote { campaign: i64, producer: usize },
}

impl SealEvent {
    /// Encode as the message the producers actually emit on the stream.
    fn to_message(&self) -> Message {
        match self {
            SealEvent::Data { campaign, tuple } => {
                let mut values = vec![Value::Int(*campaign)];
                values.extend(tuple.0.iter().cloned());
                Message::Data(Tuple(values))
            }
            SealEvent::Vote { campaign, producer } => Message::Seal(SealKey::new([
                ("campaign", Value::Int(*campaign)),
                ("producer", Value::Int(*producer as i64)),
            ])),
        }
    }

    /// Decode from a received message (the consumer-side parse).
    fn from_message(msg: &Message) -> SealEvent {
        match msg {
            Message::Data(t) => {
                let Some(Value::Int(campaign)) = t.0.first() else {
                    panic!("data tuple without campaign column: {t:?}");
                };
                SealEvent::Data {
                    campaign: *campaign,
                    tuple: Tuple(t.0[1..].to_vec()),
                }
            }
            Message::Seal(key) => {
                let campaign = key
                    .value_of("campaign")
                    .and_then(Value::as_int)
                    .expect("vote carries campaign");
                let producer = key
                    .value_of("producer")
                    .and_then(Value::as_int)
                    .expect("vote carries producer");
                SealEvent::Vote {
                    campaign,
                    producer: producer as usize,
                }
            }
            Message::Eos => panic!("unexpected EOS in seal stream"),
        }
    }

    /// Apply to a seal manager, returning the outcome.
    fn apply(&self, mgr: &mut SealManager) -> SealOutcome {
        match self {
            SealEvent::Data { campaign, tuple } => {
                mgr.on_data(Value::Int(*campaign), tuple.clone())
            }
            SealEvent::Vote { campaign, producer } => mgr.on_seal(Value::Int(*campaign), *producer),
        }
    }
}

fn seal_script() -> Vec<SealEvent> {
    vec![
        SealEvent::Data {
            campaign: 1,
            tuple: Tuple(vec![Value::str("ad-a"), Value::Int(10)]),
        },
        SealEvent::Data {
            campaign: 2,
            tuple: Tuple(vec![Value::str("ad-b"), Value::Int(20)]),
        },
        SealEvent::Vote {
            campaign: 1,
            producer: 0,
        },
        SealEvent::Data {
            campaign: 1,
            tuple: Tuple(vec![Value::str("ad-c"), Value::Int(30)]),
        },
        SealEvent::Vote {
            campaign: 1,
            producer: 1,
        },
        SealEvent::Vote {
            campaign: 2,
            producer: 1,
        },
        // Protocol violation after release — must survive the wire too.
        SealEvent::Data {
            campaign: 1,
            tuple: Tuple(vec![Value::str("late"), Value::Int(99)]),
        },
    ]
}

fn registry() -> ProducerRegistry {
    // Campaign 1 needs unanimity from two producers; campaign 2 is
    // independently sealed by producer 1.
    let mut reg = ProducerRegistry::new();
    reg.register(Value::Int(1), [0usize, 1]);
    reg.register(Value::Int(2), [1usize]);
    reg
}

/// The unanimous-vote seal protocol reaches identical outcomes whether
/// events are applied in-process or shipped through the dist wire codec
/// (framed, chunked, reassembled) first.
#[test]
fn seal_votes_release_identically_across_the_wire() {
    let script = seal_script();

    // Reference: apply the script directly.
    let mut direct = SealManager::new(registry());
    let direct_outcomes: Vec<SealOutcome> = script.iter().map(|e| e.apply(&mut direct)).collect();

    // Wire: encode every event as a Data frame with sequence numbers,
    // concatenate, deliver one byte at a time, decode, and re-apply.
    let mut bytes = Vec::new();
    for (seq, event) in script.iter().enumerate() {
        bytes.extend_from_slice(&encode(&Frame::Data {
            wire: 7,
            seq: seq as u64,
            msg: event.to_message(),
        }));
    }
    let mut dec = FrameDecoder::new();
    let mut received = Vec::new();
    for byte in &bytes {
        dec.push(&[*byte]);
        while let Some(frame) = dec.next_frame().expect("clean stream") {
            let Frame::Data { wire, seq, msg } = frame else {
                panic!("unexpected frame kind");
            };
            assert_eq!(wire, 7);
            assert_eq!(seq, received.len() as u64);
            received.push(SealEvent::from_message(&msg));
        }
    }
    assert_eq!(received, script, "events mutated in transit");

    let mut wired = SealManager::new(registry());
    let wired_outcomes: Vec<SealOutcome> = received.iter().map(|e| e.apply(&mut wired)).collect();

    assert_eq!(wired_outcomes, direct_outcomes);
    assert_eq!(direct.released_count(), 2);
    assert_eq!(wired.released_count(), 2);
    // The late arrival was flagged on both sides.
    assert_eq!(direct_outcomes.last(), Some(&SealOutcome::LateArrival));
}

/// Sequencer ticks (globally stamped tuples) keep their total order and
/// stamps through the wire codec, so replicas on the far side of a byte
/// boundary can still verify the order.
#[test]
fn sequencer_ticks_keep_their_order_across_the_wire() {
    // Run a stamping sequencer over jittered input in the simulator.
    let mut b = SimBuilder::new(17);
    let seq = b.add_instance(Box::new(Sequencer::stamping()));
    let sink = CollectorSink::new();
    let replica = b.add_instance(Box::new(sink.clone()));
    let ordered = b.add_channel(ChannelConfig::ordered(1_000));
    b.connect(seq, PortId(0), replica, PortId(0), ordered);
    for i in 0..50i64 {
        b.inject(i as u64 * 3, seq, PortId(0), Message::data([i * i]));
    }
    b.build().run(None);
    let ticks = sink.entries();
    assert_eq!(ticks.len(), 50);

    // Ship the replica's feed as one SinkResult frame (the collect path),
    // chunked mid-frame.
    let frame = Frame::SinkResult {
        sink: 0,
        entries: ticks.clone(),
    };
    let bytes = encode(&frame);
    let mut dec = FrameDecoder::new();
    let (a, rest) = bytes.split_at(bytes.len() / 2);
    dec.push(a);
    assert_eq!(dec.next_frame().expect("clean stream"), None);
    dec.push(rest);
    let Some(Frame::SinkResult { entries, .. }) = dec.next_frame().expect("clean stream") else {
        panic!("sink result did not round-trip");
    };
    assert_eq!(entries, ticks);

    // The stamps decode to exactly 0..50 in order: a total order a remote
    // replica can verify.
    let stamps: Vec<i64> = entries
        .iter()
        .map(|(_, msg)| {
            let Message::Data(t) = msg else {
                panic!("tick is not a data tuple");
            };
            t.0.first()
                .and_then(|v| v.as_int())
                .expect("stamped tick leads with its sequence number")
        })
        .collect();
    assert_eq!(stamps, (0..50).collect::<Vec<i64>>());
}
