//! The producer registry: which producers contribute to which partition.
//!
//! The seal protocol's unanimous vote needs to know the "stakeholders"
//! contributing to a partition (paper Section V-B1). In the paper the
//! reporting servers learn this with one Zookeeper call per campaign; here
//! the registry is a plain data structure the application queries (and may
//! charge a simulated lookup latency for).

use blazes_dataflow::value::Value;
use std::collections::BTreeMap;

/// Identifier of a producer (e.g. an ad server index).
pub type ProducerId = usize;

/// Maps partition key values to the producers that contribute to them.
#[derive(Debug, Clone, Default)]
pub struct ProducerRegistry {
    by_partition: BTreeMap<Value, Vec<ProducerId>>,
    default_producers: Vec<ProducerId>,
}

impl ProducerRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        ProducerRegistry::default()
    }

    /// A registry where *every* partition is produced by all of
    /// `producers` — the paper's non-independent "Seal" topology, where all
    /// ad servers produce click records for all campaigns.
    #[must_use]
    pub fn all_produce(producers: impl IntoIterator<Item = ProducerId>) -> Self {
        ProducerRegistry {
            by_partition: BTreeMap::new(),
            default_producers: producers.into_iter().collect(),
        }
    }

    /// Register that `partition` is produced exactly by `producers`. Used
    /// for the "Independent seal" topology (each campaign mastered at one ad
    /// server).
    pub fn register(
        &mut self,
        partition: impl Into<Value>,
        producers: impl IntoIterator<Item = ProducerId>,
    ) {
        self.by_partition
            .insert(partition.into(), producers.into_iter().collect());
    }

    /// The producers of `partition` (falling back to the default set).
    #[must_use]
    pub fn producers_of(&self, partition: &Value) -> &[ProducerId] {
        self.by_partition
            .get(partition)
            .map_or(&self.default_producers, Vec::as_slice)
    }

    /// Number of producers of `partition`.
    #[must_use]
    pub fn producer_count(&self, partition: &Value) -> usize {
        self.producers_of(partition).len()
    }

    /// Is the partition single-producer? (If so, the seal protocol can skip
    /// the unanimous vote — paper Section V-B1.)
    #[must_use]
    pub fn is_independent(&self, partition: &Value) -> bool {
        self.producer_count(partition) == 1
    }

    /// Partitions explicitly registered.
    pub fn partitions(&self) -> impl Iterator<Item = &Value> {
        self.by_partition.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_produce_defaults() {
        let r = ProducerRegistry::all_produce(0..3);
        let p = Value::str("campaign-1");
        assert_eq!(r.producers_of(&p), &[0, 1, 2]);
        assert!(!r.is_independent(&p));
    }

    #[test]
    fn explicit_registration_overrides_default() {
        let mut r = ProducerRegistry::all_produce(0..3);
        r.register(Value::str("campaign-1"), [2]);
        assert_eq!(r.producers_of(&Value::str("campaign-1")), &[2]);
        assert!(r.is_independent(&Value::str("campaign-1")));
        // Others keep the default.
        assert_eq!(r.producer_count(&Value::str("campaign-2")), 3);
    }

    #[test]
    fn empty_registry_has_no_producers() {
        let r = ProducerRegistry::new();
        assert_eq!(r.producer_count(&Value::Int(1)), 0);
    }

    #[test]
    fn partitions_iterates_registered_keys() {
        let mut r = ProducerRegistry::new();
        r.register(Value::str("a"), [0]);
        r.register(Value::str("b"), [1]);
        assert_eq!(r.partitions().count(), 2);
    }
}
