//! Transactional-topology commit coordination (the paper's Storm baseline).
//!
//! Storm's "transactional topologies" ensure committers emit batches in a
//! strict total order: batch *b* commits only after batch *b−1* has been
//! committed by **every** committer. [`CommitCoordinator`] implements that
//! barrier as a component:
//!
//! * input port 0 receives readiness announcements
//!   `Data((batch_id, committer_id))` from committers that have finished
//!   processing a batch;
//! * output port 0 emits a commit grant `Data((batch_id,))` once the next
//!   in-order batch is ready at all committers. Committers apply the batch
//!   to the backing store only upon the grant.
//!
//! The serial, in-order grant stream is the coordination overhead that the
//! sealed (non-transactional) wordcount avoids in Figure 11.

use blazes_dataflow::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Batch-ordered commit barrier.
#[derive(Debug)]
pub struct CommitCoordinator {
    committers: usize,
    next_batch: i64,
    ready: BTreeMap<i64, BTreeSet<i64>>,
    granted: u64,
}

impl CommitCoordinator {
    /// A coordinator expecting `committers` distinct committer ids per
    /// batch, granting batches starting from `first_batch`.
    #[must_use]
    pub fn new(committers: usize, first_batch: i64) -> Self {
        assert!(committers > 0, "at least one committer required");
        CommitCoordinator {
            committers,
            next_batch: first_batch,
            ready: BTreeMap::new(),
            granted: 0,
        }
    }

    /// Batches granted so far.
    #[must_use]
    pub fn granted(&self) -> u64 {
        self.granted
    }

    fn try_grant(&mut self, ctx: &mut Context) {
        while let Some(voters) = self.ready.get(&self.next_batch) {
            if voters.len() < self.committers {
                break;
            }
            self.ready.remove(&self.next_batch);
            ctx.emit(0, Message::data([self.next_batch]));
            self.granted += 1;
            self.next_batch += 1;
        }
    }
}

impl Component for CommitCoordinator {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        let Message::Data(t) = &msg else { return };
        let (Some(batch), Some(committer)) = (
            t.get(0).and_then(Value::as_int),
            t.get(1).and_then(Value::as_int),
        ) else {
            return;
        };
        if batch >= self.next_batch {
            self.ready.entry(batch).or_default().insert(committer);
            self.try_grant(ctx);
        }
    }

    fn name(&self) -> &str {
        "commit-coordinator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazes_dataflow::channel::ChannelConfig;
    use blazes_dataflow::sim::SimBuilder;
    use blazes_dataflow::sinks::CollectorSink;

    fn grants(readiness: Vec<(u64, i64, i64)>, committers: usize) -> Vec<i64> {
        let mut b = SimBuilder::new(0);
        let coord = b.add_instance(Box::new(CommitCoordinator::new(committers, 0)));
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(coord, PortId(0), s, PortId(0), ChannelConfig::ordered(0));
        for (at, batch, committer) in readiness {
            b.inject(at, coord, PortId(0), Message::data([batch, committer]));
        }
        b.build().run(None);
        sink.messages()
            .iter()
            .filter_map(|m| m.as_data().and_then(|t| t.get(0)).and_then(Value::as_int))
            .collect()
    }

    #[test]
    fn grants_in_batch_order() {
        // Batch 1 becomes ready before batch 0, but grants stay ordered.
        let g = grants(vec![(0, 1, 0), (10, 0, 0)], 1);
        assert_eq!(g, vec![0, 1]);
    }

    #[test]
    fn waits_for_all_committers() {
        let g = grants(vec![(0, 0, 0)], 2);
        assert!(g.is_empty());
        let g = grants(vec![(0, 0, 0), (5, 0, 1)], 2);
        assert_eq!(g, vec![0]);
    }

    #[test]
    fn cascade_grant_when_gap_fills() {
        // Batches 1..3 ready; everything flushes once batch 0 arrives.
        let g = grants(vec![(0, 1, 0), (0, 2, 0), (0, 3, 0), (20, 0, 0)], 1);
        assert_eq!(g, vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_readiness_is_idempotent() {
        let g = grants(vec![(0, 0, 0), (1, 0, 0), (2, 0, 1)], 2);
        assert_eq!(g, vec![0]);
    }

    #[test]
    fn stale_batches_ignored() {
        let g = grants(vec![(0, 0, 0), (1, 0, 0)], 1);
        // Batch 0 granted once; the duplicate (now stale) is dropped.
        assert_eq!(g, vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one committer")]
    fn zero_committers_rejected() {
        let _ = CommitCoordinator::new(0, 0);
    }
}
