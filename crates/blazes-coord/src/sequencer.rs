//! A simulated total-order messaging service (the paper's Zookeeper
//! stand-in for the ordering strategy, Section V-B2).
//!
//! Clients send messages to the sequencer's single input port; the
//! sequencer forwards every message on its single output port in arrival
//! order. Wiring the output to each replica over an *ordered* channel
//! ([`blazes_dataflow::ChannelConfig::ordered`]) gives every replica the
//! same total delivery order.
//!
//! The cost model is the point: give the sequencer instance a non-zero
//! service time (`SimBuilder::set_service_time`) and every message pays a
//! serialization toll — the fundamental reason the paper's "Ordered" runs
//! fall behind as producers scale (Figures 12–13).

use blazes_dataflow::prelude::*;

/// The total-order forwarding component.
///
/// Optionally stamps a sequence number: with `stamp: true`, a data tuple
/// `(a, b, ...)` is forwarded as `(seq, a, b, ...)` so consumers can verify
/// or deduplicate. Control messages are forwarded unstamped.
#[derive(Debug, Default)]
pub struct Sequencer {
    next_seq: i64,
    stamp: bool,
    forwarded: u64,
}

impl Sequencer {
    /// A sequencer that forwards messages untouched.
    #[must_use]
    pub fn new() -> Self {
        Sequencer::default()
    }

    /// A sequencer that prepends a global sequence number to data tuples.
    #[must_use]
    pub fn stamping() -> Self {
        Sequencer {
            stamp: true,
            ..Sequencer::default()
        }
    }

    /// Messages forwarded so far.
    #[must_use]
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Component for Sequencer {
    fn on_message(&mut self, _port: usize, msg: Message, ctx: &mut Context) {
        self.forwarded += 1;
        let out = match (&msg, self.stamp) {
            (Message::Data(t), true) => {
                let mut values = Vec::with_capacity(t.arity() + 1);
                values.push(Value::Int(self.next_seq));
                values.extend(t.0.iter().cloned());
                self.next_seq += 1;
                Message::Data(Tuple(values))
            }
            _ => {
                if matches!(msg, Message::Data(_)) {
                    self.next_seq += 1;
                }
                msg
            }
        };
        ctx.emit(0, out);
    }

    fn name(&self) -> &str {
        "sequencer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blazes_dataflow::channel::ChannelConfig;
    use blazes_dataflow::sim::SimBuilder;
    use blazes_dataflow::sinks::CollectorSink;

    /// Two replicas fed through the sequencer over ordered channels see the
    /// same total order, even when client->sequencer channels jitter.
    #[test]
    fn replicas_agree_on_order() {
        let mut b = SimBuilder::new(99);
        let seq = b.add_instance(Box::new(Sequencer::new()));
        let r1 = CollectorSink::new();
        let r2 = CollectorSink::new();
        let i1 = b.add_instance(Box::new(r1.clone()));
        let i2 = b.add_instance(Box::new(r2.clone()));
        let ordered = b.add_channel(ChannelConfig::ordered(1_000));
        b.connect(seq, PortId(0), i1, PortId(0), ordered);
        b.connect(seq, PortId(0), i2, PortId(0), ordered);
        // Jittered arrivals at the sequencer.
        for i in 0..100i64 {
            b.inject(i as u64 * 3, seq, PortId(0), Message::data([i]));
        }
        b.build().run(None);
        assert_eq!(r1.messages(), r2.messages());
        assert_eq!(r1.len(), 100);
    }

    #[test]
    fn stamping_prepends_sequence_numbers() {
        let mut b = SimBuilder::new(0);
        let seq = b.add_instance(Box::new(Sequencer::stamping()));
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(seq, PortId(0), s, PortId(0), ChannelConfig::ordered(0));
        b.inject(0, seq, PortId(0), Message::data(["a"]));
        b.inject(1, seq, PortId(0), Message::data(["b"]));
        b.build().run(None);
        let msgs = sink.messages();
        assert_eq!(msgs[0].as_data().unwrap().get(0), Some(&Value::Int(0)));
        assert_eq!(msgs[1].as_data().unwrap().get(0), Some(&Value::Int(1)));
    }

    #[test]
    fn control_messages_pass_through() {
        let mut b = SimBuilder::new(0);
        let seq = b.add_instance(Box::new(Sequencer::stamping()));
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(seq, PortId(0), s, PortId(0), ChannelConfig::ordered(0));
        b.inject(0, seq, PortId(0), Message::Eos);
        b.build().run(None);
        assert_eq!(sink.messages(), vec![Message::Eos]);
    }

    /// The serialization toll: with service time S and N messages arriving
    /// at once, the last delivery leaves no earlier than N*S.
    #[test]
    fn sequencer_serializes_throughput() {
        let n: u64 = 200;
        let service: u64 = 500;
        let mut b = SimBuilder::new(0);
        let seq = b.add_instance(Box::new(Sequencer::new()));
        b.set_service_time(seq, service);
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(seq, PortId(0), s, PortId(0), ChannelConfig::ordered(0));
        for i in 0..n {
            b.inject(0, seq, PortId(0), Message::data([i as i64]));
        }
        let mut sim = b.build();
        let stats = sim.run(None);
        assert!(
            stats.end_time >= n * service,
            "end={} < {}",
            stats.end_time,
            n * service
        );
    }
}
