//! # blazes-coord
//!
//! Coordination substrates for the Blazes case studies — the runtime
//! counterparts of the two strategy families of the paper's Section V-B:
//!
//! * [`sequencer::Sequencer`] — a simulated total-order messaging service
//!   (the stand-in for Zookeeper / Multipaxos). All traffic funnels through
//!   one instance with a configurable service time, which is precisely the
//!   serialization bottleneck the paper's "Ordered" runs pay for.
//! * [`seal::SealManager`] — the seal-based protocol: per-partition
//!   buffering, release on punctuation, and a unanimous producer vote when a
//!   partition has several producers.
//! * [`barrier::CommitCoordinator`] — Storm-style "transactional topology"
//!   support: batch commits are released in strict batch order, one batch at
//!   a time.
//! * [`registry::ProducerRegistry`] — who produces which partition (the
//!   paper's "one call to Zookeeper per campaign" lookup).

pub mod barrier;
pub mod registry;
pub mod seal;
pub mod sequencer;

pub use barrier::CommitCoordinator;
pub use registry::ProducerRegistry;
pub use seal::{SealManager, SealOutcome};
pub use sequencer::Sequencer;
