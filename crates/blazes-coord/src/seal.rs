//! The seal protocol: per-partition buffering with unanimous producer
//! voting (paper Section V-B1).
//!
//! A consumer using sealing must
//!
//! 1. buffer each partition's records until the partition is known
//!    complete;
//! 2. for every producer contributing to the partition, collect that
//!    producer's seal punctuation (a *unanimous voting protocol* — "local,
//!    one-way coordination, limited to the stakeholders");
//! 3. release the partition for processing exactly once.
//!
//! When a partition has a single producer ("independent seal"), one seal
//! suffices and latency drops — the contrast measured in the paper's
//! Figure 14.

use crate::registry::{ProducerId, ProducerRegistry};
use blazes_dataflow::value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of feeding the seal manager one event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealOutcome {
    /// The event was buffered; the partition is still open.
    Buffered,
    /// The partition is now complete: process these tuples (in buffer
    /// order; the set is what matters — the partition is immutable now).
    Released(Vec<Tuple>),
    /// A record or seal arrived for a partition that was already released —
    /// a protocol violation (e.g. a producer emitting after sealing).
    LateArrival,
}

#[derive(Debug, Default)]
struct PartitionState {
    buffered: Vec<Tuple>,
    sealed_by: BTreeSet<ProducerId>,
    released: bool,
}

/// Tracks open partitions for one sealed input stream.
#[derive(Debug)]
pub struct SealManager {
    registry: ProducerRegistry,
    partitions: BTreeMap<Value, PartitionState>,
    released_count: u64,
    /// Votes that repeated an already-recorded (partition, producer)
    /// pair. Benign by idempotence — and exactly what a crash-recovered
    /// producer re-running its seal vote produces, so the dist chaos
    /// suite asserts on it.
    revotes: u64,
    /// Lazily bound `seal.votes` / `seal.releases` / `seal.revotes`
    /// registry counters — resolved on first use so the disabled path
    /// never touches the metrics registry.
    votes_metric: Option<std::sync::Arc<blazes_obs::Counter>>,
    releases_metric: Option<std::sync::Arc<blazes_obs::Counter>>,
    revotes_metric: Option<std::sync::Arc<blazes_obs::Counter>>,
}

impl SealManager {
    /// Create a manager over the given producer registry.
    #[must_use]
    pub fn new(registry: ProducerRegistry) -> Self {
        SealManager {
            registry,
            partitions: BTreeMap::new(),
            released_count: 0,
            revotes: 0,
            votes_metric: None,
            releases_metric: None,
            revotes_metric: None,
        }
    }

    /// Feed one data record belonging to `partition`.
    pub fn on_data(&mut self, partition: Value, tuple: Tuple) -> SealOutcome {
        let state = self.partitions.entry(partition).or_default();
        if state.released {
            return SealOutcome::LateArrival;
        }
        state.buffered.push(tuple);
        SealOutcome::Buffered
    }

    /// Feed one seal punctuation from `producer` for `partition`. Releases
    /// the partition when every registered producer has sealed it.
    pub fn on_seal(&mut self, partition: Value, producer: ProducerId) -> SealOutcome {
        let required: BTreeSet<ProducerId> = self
            .registry
            .producers_of(&partition)
            .iter()
            .copied()
            .collect();
        let state = self.partitions.entry(partition).or_default();
        if state.released {
            return SealOutcome::LateArrival;
        }
        if !state.sealed_by.insert(producer) {
            self.revotes += 1;
            if blazes_obs::enabled() {
                self.revotes_metric
                    .get_or_insert_with(|| blazes_obs::global().registry().counter("seal.revotes"))
                    .inc();
            }
        }
        if blazes_obs::enabled() {
            self.votes_metric
                .get_or_insert_with(|| blazes_obs::global().registry().counter("seal.votes"))
                .inc();
        }
        if !required.is_empty() && required.is_subset(&state.sealed_by) {
            state.released = true;
            self.released_count += 1;
            if blazes_obs::enabled() {
                blazes_obs::record(
                    blazes_obs::EventKind::SealRelease,
                    state.buffered.len() as u64,
                    state.sealed_by.len() as u64,
                );
                self.releases_metric
                    .get_or_insert_with(|| blazes_obs::global().registry().counter("seal.releases"))
                    .inc();
            }
            SealOutcome::Released(std::mem::take(&mut state.buffered))
        } else {
            SealOutcome::Buffered
        }
    }

    /// Number of partitions released so far.
    #[must_use]
    pub fn released_count(&self) -> u64 {
        self.released_count
    }

    /// Number of duplicate seal votes absorbed so far. Idempotence makes
    /// them harmless; a crash-recovered producer re-running its vote is
    /// the expected source.
    #[must_use]
    pub fn revotes(&self) -> u64 {
        self.revotes
    }

    /// Number of partitions currently open (buffering).
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.partitions.values().filter(|p| !p.released).count()
    }

    /// Total records currently buffered across open partitions.
    #[must_use]
    pub fn buffered_records(&self) -> usize {
        self.partitions
            .values()
            .filter(|p| !p.released)
            .map(|p| p.buffered.len())
            .sum()
    }

    /// Shared view of the registry.
    #[must_use]
    pub fn registry(&self) -> &ProducerRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Tuple {
        Tuple::new([v])
    }

    #[test]
    fn single_producer_releases_on_first_seal() {
        let mut reg = ProducerRegistry::new();
        reg.register(Value::str("c1"), [0]);
        let mut mgr = SealManager::new(reg);
        assert_eq!(mgr.on_data(Value::str("c1"), t(1)), SealOutcome::Buffered);
        assert_eq!(mgr.on_data(Value::str("c1"), t(2)), SealOutcome::Buffered);
        assert_eq!(
            mgr.on_seal(Value::str("c1"), 0),
            SealOutcome::Released(vec![t(1), t(2)])
        );
        assert_eq!(mgr.released_count(), 1);
    }

    #[test]
    fn unanimous_vote_required_with_multiple_producers() {
        let reg = ProducerRegistry::all_produce(0..3);
        let mut mgr = SealManager::new(reg);
        mgr.on_data(Value::str("c1"), t(10));
        assert_eq!(mgr.on_seal(Value::str("c1"), 0), SealOutcome::Buffered);
        assert_eq!(mgr.on_seal(Value::str("c1"), 1), SealOutcome::Buffered);
        // Data can still arrive between votes.
        assert_eq!(mgr.on_data(Value::str("c1"), t(11)), SealOutcome::Buffered);
        match mgr.on_seal(Value::str("c1"), 2) {
            SealOutcome::Released(tuples) => assert_eq!(tuples, vec![t(10), t(11)]),
            other => panic!("expected release, got {other:?}"),
        }
    }

    #[test]
    fn partitions_are_independent() {
        let reg = ProducerRegistry::all_produce(0..2);
        let mut mgr = SealManager::new(reg);
        mgr.on_data(Value::str("a"), t(1));
        mgr.on_data(Value::str("b"), t(2));
        mgr.on_seal(Value::str("a"), 0);
        mgr.on_seal(Value::str("a"), 1);
        assert_eq!(mgr.open_count(), 1);
        assert_eq!(mgr.buffered_records(), 1);
    }

    #[test]
    fn late_data_after_release_flagged() {
        let mut reg = ProducerRegistry::new();
        reg.register(Value::Int(1), [0]);
        let mut mgr = SealManager::new(reg);
        mgr.on_seal(Value::Int(1), 0);
        assert_eq!(mgr.on_data(Value::Int(1), t(9)), SealOutcome::LateArrival);
        assert_eq!(mgr.on_seal(Value::Int(1), 0), SealOutcome::LateArrival);
    }

    #[test]
    fn duplicate_votes_are_idempotent() {
        let reg = ProducerRegistry::all_produce(0..2);
        let mut mgr = SealManager::new(reg);
        assert_eq!(mgr.on_seal(Value::Int(1), 0), SealOutcome::Buffered);
        assert_eq!(mgr.revotes(), 0);
        assert_eq!(mgr.on_seal(Value::Int(1), 0), SealOutcome::Buffered);
        assert_eq!(mgr.revotes(), 1);
        assert!(matches!(
            mgr.on_seal(Value::Int(1), 1),
            SealOutcome::Released(_)
        ));
        assert_eq!(mgr.revotes(), 1);
    }

    #[test]
    fn no_producers_never_releases() {
        // An empty producer set means the partition can never be proven
        // complete; the manager conservatively holds it.
        let mut mgr = SealManager::new(ProducerRegistry::new());
        assert_eq!(mgr.on_seal(Value::Int(1), 0), SealOutcome::Buffered);
        assert_eq!(mgr.released_count(), 0);
    }

    #[test]
    fn votes_from_unregistered_producers_do_not_release_early() {
        let mut reg = ProducerRegistry::new();
        reg.register(Value::Int(1), [5, 6]);
        let mut mgr = SealManager::new(reg);
        assert_eq!(mgr.on_seal(Value::Int(1), 9), SealOutcome::Buffered);
        assert_eq!(mgr.on_seal(Value::Int(1), 5), SealOutcome::Buffered);
        assert!(matches!(
            mgr.on_seal(Value::Int(1), 6),
            SealOutcome::Released(_)
        ));
    }
}
