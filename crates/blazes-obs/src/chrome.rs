//! Chrome `chrome://tracing` / Perfetto JSON rendering of recorded
//! events.
//!
//! Output is the JSON-array flavor of the Trace Event Format: spans
//! (`dur_ns > 0`) become complete events (`"ph": "X"`), everything else
//! becomes instant events (`"ph": "i"`). Timestamps are microseconds with
//! nanosecond fractions preserved. Each recording process is a `pid` lane
//! (0 = coordinator / standalone), each thread within it a `tid` lane.

use crate::ring::Event;
use crate::RemoteLane;
use std::fmt::Write as _;

fn push_event(out: &mut String, first: &mut bool, pid: u32, tid: u32, ev: &Event) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let ts_us = ev.ts_ns as f64 / 1e3;
    if ev.dur_ns > 0 {
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"blazes\", \"ph\": \"X\", \"ts\": {ts_us:.3}, \
             \"dur\": {:.3}, \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"a\": {}, \"b\": {}}}}}",
            ev.kind.name(),
            ev.dur_ns as f64 / 1e3,
            ev.a,
            ev.b
        );
    } else {
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"blazes\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {ts_us:.3}, \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"a\": {}, \"b\": {}}}}}",
            ev.kind.name(),
            ev.a,
            ev.b
        );
    }
}

fn push_meta(out: &mut String, first: &mut bool, pid: u32, name: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
         \"args\": {{\"name\": \"{name}\"}}}}"
    );
}

/// Render local lanes (`(tid, events, overwritten)`) plus remote lanes
/// into one Chrome-trace JSON document.
#[must_use]
pub fn render(local_pid: u32, locals: &[(u32, Vec<Event>, u64)], remote: &[RemoteLane]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let local_name = if local_pid == 0 {
        "blazes coordinator".to_string()
    } else {
        format!("blazes process {local_pid}")
    };
    push_meta(&mut out, &mut first, local_pid, &local_name);
    let mut remote_pids: Vec<u32> = remote.iter().map(|l| l.pid).collect();
    remote_pids.sort_unstable();
    remote_pids.dedup();
    for pid in remote_pids {
        if pid != local_pid {
            push_meta(&mut out, &mut first, pid, &format!("blazes process {pid}"));
        }
    }
    for (tid, events, _overwritten) in locals {
        for ev in events {
            push_event(&mut out, &mut first, local_pid, *tid, ev);
        }
    }
    for lane in remote {
        for ev in &lane.events {
            push_event(&mut out, &mut first, lane.pid, lane.tid, ev);
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    #[test]
    fn renders_spans_instants_and_process_lanes() {
        let locals = vec![(
            0u32,
            vec![
                Event {
                    ts_ns: 1_500,
                    dur_ns: 2_000,
                    kind: EventKind::Activation,
                    a: 3,
                    b: 4,
                },
                Event {
                    ts_ns: 4_000,
                    dur_ns: 0,
                    kind: EventKind::Steal,
                    a: 1,
                    b: 0,
                },
            ],
            0u64,
        )];
        let remote = vec![RemoteLane {
            pid: 2,
            tid: 1,
            events: vec![Event {
                ts_ns: 9_000,
                dur_ns: 0,
                kind: EventKind::FrameRecv,
                a: 3,
                b: 0,
            }],
        }];
        let json = render(0, &locals, &remote);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 2.000"));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"name\": \"steal\""));
        assert!(json.contains("\"name\": \"frame_recv\""));
        assert!(json.contains("\"pid\": 2"));
        assert!(json.contains("blazes coordinator"));
        assert!(json.contains("blazes process 2"));
        // Exactly one comma between consecutive objects: a cheap
        // well-formedness smoke (the CI trace job parses it for real).
        assert!(!json.contains(",,"));
    }
}
