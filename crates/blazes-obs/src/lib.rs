//! # blazes-obs
//!
//! The observability layer shared by every Blazes runtime: a lock-free,
//! per-thread ring-buffer event tracer plus a unified metrics registry
//! (counters, gauges, HDR-style log-bucketed histograms), exporting to
//! Chrome `chrome://tracing` JSON.
//!
//! ## Design
//!
//! * **One process-wide [`Obs`]** ([`global`]) so instrumentation sites in
//!   the schedulers, seal gates, Bloom interpreter and wire codec need no
//!   handle plumbing — the same shape as the `tracing`/`metrics` crates'
//!   global collectors.
//! * **Disabled means free.** Every hot-path probe is gated on one relaxed
//!   atomic load ([`Obs::enabled`]). While disabled, no ring is ever
//!   allocated, no lock is taken and no event is written; the proof
//!   counters [`Obs::events_recorded`] and [`Obs::rings_allocated`] stay
//!   zero and the test suite pins that.
//! * **Per-thread rings, seqlock slots.** Each recording thread lazily
//!   registers one [`ring::TraceRing`]; writers never contend in the
//!   common case, yet the ring itself is safe for concurrent writers and
//!   for snapshots taken mid-write (the slot protocol detects and skips
//!   torn entries — see the property tests in `tests/prop_trace_ring.rs`).
//! * **Multi-process merge.** Distributed workers drain their rings into a
//!   wire frame; the coordinator ingests them via [`Obs::ingest_remote`]
//!   so a single Chrome-trace file shows every process lane. Each process
//!   timestamps against its own start epoch, so lanes are internally
//!   ordered but not cross-process aligned.
//!
//! ## Metric naming
//!
//! Registry names are dotted paths, `<subsystem>.<noun>[.<detail>]`:
//! `par.steals`, `par.parks`, `dist.frames.sent`, `seal.votes`,
//! `bloom.fixpoint_iters`, `latency.tuple_ns`. Counters count, gauges
//! level, histograms distribute; [`Registry::render`] dumps them all.

pub mod chrome;
pub mod metrics;
pub mod ring;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use ring::{Event, EventKind, TraceRing};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default capacity (slots, power of two) of each per-thread trace ring.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Events recorded by one remote thread, as shipped across the wire.
#[derive(Debug, Clone)]
pub struct RemoteLane {
    /// Originating process index (Chrome `pid` lane).
    pub pid: u32,
    /// Originating thread index within that process (Chrome `tid` lane).
    pub tid: u32,
    /// The drained events, in claim order.
    pub events: Vec<Event>,
}

/// The process-wide observability hub: enablement flag, per-thread trace
/// rings, remote lanes ingested from worker processes, and the metrics
/// registry.
pub struct Obs {
    enabled: AtomicBool,
    /// Chrome `pid` lane of this process (0 = coordinator / standalone).
    pid: AtomicU64,
    events: AtomicU64,
    rings_allocated: AtomicU64,
    epoch: OnceLock<Instant>,
    rings: Mutex<Vec<Arc<TraceRing>>>,
    remote: Mutex<Vec<RemoteLane>>,
    registry: Registry,
}

impl Obs {
    fn new() -> Self {
        Obs {
            enabled: AtomicBool::new(false),
            pid: AtomicU64::new(0),
            events: AtomicU64::new(0),
            rings_allocated: AtomicU64::new(0),
            epoch: OnceLock::new(),
            rings: Mutex::new(Vec::new()),
            remote: Mutex::new(Vec::new()),
            registry: Registry::new(),
        }
    }

    /// Is tracing on? One relaxed load — the entire disabled-mode cost of
    /// every instrumentation site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn tracing on or off. Enabling pins the timestamp epoch.
    pub fn set_enabled(&self, on: bool) {
        if on {
            let _ = self.epoch.get_or_init(Instant::now);
        }
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// The Chrome `pid` lane this process records under.
    #[must_use]
    pub fn pid(&self) -> u32 {
        self.pid.load(Ordering::Relaxed) as u32
    }

    /// Set the Chrome `pid` lane (distributed workers use their process
    /// index + 1; the coordinator keeps 0).
    pub fn set_pid(&self, pid: u32) {
        self.pid.store(u64::from(pid), Ordering::Relaxed);
    }

    /// Total events recorded since process start. Stays 0 while tracing
    /// has never been enabled — the "tracing off costs nothing" proof.
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Trace rings allocated since process start. Stays 0 while tracing
    /// has never been enabled — no allocation happens on the disabled
    /// path.
    #[must_use]
    pub fn rings_allocated(&self) -> u64 {
        self.rings_allocated.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the tracing epoch, floored at 1 so 0 can serve as
    /// the "tracing was off" sentinel for span starts.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        let epoch = self.epoch.get_or_init(Instant::now);
        (epoch.elapsed().as_nanos() as u64).max(1)
    }

    /// Span-start helper: the current timestamp when tracing is enabled,
    /// 0 otherwise. Pair with [`Obs::span`].
    #[inline]
    #[must_use]
    pub fn start(&self) -> u64 {
        if self.enabled() {
            self.now_ns()
        } else {
            0
        }
    }

    /// Record an instantaneous event (no duration).
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        if self.enabled() {
            self.write(Event {
                ts_ns: self.now_ns(),
                dur_ns: 0,
                kind,
                a,
                b,
            });
        }
    }

    /// Close a span opened with [`Obs::start`]. A 0 start (tracing was off
    /// at open) is a no-op even if tracing has been enabled since, so
    /// spans never report garbage durations.
    #[inline]
    pub fn span(&self, started_ns: u64, kind: EventKind, a: u64, b: u64) {
        if started_ns != 0 && self.enabled() {
            let now = self.now_ns();
            self.write(Event {
                ts_ns: started_ns,
                dur_ns: now.saturating_sub(started_ns),
                kind,
                a,
                b,
            });
        }
    }

    /// Slow path of [`Obs::record`]/[`Obs::span`]: find (or lazily
    /// register) the calling thread's ring and push.
    fn write(&self, ev: Event) {
        thread_local! {
            static RING: std::cell::OnceCell<Arc<TraceRing>> =
                const { std::cell::OnceCell::new() };
        }
        RING.with(|cell| {
            let ring = cell.get_or_init(|| {
                let mut rings = self.rings.lock().expect("obs ring registry");
                let ring = Arc::new(TraceRing::new(DEFAULT_RING_CAPACITY, rings.len() as u32));
                rings.push(Arc::clone(&ring));
                self.rings_allocated.fetch_add(1, Ordering::Relaxed);
                ring
            });
            ring.push(ev);
        });
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    /// The unified metrics registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot every local ring: `(tid, events, overwritten)` per ring.
    #[must_use]
    pub fn lanes(&self) -> Vec<(u32, Vec<Event>, u64)> {
        let rings = self.rings.lock().expect("obs ring registry");
        rings
            .iter()
            .map(|r| (r.tid(), r.snapshot(), r.overwritten()))
            .collect()
    }

    /// Drain every local ring for shipping to a coordinator process. The
    /// rings stay registered; subsequent events start fresh lanes.
    #[must_use]
    pub fn drain_lanes(&self) -> Vec<RemoteLane> {
        let pid = self.pid();
        let rings = self.rings.lock().expect("obs ring registry");
        rings
            .iter()
            .map(|r| RemoteLane {
                pid,
                tid: r.tid(),
                events: r.drain(),
            })
            .collect()
    }

    /// Ingest lanes shipped from a remote process so the merged export
    /// shows every process.
    pub fn ingest_remote(&self, lanes: Vec<RemoteLane>) {
        self.remote.lock().expect("obs remote lanes").extend(lanes);
    }

    /// Remote lanes ingested so far (coordinator side).
    #[must_use]
    pub fn remote_lane_count(&self) -> usize {
        self.remote.lock().expect("obs remote lanes").len()
    }

    /// Render everything recorded so far — local rings plus ingested
    /// remote lanes — as Chrome `chrome://tracing` JSON.
    #[must_use]
    pub fn chrome_json(&self) -> String {
        let locals = self.lanes();
        let remote = self.remote.lock().expect("obs remote lanes").clone();
        chrome::render(self.pid(), &locals, &remote)
    }

    /// Write [`Obs::chrome_json`] to a file.
    ///
    /// # Errors
    /// Propagates the underlying file-write error.
    pub fn export_chrome(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_json())
    }

    /// Discard all recorded events (local and remote) and reset metric
    /// values. The enablement flag and proof counters are untouched.
    pub fn clear(&self) {
        for ring in self.rings.lock().expect("obs ring registry").iter() {
            let _ = ring.drain();
        }
        self.remote.lock().expect("obs remote lanes").clear();
        self.registry.clear();
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// The process-wide [`Obs`] hub.
#[must_use]
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(Obs::new)
}

/// Shorthand for `global().enabled()`.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    global().enabled()
}

/// Shorthand for `global().record(kind, a, b)`.
#[inline]
pub fn record(kind: EventKind, a: u64, b: u64) {
    global().record(kind, a, b);
}

/// Shorthand for `global().start()`.
#[inline]
#[must_use]
pub fn start() -> u64 {
    global().start()
}

/// Shorthand for `global().span(started_ns, kind, a, b)`.
#[inline]
pub fn span(started_ns: u64, kind: EventKind, a: u64, b: u64) {
    global().span(started_ns, kind, a, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test fn: phases share the process-wide Obs, so they must run
    // sequentially inside a single #[test] to avoid cross-test races.
    #[test]
    fn hub_lifecycle() {
        let obs = global();

        // Disabled: recording is a no-op and allocates nothing.
        obs.record(EventKind::Delivery, 1, 2);
        assert_eq!(obs.start(), 0);
        obs.span(0, EventKind::Activation, 0, 0);
        assert_eq!(obs.events_recorded(), 0);
        assert_eq!(obs.rings_allocated(), 0);

        // Enabled: events land in a lazily allocated ring.
        obs.set_enabled(true);
        obs.record(EventKind::Delivery, 7, 8);
        let t0 = obs.start();
        assert!(t0 > 0);
        obs.span(t0, EventKind::Activation, 3, 0);
        assert_eq!(obs.events_recorded(), 2);
        assert_eq!(obs.rings_allocated(), 1);
        let lanes = obs.lanes();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].1.len(), 2);
        assert_eq!(lanes[0].1[0].kind, EventKind::Delivery);
        assert_eq!(lanes[0].1[0].a, 7);
        assert_eq!(lanes[0].1[1].kind, EventKind::Activation);
        assert_eq!(lanes[0].1[1].a, 3);

        // Remote ingestion shows up in the merged export.
        obs.ingest_remote(vec![RemoteLane {
            pid: 2,
            tid: 0,
            events: vec![Event {
                ts_ns: 5,
                dur_ns: 0,
                kind: EventKind::FrameSend,
                a: 1,
                b: 2,
            }],
        }]);
        let json = obs.chrome_json();
        assert!(json.contains("\"delivery\""));
        assert!(json.contains("\"frame_send\""));
        assert!(json.contains("\"pid\": 2"));

        // A span opened while disabled stays a no-op after enabling.
        let before = obs.events_recorded();
        obs.span(0, EventKind::Activation, 0, 0);
        assert_eq!(obs.events_recorded(), before);

        // Drain hands the lanes over and empties the rings.
        let drained = obs.drain_lanes();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].events.len(), 2);
        assert!(obs.lanes()[0].1.is_empty());

        obs.clear();
        assert_eq!(obs.remote_lane_count(), 0);
        obs.set_enabled(false);
        obs.record(EventKind::Delivery, 0, 0);
        assert_eq!(obs.events_recorded(), before);
    }
}
