//! The lock-free trace ring: a fixed, power-of-two array of seqlock slots
//! with overwrite-oldest semantics.
//!
//! Writers claim a monotonically increasing slot index with one
//! `fetch_add` and publish through a per-slot sequence word, so pushes are
//! wait-free for the common single-writer-per-thread case and lock-free
//! under concurrent writers. Readers ([`TraceRing::snapshot`]) validate
//! each slot's sequence before and after copying the payload and skip any
//! slot caught mid-write — a snapshot never blocks a writer and never
//! returns a torn event. The payload words are themselves atomics, so the
//! seqlock carries no undefined-behavior caveat.
//!
//! When the ring laps, older events are overwritten and counted
//! ([`TraceRing::overwritten`]); when two writers collide on the same slot
//! (one writer stalled a full lap — vanishingly rare at 2^16 slots), the
//! newcomer drops its event rather than blocking, counted the same way.

use std::sync::atomic::{AtomicU64, Ordering};

/// What happened. The discriminant crosses the wire, so variants are
/// append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum EventKind {
    /// A message batch delivered to an instance mailbox (`a` = instance,
    /// `b` = batch size).
    Delivery = 0,
    /// One instance activation — drain + process of its mailbox batch
    /// (`a` = instance, `b` = events processed). Span.
    Activation = 1,
    /// A task obtained by stealing from a peer deque (`a` = victim worker).
    Steal = 2,
    /// A task popped from the global injector.
    InjectorPop = 3,
    /// A worker parked idle (`a` = worker). Span over the parked period.
    Park = 4,
    /// A parked peer woken by a send (`a` = waker worker).
    Wakeup = 5,
    /// A seal vote arrived at a gate (`a` = partition hash, `b` = votes
    /// so far).
    SealVote = 6,
    /// A sealed partition released downstream (`a` = partition hash,
    /// `b` = tuples released).
    SealRelease = 7,
    /// A speculation epoch opened (`a` = epoch).
    EpochOpen = 8,
    /// A speculation epoch committed (`a` = epoch).
    EpochCommit = 9,
    /// A speculation epoch aborted — rollback (`a` = epoch).
    EpochAbort = 10,
    /// A rescue pass over stuck speculative state (`a` = pass).
    Rescue = 11,
    /// One stratum evaluated to fixpoint (`a` = stratum, `b` =
    /// iterations). Span.
    Stratum = 12,
    /// A wire frame sent (`a` = frame tag, `b` = destination process).
    FrameSend = 13,
    /// A wire frame received (`a` = frame tag, `b` = source process).
    FrameRecv = 14,
    /// The frame decoder lost sync and scanned for the next magic.
    Resync = 15,
    /// A tuple injected at a source (`a` = instance).
    Inject = 16,
    /// A tuple arrived at a sink (`a` = instance, `b` = source-to-sink
    /// latency in ns).
    SinkArrival = 17,
    /// A simulator virtual-time delivery (`a` = instance, `b` = virtual
    /// time).
    SimDelivery = 18,
    /// One instance rolled back to its checkpoint (`a` = epoch, `b` =
    /// instance).
    Rollback = 19,
    /// The dist coordinator respawned a dead worker (`a` = worker index,
    /// `b` = new incarnation epoch).
    Respawn = 20,
    /// The dist coordinator replayed logged frames into a (re)connected
    /// worker (`a` = worker index, `b` = frames replayed).
    Replay = 21,
}

impl EventKind {
    /// Stable lowercase name used in Chrome-trace output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Delivery => "delivery",
            EventKind::Activation => "activation",
            EventKind::Steal => "steal",
            EventKind::InjectorPop => "injector_pop",
            EventKind::Park => "park",
            EventKind::Wakeup => "wakeup",
            EventKind::SealVote => "seal_vote",
            EventKind::SealRelease => "seal_release",
            EventKind::EpochOpen => "epoch_open",
            EventKind::EpochCommit => "epoch_commit",
            EventKind::EpochAbort => "epoch_abort",
            EventKind::Rescue => "rescue",
            EventKind::Stratum => "stratum",
            EventKind::FrameSend => "frame_send",
            EventKind::FrameRecv => "frame_recv",
            EventKind::Resync => "resync",
            EventKind::Inject => "inject",
            EventKind::SinkArrival => "sink_arrival",
            EventKind::SimDelivery => "sim_delivery",
            EventKind::Rollback => "rollback",
            EventKind::Respawn => "respawn",
            EventKind::Replay => "replay",
        }
    }

    /// Decode a wire discriminant.
    #[must_use]
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            0 => EventKind::Delivery,
            1 => EventKind::Activation,
            2 => EventKind::Steal,
            3 => EventKind::InjectorPop,
            4 => EventKind::Park,
            5 => EventKind::Wakeup,
            6 => EventKind::SealVote,
            7 => EventKind::SealRelease,
            8 => EventKind::EpochOpen,
            9 => EventKind::EpochCommit,
            10 => EventKind::EpochAbort,
            11 => EventKind::Rescue,
            12 => EventKind::Stratum,
            13 => EventKind::FrameSend,
            14 => EventKind::FrameRecv,
            15 => EventKind::Resync,
            16 => EventKind::Inject,
            17 => EventKind::SinkArrival,
            18 => EventKind::SimDelivery,
            19 => EventKind::Rollback,
            20 => EventKind::Respawn,
            21 => EventKind::Replay,
            _ => return None,
        })
    }
}

/// One trace event. `Copy` and word-packable so slots can hold it as plain
/// atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the recording process's tracing epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds; 0 for instantaneous events.
    pub dur_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First kind-specific argument.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

impl Event {
    /// Pack into the five slot words.
    #[must_use]
    pub fn to_words(self) -> [u64; 5] {
        [self.ts_ns, self.dur_ns, self.kind as u64, self.a, self.b]
    }

    /// Unpack from slot words; `None` on an unknown kind discriminant.
    #[must_use]
    pub fn from_words(w: [u64; 5]) -> Option<Self> {
        Some(Event {
            ts_ns: w[0],
            dur_ns: w[1],
            kind: EventKind::from_u16(u16::try_from(w[2]).ok()?)?,
            a: w[3],
            b: w[4],
        })
    }
}

/// Slot sequence protocol: `seq == 0` empty; `seq == 2*claim + 1` write in
/// progress for `claim`; `seq == 2*claim + 2` holds the completed event of
/// `claim`. Claims only grow, so readers order surviving events by `seq`.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 5],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-capacity, overwrite-oldest, lock-free event ring. See the
/// module docs for the slot protocol.
pub struct TraceRing {
    mask: u64,
    tid: u32,
    head: AtomicU64,
    overwritten: AtomicU64,
    /// Claims at or below this floor are hidden from snapshots — how
    /// [`TraceRing::drain`] empties the ring without touching slots.
    floor: AtomicU64,
    slots: Box<[Slot]>,
}

impl TraceRing {
    /// Create a ring with `capacity` slots (rounded up to a power of two,
    /// floored at 8) for thread lane `tid`.
    #[must_use]
    pub fn new(capacity: usize, tid: u32) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        TraceRing {
            mask: (cap - 1) as u64,
            tid,
            head: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    /// The thread lane this ring records for.
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total pushes attempted.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to overwrite-on-lap (plus the rare stalled-writer
    /// collision drop).
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Push an event. Wait-free for a single writer; lock-free and
    /// drop-on-collision under concurrent writers.
    pub fn push(&self, ev: Event) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim & self.mask) as usize];
        let prev = slot.seq.load(Ordering::Acquire);
        // A slot is claimable when it holds a strictly older completed
        // write (or nothing). An in-progress or newer seq means a writer
        // stalled a full lap — drop rather than block.
        if prev % 2 == 1 || prev > 2 * claim {
            self.overwritten.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot
            .seq
            .compare_exchange(prev, 2 * claim + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.overwritten.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if prev != 0 {
            // We just evicted a completed older event.
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        let words = ev.to_words();
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * claim + 2, Ordering::Release);
    }

    /// Copy out every completed event, oldest first. Never blocks writers;
    /// slots caught mid-write are skipped, so the result may briefly miss
    /// the very newest events but never contains a torn one.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        let floor = self.floor.load(Ordering::Acquire);
        let mut out: Vec<(u64, Event)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let claim = (s1 - 2) / 2;
            if claim < floor {
                continue;
            }
            let words = std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            // Acquire reload: if the seq moved, a writer touched the
            // payload while we copied it — discard.
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue;
            }
            if let Some(ev) = Event::from_words(words) {
                out.push((s1, ev));
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, ev)| ev).collect()
    }

    /// Snapshot and logically empty the ring: future snapshots only see
    /// events pushed after this call.
    #[must_use]
    pub fn drain(&self) -> Vec<Event> {
        let events = self.snapshot();
        self.floor
            .store(self.head.load(Ordering::Relaxed), Ordering::Release);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: 0,
            kind: EventKind::Delivery,
            a: ts,
            b: ts.wrapping_mul(3),
        }
    }

    #[test]
    fn push_and_snapshot_in_order() {
        let ring = TraceRing::new(8, 0);
        for i in 1..=5 {
            ring.push(ev(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(
            snap.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        assert_eq!(ring.overwritten(), 0);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_overwrites() {
        let ring = TraceRing::new(8, 0);
        for i in 1..=20 {
            ring.push(ev(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(snap.first().map(|e| e.ts_ns), Some(13));
        assert_eq!(snap.last().map(|e| e.ts_ns), Some(20));
        assert_eq!(ring.overwritten(), 12);
        assert_eq!(ring.pushed(), 20);
    }

    #[test]
    fn drain_empties_logically() {
        let ring = TraceRing::new(8, 3);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.snapshot().is_empty());
        ring.push(ev(3));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].ts_ns, 3);
        assert_eq!(ring.tid(), 3);
    }

    #[test]
    fn event_word_roundtrip() {
        let e = Event {
            ts_ns: 42,
            dur_ns: 7,
            kind: EventKind::Stratum,
            a: 9,
            b: 11,
        };
        assert_eq!(Event::from_words(e.to_words()), Some(e));
        assert_eq!(Event::from_words([0, 0, 9999, 0, 0]), None);
    }
}
