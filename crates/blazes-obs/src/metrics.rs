//! The unified metrics registry: named counters, gauges and HDR-style
//! log-bucketed histograms, all atomic and shareable across threads.
//!
//! Names are dotted paths (`par.steals`, `latency.tuple_ns`); the first
//! registration of a name creates the metric, later lookups return the
//! same `Arc`, so instrumentation sites can cache handles and callers can
//! read them through the registry without any plumbing between the two.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous atomic level (may go down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Sub-bucket resolution bits: 2^5 = 32 sub-buckets per power of two,
/// bounding the relative quantile error at ~3%.
const SUB_BITS: u32 = 5;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Values below 2^SUB_BITS get exact unit buckets; above, one bucket row
/// per power of two. 64-bit values need (64 - SUB_BITS) rows.
const ROWS: usize = (64 - SUB_BITS as usize) + 1;
const BUCKETS: usize = ROWS * SUB_COUNT;

/// An HDR-style log-bucketed histogram of `u64` samples (typically
/// nanoseconds): fixed memory, lock-free recording, ~3% relative error on
/// reported quantiles.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64; BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    /// Bucket index for a value: exact below `2^SUB_BITS`, then
    /// `SUB_COUNT` log-spaced sub-buckets per power of two.
    fn index(v: u64) -> usize {
        if v < SUB_COUNT as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let row = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
        (row * SUB_COUNT + sub).min(BUCKETS - 1)
    }

    /// Representative (midpoint) value of a bucket index.
    fn value_of(idx: usize) -> u64 {
        let row = idx / SUB_COUNT;
        let sub = (idx % SUB_COUNT) as u64;
        if row == 0 {
            return sub;
        }
        let unit = 1u64 << (row as u32 - 1);
        let base = (1u64 << (row as u32 + SUB_BITS - 1)) + sub * unit;
        base + unit / 2
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]` (bucket midpoint; 0 when
    /// empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::value_of(idx).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A consistent-enough read of the whole distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            mean: if count == 0 {
                0.0
            } else {
                self.sum.load(Ordering::Relaxed) as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest sample.
    pub max: u64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A name-keyed registry of counters, gauges and histograms.
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("metrics registry");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("metrics registry");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("metrics registry");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Render every metric as `name value` lines (histograms as
    /// `name{count,mean,p50,p99,p999,max}`), sorted by name.
    #[must_use]
    pub fn render(&self) -> String {
        let m = self.metrics.lock().expect("metrics registry");
        let mut s = String::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(s, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(s, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(
                        s,
                        "{name}{{count={} mean={:.0} p50={} p99={} p999={} max={}}}",
                        snap.count, snap.mean, snap.p50, snap.p99, snap.p999, snap.max
                    );
                }
            }
        }
        s
    }

    /// Reset every registered metric to zero (registrations survive).
    pub fn clear(&self) {
        let m = self.metrics.lock().expect("metrics registry");
        for metric in m.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        let c = r.counter("par.steals");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("par.steals").get(), 5);
        let g = r.gauge("par.queue_depth");
        g.set(12);
        g.add(-2);
        assert_eq!(r.gauge("par.queue_depth").get(), 10);
        let text = r.render();
        assert!(text.contains("par.steals 5"));
        assert!(text.contains("par.queue_depth 10"));
        r.clear();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn name_type_conflicts_panic() {
        let r = Registry::new();
        let _ = r.gauge("x");
        let _ = r.counter("x");
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_COUNT as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_COUNT as u64);
        assert_eq!(h.quantile(0.0), 0);
        // Unit buckets below the sub-bucket threshold.
        assert_eq!(h.quantile(0.5), (SUB_COUNT as u64) / 2 - 1);
        assert_eq!(h.quantile(1.0), SUB_COUNT as u64 - 1);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let h = Histogram::new();
        // Uniform 1..=100_000: p50 ~ 50_000, p99 ~ 99_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100_000);
        let within = |got: u64, want: f64| {
            let rel = (got as f64 - want).abs() / want;
            assert!(rel < 0.04, "got {got}, want ~{want} (rel {rel:.3})");
        };
        within(snap.p50, 50_000.0);
        within(snap.p90, 90_000.0);
        within(snap.p99, 99_000.0);
        within(snap.p999, 99_900.0);
        assert_eq!(snap.max, 100_000);
        assert!((snap.mean - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(h.quantile(0.25), 0);
        assert!(h.quantile(1.0) > u64::MAX / 2);
        h.reset();
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
