//! Tokenizer for the mini-Bloom syntax.

use crate::error::{BloomError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// `<=`
    OpInstant,
    /// `<+`
    OpDeferred,
    /// `<-`
    OpDelete,
    /// `<~`
    OpAsync,
    /// `->`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=` (in join `on` clauses)
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Source line.
    pub line: usize,
}

/// Tokenize `input`. `#` starts a line comment.
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut chars = input.chars().peekable();

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::LParen,
                    line,
                });
            }
            ')' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::RParen,
                    line,
                });
            }
            '{' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::LBrace,
                    line,
                });
            }
            '}' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::RBrace,
                    line,
                });
            }
            ',' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::Comma,
                    line,
                });
            }
            '.' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::Dot,
                    line,
                });
            }
            '*' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::Star,
                    line,
                });
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '\'' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(BloomError::Lex {
                        line,
                        message: "unterminated string literal".to_string(),
                    });
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    line,
                });
            }
            '<' => {
                chars.next();
                let token = match chars.peek() {
                    Some('=') => {
                        chars.next();
                        Token::OpInstant
                    }
                    Some('+') => {
                        chars.next();
                        Token::OpDeferred
                    }
                    Some('-') => {
                        chars.next();
                        Token::OpDelete
                    }
                    Some('~') => {
                        chars.next();
                        Token::OpAsync
                    }
                    _ => Token::Lt,
                };
                tokens.push(Spanned { token, line });
            }
            '>' => {
                chars.next();
                let token = if chars.peek() == Some(&'=') {
                    chars.next();
                    Token::Ge
                } else {
                    Token::Gt
                };
                tokens.push(Spanned { token, line });
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        tokens.push(Spanned {
                            token: Token::Arrow,
                            line,
                        });
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let n = lex_int(&mut chars, line)?;
                        tokens.push(Spanned {
                            token: Token::Int(-n),
                            line,
                        });
                    }
                    _ => {
                        return Err(BloomError::Lex {
                            line,
                            message: "expected '->' or a negative number after '-'".to_string(),
                        })
                    }
                }
            }
            '=' => {
                chars.next();
                let token = if chars.peek() == Some(&'=') {
                    chars.next();
                    Token::EqEq
                } else {
                    Token::Assign
                };
                tokens.push(Spanned { token, line });
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Spanned {
                        token: Token::NotEq,
                        line,
                    });
                } else {
                    return Err(BloomError::Lex {
                        line,
                        message: "expected '=' after '!'".to_string(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let n = lex_int(&mut chars, line)?;
                tokens.push(Spanned {
                    token: Token::Int(n),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Ident(s),
                    line,
                });
            }
            other => {
                return Err(BloomError::Lex {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

fn lex_int(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, line: usize) -> Result<i64> {
    let mut s = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() || c == '_' {
            if c != '_' {
                s.push(c);
            }
            chars.next();
        } else {
            break;
        }
    }
    s.parse().map_err(|_| BloomError::Lex {
        line,
        message: format!("invalid integer literal {s:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn merge_operators() {
        assert_eq!(
            toks("a <= b <+ c <- d <~ e"),
            vec![
                Token::Ident("a".into()),
                Token::OpInstant,
                Token::Ident("b".into()),
                Token::OpDeferred,
                Token::Ident("c".into()),
                Token::OpDelete,
                Token::Ident("d".into()),
                Token::OpAsync,
                Token::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn comparisons_vs_merges() {
        assert_eq!(
            toks("n < 100"),
            vec![Token::Ident("n".into()), Token::Lt, Token::Int(100)]
        );
        assert_eq!(
            toks("n >= 5"),
            vec![Token::Ident("n".into()), Token::Ge, Token::Int(5)]
        );
        assert_eq!(toks("a == b")[1], Token::EqEq);
        assert_eq!(toks("a != b")[1], Token::NotEq);
        assert_eq!(toks("a = b")[1], Token::Assign);
    }

    #[test]
    fn arrow_and_negative_numbers() {
        assert_eq!(toks("-> -42"), vec![Token::Arrow, Token::Int(-42)]);
    }

    #[test]
    fn strings_and_comments() {
        assert_eq!(
            toks("x # comment\n'hello world'"),
            vec![Token::Ident("x".into()), Token::Str("hello world".into())]
        );
    }

    #[test]
    fn underscored_integers() {
        assert_eq!(toks("1_000"), vec![Token::Int(1000)]);
    }

    #[test]
    fn line_numbers_tracked() {
        let spanned = lex("a\nb\nc").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'oops"), Err(BloomError::Lex { .. })));
    }

    #[test]
    fn stray_bang_errors() {
        assert!(matches!(lex("!x"), Err(BloomError::Lex { .. })));
    }

    #[test]
    fn qualified_names() {
        assert_eq!(
            toks("log.id"),
            vec![
                Token::Ident("log".into()),
                Token::Dot,
                Token::Ident("id".into())
            ]
        );
    }
}
