//! The system catalog: rule dependency structure, reachability,
//! stratification and attribute lineage.
//!
//! The paper's Section VII-B derives everything Blazes needs from exactly
//! these queries over the program text:
//!
//! * which collections an input interface *reaches* (flow analysis for
//!   statefulness and path discovery);
//! * whether the program stratifies (no cycle through a nonmonotonic
//!   operator) and in what order strata evaluate;
//! * how attribute values flow from input interfaces to other collections
//!   through **identity projections** — the sound-but-incomplete injective
//!   functional dependency detector used to chase seal keys.

use crate::ast::*;
use crate::error::{BloomError, Result};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Is the rule syntactically nonmonotonic?
///
/// Deletions and antijoins always are. Aggregations are, except for the
/// *monotone threshold* pattern (the paper's THRESH query): a monotonically
/// increasing aggregate (`count`/`sum`/`max`) guarded by a lower-bound
/// `having` and a projection that drops the aggregate value — such a rule's
/// output set only ever grows.
#[must_use]
pub fn is_nonmonotonic(rule: &Rule) -> bool {
    if rule.op == MergeOp::Delete {
        return true;
    }
    match &rule.body {
        RuleBody::Select { .. } | RuleBody::Join { .. } => false,
        RuleBody::AntiJoin { .. } => true,
        RuleBody::GroupBy {
            agg,
            alias,
            having,
            projection,
            ..
        } => !is_monotone_threshold(*agg, alias, having.as_ref(), projection.as_ref()),
    }
}

fn is_monotone_threshold(
    agg: AggFun,
    alias: &str,
    having: Option<&Predicate>,
    projection: Option<&Vec<ProjItem>>,
) -> bool {
    if !agg.is_monotone_increasing() {
        return false;
    }
    // Lower-bound having on the alias: `having n > K` / `having n >= K`.
    let Some(h) = having else { return false };
    let lower_bound_on_alias = matches!(
        (&h.lhs, &h.rhs),
        (Operand::Col(c), Operand::Lit(_)) if c.column == alias && c.collection.is_empty()
    ) && h.op.is_lower_bound();
    if !lower_bound_on_alias {
        return false;
    }
    // The projection must exist and must not expose the (changing) alias.
    match projection {
        None => false,
        Some(items) => !items.iter().any(|i| match i {
            ProjItem::Col(c) => c.collection.is_empty() && c.column == alias,
            ProjItem::Lit(_) => false,
        }),
    }
}

/// Collection-level dependency edges derived from the rules: `(source,
/// head, nonmonotonic)`.
#[must_use]
pub fn dependency_edges(m: &Module) -> Vec<(String, String, bool)> {
    let mut edges = Vec::new();
    for r in &m.rules {
        let nonmono = is_nonmonotonic(r);
        for s in r.body.sources() {
            let negated = r.body.negated_sources().contains(&s);
            edges.push((s.to_string(), r.head.clone(), nonmono || negated));
        }
    }
    edges
}

/// Forward closure: every collection reachable from `start` (inclusive)
/// through rule dependencies.
#[must_use]
pub fn reachable_from(m: &Module, start: &str) -> BTreeSet<String> {
    let edges = dependency_edges(m);
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(start.to_string());
    queue.push_back(start.to_string());
    while let Some(c) = queue.pop_front() {
        for (src, head, _) in &edges {
            if *src == c && seen.insert(head.clone()) {
                queue.push_back(head.clone());
            }
        }
    }
    seen
}

/// Does data from `from` flow into `to`?
#[must_use]
pub fn reaches(m: &Module, from: &str, to: &str) -> bool {
    reachable_from(m, from).contains(to)
}

/// Does input interface `input` modify persistent state (reach a table)?
#[must_use]
pub fn writes_state(m: &Module, input: &str) -> bool {
    let closure = reachable_from(m, input);
    m.collections
        .iter()
        .any(|c| c.kind == CollectionKind::Table && closure.contains(&c.name))
}

/// Stratify the module's **instantaneous** rules: assign each collection a
/// stratum such that monotonic derivations stay within a stratum and
/// nonmonotonic derivations strictly increase it. Errors if a cycle passes
/// through a nonmonotonic rule.
pub fn stratify(m: &Module) -> Result<BTreeMap<String, usize>> {
    // Only instantaneous rules constrain in-timestep evaluation order.
    let edges: Vec<(String, String, bool)> = m
        .rules
        .iter()
        .filter(|r| r.op == MergeOp::Instant)
        .flat_map(|r| {
            let nonmono = match &r.body {
                // All aggregations (even monotone thresholds) evaluate after
                // their source is complete within the timestep.
                RuleBody::GroupBy { .. } | RuleBody::AntiJoin { .. } => true,
                _ => false,
            };
            r.body
                .sources()
                .into_iter()
                .map(|s| (s.to_string(), r.head.clone(), nonmono))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut strata: BTreeMap<String, usize> = BTreeMap::new();
    for c in &m.collections {
        strata.insert(c.name.clone(), 0);
    }
    // Bellman-Ford style relaxation; more than |collections| rounds of
    // change means a positive (nonmonotonic) cycle.
    let n = m.collections.len();
    for round in 0..=n {
        let mut changed = false;
        for (src, head, nonmono) in &edges {
            let needed = strata[src] + usize::from(*nonmono);
            if strata[head] < needed {
                strata.insert(head.clone(), needed);
                changed = true;
            }
        }
        if !changed {
            return Ok(strata);
        }
        if round == n {
            break;
        }
    }
    Err(BloomError::Unstratifiable(
        "cycle through a nonmonotonic operator".to_string(),
    ))
}

/// A precomputed evaluation schedule derived from the catalog: the stratum
/// assignment, the instantaneous rules grouped per stratum (program order
/// preserved within a stratum), and the per-rule **read-set** — exactly the
/// collections each rule's body scans.
///
/// The interpreter's semi-naive loop consults read-sets to skip rules none
/// of whose sources gained tuples in the previous fixpoint iteration, so
/// an unaffected rule costs a set lookup instead of a re-derivation.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Stratum of every collection.
    pub strata: BTreeMap<String, usize>,
    /// Highest assigned stratum.
    pub max_stratum: usize,
    /// Indices into `module.rules` of the instantaneous rules evaluated in
    /// each stratum (outer index = stratum).
    pub instant_by_stratum: Vec<Vec<usize>>,
    /// Read-set of every rule, index-aligned with `module.rules`.
    pub reads: Vec<Vec<String>>,
}

/// Build the evaluation [`Schedule`] for a module (validates
/// stratifiability).
pub fn schedule(m: &Module) -> Result<Schedule> {
    let strata = stratify(m)?;
    let max_stratum = strata.values().copied().max().unwrap_or(0);
    let mut instant_by_stratum = vec![Vec::new(); max_stratum + 1];
    let mut reads = Vec::with_capacity(m.rules.len());
    for (i, r) in m.rules.iter().enumerate() {
        if r.op == MergeOp::Instant {
            let s = *strata.get(&r.head).ok_or_else(|| {
                BloomError::Eval(format!("rule head {:?} is not declared", r.head))
            })?;
            instant_by_stratum[s].push(i);
        }
        reads.push(r.body.sources().into_iter().map(str::to_string).collect());
    }
    Ok(Schedule {
        strata,
        max_stratum,
        instant_by_stratum,
        reads,
    })
}

/// Trace `(collection, column)` backward through identity projections to
/// the input-interface columns it descends from.
///
/// Sound but incomplete (paper Section VII-B2): only chains of identity
/// projections are followed; computed values (aggregates, literals) are
/// dead ends.
#[must_use]
pub fn trace_to_inputs(m: &Module, collection: &str, column: &str) -> BTreeSet<(String, String)> {
    let mut results = BTreeSet::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut queue = VecDeque::new();
    queue.push_back((collection.to_string(), column.to_string()));
    seen.insert((collection.to_string(), column.to_string()));

    while let Some((coll, col)) = queue.pop_front() {
        if let Some(decl) = m.collection(&coll) {
            if decl.kind == CollectionKind::Input {
                results.insert((coll.clone(), col.clone()));
                continue;
            }
        }
        // Find rules producing `coll` and the body column that lands in
        // position of `col`.
        let Some(decl) = m.collection(&coll) else {
            continue;
        };
        let Some(pos) = decl.col_index(&col) else {
            continue;
        };
        for r in m.rules.iter().filter(|r| r.head == coll) {
            for (src_coll, src_col) in body_column_origin(m, &r.body, pos) {
                if seen.insert((src_coll.clone(), src_col.clone())) {
                    queue.push_back((src_coll, src_col));
                }
            }
        }
    }
    results
}

/// For a rule body, which `(collection, column)` feeds head position `pos`
/// via an identity projection?
fn body_column_origin(m: &Module, body: &RuleBody, pos: usize) -> Vec<(String, String)> {
    let resolve = |item: &ProjItem, default_coll: &str| -> Option<(String, String)> {
        match item {
            ProjItem::Col(c) => {
                let coll = if c.collection.is_empty() {
                    default_coll.to_string()
                } else {
                    c.collection.clone()
                };
                Some((coll, c.column.clone()))
            }
            ProjItem::Lit(_) => None,
        }
    };
    match body {
        RuleBody::Select {
            source, projection, ..
        }
        | RuleBody::AntiJoin {
            source, projection, ..
        } => match projection {
            Some(items) => items
                .get(pos)
                .and_then(|i| resolve(i, source))
                .into_iter()
                .collect(),
            None => {
                // Positional identity.
                m.collection(source)
                    .and_then(|d| d.schema.get(pos))
                    .map(|c| (source.clone(), c.clone()))
                    .into_iter()
                    .collect()
            }
        },
        RuleBody::Join {
            left, projection, ..
        } => projection
            .get(pos)
            .and_then(|i| resolve(i, left))
            .into_iter()
            .collect(),
        RuleBody::GroupBy {
            source,
            group_by,
            alias,
            projection,
            ..
        } => {
            let default_items: Vec<ProjItem>;
            let items: &[ProjItem] = match projection {
                Some(p) => p,
                None => {
                    default_items = group_by
                        .iter()
                        .cloned()
                        .map(ProjItem::Col)
                        .chain(std::iter::once(ProjItem::Col(ColRef {
                            collection: String::new(),
                            column: alias.clone(),
                        })))
                        .collect();
                    &default_items
                }
            };
            match items.get(pos) {
                Some(ProjItem::Col(c)) if c.collection.is_empty() && c.column == *alias => {
                    Vec::new() // the aggregate value is computed, not traced
                }
                Some(item) => resolve(item, source).into_iter().collect(),
                None => Vec::new(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    const REPORT: &str = r#"
module Report {
  input click(id, campaign, window)
  input request(id)
  output response(id, n)
  table log(id, campaign, window)
  scratch poor(id, n)

  log <= click
  poor <= log group by (log.id) agg count(*) as n having n < 100
  response <~ (poor * request) on (poor.id = request.id) -> (poor.id, poor.n)
}
"#;

    #[test]
    fn schedule_groups_instant_rules_and_read_sets() {
        let m = parse_module(REPORT).unwrap();
        let sched = schedule(&m).unwrap();
        assert_eq!(sched.max_stratum, 1);
        // Only `log <= click` and `poor <= ...` are instant; the async
        // response rule never joins the fixpoint.
        assert_eq!(sched.instant_by_stratum[0], vec![0]);
        assert_eq!(sched.instant_by_stratum[1], vec![1]);
        assert_eq!(sched.reads[0], vec!["click".to_string()]);
        assert_eq!(sched.reads[1], vec!["log".to_string()]);
        assert_eq!(
            sched.reads[2],
            vec!["poor".to_string(), "request".to_string()]
        );
    }

    #[test]
    fn nonmonotonicity_detection() {
        let m = parse_module(REPORT).unwrap();
        assert!(!is_nonmonotonic(&m.rules[0])); // log <= click
        assert!(is_nonmonotonic(&m.rules[1])); // upper-bound having
        assert!(!is_nonmonotonic(&m.rules[2])); // join
    }

    #[test]
    fn thresh_pattern_is_monotone() {
        let m = parse_module(
            r#"
module T {
  input click(id)
  output thresh(id)
  table log(id)
  log <= click
  thresh <~ log group by (log.id) agg count(*) as n having n > 1000 -> (log.id)
}
"#,
        )
        .unwrap();
        assert!(!is_nonmonotonic(&m.rules[1]), "THRESH is confluent");
    }

    #[test]
    fn thresh_without_projection_is_nonmonotone() {
        // Exposing the changing count defeats the monotone-threshold pattern.
        let m = parse_module(
            r#"
module T {
  input click(id)
  output thresh(id, n)
  table log(id)
  log <= click
  thresh <~ log group by (log.id) agg count(*) as n having n > 1000
}
"#,
        )
        .unwrap();
        assert!(is_nonmonotonic(&m.rules[1]));
    }

    #[test]
    fn min_aggregate_is_nonmonotone_even_with_lower_bound() {
        let m = parse_module(
            r#"
module T {
  input click(id, latency)
  output fast(id)
  table log(id, latency)
  log <= click
  fast <~ log group by (log.id) agg min(log.latency) as n having n > 10 -> (log.id)
}
"#,
        )
        .unwrap();
        assert!(is_nonmonotonic(&m.rules[1]));
    }

    #[test]
    fn deletion_is_nonmonotonic() {
        let m = parse_module("module M { input a(x) table t(x) t <- a }").unwrap();
        assert!(is_nonmonotonic(&m.rules[0]));
    }

    #[test]
    fn reachability() {
        let m = parse_module(REPORT).unwrap();
        assert!(reaches(&m, "click", "response"));
        assert!(reaches(&m, "request", "response"));
        assert!(reaches(&m, "click", "log"));
        assert!(!reaches(&m, "request", "log"));
    }

    #[test]
    fn state_flow_analysis() {
        let m = parse_module(REPORT).unwrap();
        assert!(writes_state(&m, "click"), "click feeds the log table");
        assert!(!writes_state(&m, "request"), "requests are read-only");
    }

    #[test]
    fn stratification_orders_aggregation() {
        let m = parse_module(REPORT).unwrap();
        let strata = stratify(&m).unwrap();
        assert!(strata["poor"] > strata["log"]);
    }

    #[test]
    fn unstratifiable_cycle_rejected() {
        let m = parse_module(
            r#"
module Bad {
  input a(x)
  scratch p(x)
  scratch q(x)
  p <= a
  p <= q not in a on (q.x = a.x)
  q <= p
}
"#,
        )
        .unwrap();
        assert!(matches!(stratify(&m), Err(BloomError::Unstratifiable(_))));
    }

    #[test]
    fn monotonic_cycle_is_fine() {
        let m = parse_module(
            r#"
module Ok {
  input a(x)
  scratch p(x)
  scratch q(x)
  p <= a
  p <= q
  q <= p
}
"#,
        )
        .unwrap();
        assert!(stratify(&m).is_ok());
    }

    #[test]
    fn lineage_traces_through_table_and_join() {
        let m = parse_module(REPORT).unwrap();
        // response.id <- poor.id <- log.id (group key) <- click.id
        let origins = trace_to_inputs(&m, "response", "id");
        assert!(
            origins.contains(&("click".to_string(), "id".to_string())),
            "{origins:?}"
        );
        // ... and requests also flow into the join's left side? No: the
        // projection takes poor.id, so request.id is not an origin.
        assert!(!origins.contains(&("request".to_string(), "id".to_string())));
    }

    #[test]
    fn aggregate_value_has_no_lineage() {
        let m = parse_module(REPORT).unwrap();
        let origins = trace_to_inputs(&m, "response", "n");
        assert!(
            origins.is_empty(),
            "count(*) is computed, not copied: {origins:?}"
        );
    }

    #[test]
    fn lineage_of_input_is_itself() {
        let m = parse_module(REPORT).unwrap();
        let origins = trace_to_inputs(&m, "click", "campaign");
        assert_eq!(origins.len(), 1);
        assert!(origins.contains(&("click".to_string(), "campaign".to_string())));
    }

    #[test]
    fn dependency_edges_flag_negation() {
        let m = parse_module(
            "module M { input a(x) input b(x) output o(x) o <= a not in b on (a.x = b.x) }",
        )
        .unwrap();
        let edges = dependency_edges(&m);
        assert!(edges.iter().any(|(s, h, nm)| s == "b" && h == "o" && *nm));
        // The positive side is flagged too: the rule is nonmonotonic.
        assert!(edges.iter().any(|(s, h, nm)| s == "a" && h == "o" && *nm));
    }
}
