//! The timestep interpreter for mini-Bloom modules.
//!
//! Bloom evaluates in discrete timesteps. Within a timestep:
//!
//! 1. pending deferred merges (`<+`) and deletions (`<-`) from the previous
//!    timestep are applied to persistent tables;
//! 2. the timestep's external inputs populate the input interfaces;
//! 3. the **instantaneous** rules (`<=`) run to fixpoint, stratum by
//!    stratum (nonmonotonic operators — aggregation, negation — only read
//!    collections from strictly lower strata, so each evaluates over a
//!    complete extension);
//! 4. deferred, deletion and asynchronous (`<~`) rules evaluate once
//!    against the final state; deferred/deleted tuples take effect next
//!    timestep, async tuples are handed to the network.
//!
//! Collections hold *sets* of tuples (Bloom's set semantics).

use crate::ast::*;
use crate::catalog;
use crate::error::{BloomError, Result};
use blazes_dataflow::value::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

type Rel = BTreeSet<Tuple>;

/// The output of one timestep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickOutput {
    /// Tuples visible on each output interface this timestep (instant
    /// derivations and async emissions, deduplicated, in sorted order).
    pub outputs: BTreeMap<String, Vec<Tuple>>,
}

impl TickOutput {
    /// Tuples emitted on one interface (empty slice if none).
    #[must_use]
    pub fn on(&self, iface: &str) -> &[Tuple] {
        self.outputs.get(iface).map_or(&[], Vec::as_slice)
    }
}

/// A running instance of a module: persistent tables plus pending deferred
/// work.
#[derive(Debug, Clone)]
pub struct ModuleInstance {
    module: Module,
    strata: BTreeMap<String, usize>,
    max_stratum: usize,
    tables: BTreeMap<String, Rel>,
    pending_insert: BTreeMap<String, Rel>,
    pending_delete: BTreeMap<String, Rel>,
    ticks: u64,
}

impl ModuleInstance {
    /// Instantiate a module (validates stratifiability).
    pub fn new(module: Module) -> Result<Self> {
        let strata = catalog::stratify(&module)?;
        let max_stratum = strata.values().copied().max().unwrap_or(0);
        let tables = module
            .collections
            .iter()
            .filter(|c| c.kind.is_persistent())
            .map(|c| (c.name.clone(), Rel::new()))
            .collect();
        Ok(ModuleInstance {
            module,
            strata,
            max_stratum,
            tables,
            pending_insert: BTreeMap::new(),
            pending_delete: BTreeMap::new(),
            ticks: 0,
        })
    }

    /// The module definition.
    #[must_use]
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Number of timesteps executed.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Contents of a persistent table (empty for unknown names).
    #[must_use]
    pub fn table(&self, name: &str) -> Vec<Tuple> {
        self.tables
            .get(name)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Execute one timestep with the given input-interface tuples.
    pub fn tick(&mut self, inputs: BTreeMap<String, Vec<Tuple>>) -> Result<TickOutput> {
        self.ticks += 1;

        // 1. Apply pending deferred work to tables.
        for (name, rel) in std::mem::take(&mut self.pending_delete) {
            if let Some(t) = self.tables.get_mut(&name) {
                for tuple in rel {
                    t.remove(&tuple);
                }
            }
        }
        let pending = std::mem::take(&mut self.pending_insert);

        // 2. Initialize the timestep state.
        let mut state: BTreeMap<String, Rel> = BTreeMap::new();
        for c in &self.module.collections {
            let mut rel = if c.kind.is_persistent() {
                self.tables.get(&c.name).cloned().unwrap_or_default()
            } else {
                Rel::new()
            };
            if let Some(p) = pending.get(&c.name) {
                rel.extend(p.iter().cloned());
            }
            state.insert(c.name.clone(), rel);
        }
        for (iface, tuples) in inputs {
            let decl = self
                .module
                .collection(&iface)
                .ok_or_else(|| BloomError::Eval(format!("unknown input interface {iface:?}")))?;
            if decl.kind != CollectionKind::Input {
                return Err(BloomError::Eval(format!(
                    "{iface:?} is not an input interface"
                )));
            }
            for t in tuples {
                if t.arity() != decl.arity() {
                    return Err(BloomError::Eval(format!(
                        "arity mismatch on {iface:?}: got {}, expected {}",
                        t.arity(),
                        decl.arity()
                    )));
                }
                state.get_mut(&iface).expect("declared").insert(t);
            }
        }

        // 3. Stratified fixpoint of instantaneous rules.
        for stratum in 0..=self.max_stratum {
            loop {
                let mut changed = false;
                for rule in &self.module.rules {
                    if rule.op != MergeOp::Instant || self.strata[&rule.head] != stratum {
                        continue;
                    }
                    let derived = eval_body(&self.module, &state, &rule.body)?;
                    let head = state.get_mut(&rule.head).expect("declared");
                    for t in derived {
                        changed |= head.insert(t);
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        // 4. Deferred / deletion / async rules against the final state.
        let mut output = TickOutput::default();
        for rule in &self.module.rules {
            match rule.op {
                MergeOp::Instant => {}
                MergeOp::Deferred => {
                    let derived = eval_body(&self.module, &state, &rule.body)?;
                    self.pending_insert
                        .entry(rule.head.clone())
                        .or_default()
                        .extend(derived);
                }
                MergeOp::Delete => {
                    let derived = eval_body(&self.module, &state, &rule.body)?;
                    self.pending_delete
                        .entry(rule.head.clone())
                        .or_default()
                        .extend(derived);
                }
                MergeOp::Async => {
                    let derived = eval_body(&self.module, &state, &rule.body)?;
                    let kind = self.module.collection(&rule.head).map(|c| c.kind);
                    if kind == Some(CollectionKind::Output) {
                        let out = output.outputs.entry(rule.head.clone()).or_default();
                        for t in derived {
                            if !out.contains(&t) {
                                out.push(t);
                            }
                        }
                    } else {
                        // Async into internal state lands next timestep.
                        self.pending_insert
                            .entry(rule.head.clone())
                            .or_default()
                            .extend(derived);
                    }
                }
            }
        }

        // Persist table contents (instant merges into tables stick).
        for c in &self.module.collections {
            if c.kind.is_persistent() {
                self.tables.insert(c.name.clone(), state[&c.name].clone());
            }
        }
        // Instantly derived output contents are also visible externally.
        for out_name in self.module.outputs() {
            let rel = &state[out_name];
            if !rel.is_empty() {
                let out = output.outputs.entry(out_name.to_string()).or_default();
                for t in rel {
                    if !out.contains(t) {
                        out.push(t.clone());
                    }
                }
            }
        }
        for v in output.outputs.values_mut() {
            v.sort();
        }
        Ok(output)
    }
}

// ---------------------------------------------------------------------
// Body evaluation
// ---------------------------------------------------------------------

fn lit_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// A row environment: qualified column lookup across one or two bound
/// collections plus an optional aggregate alias.
struct Env<'a> {
    bindings: Vec<(&'a str, &'a CollectionDecl, &'a Tuple)>,
    alias: Option<(&'a str, Value)>,
}

impl<'a> Env<'a> {
    fn lookup(&self, col: &ColRef) -> Result<Value> {
        if let Some((alias, v)) = &self.alias {
            if col.collection.is_empty() && col.column == *alias {
                return Ok(v.clone());
            }
        }
        for (name, decl, tuple) in &self.bindings {
            if !col.collection.is_empty() && col.collection != *name {
                continue;
            }
            if let Some(i) = decl.col_index(&col.column) {
                return Ok(tuple.get(i).expect("schema arity").clone());
            }
            if !col.collection.is_empty() {
                return Err(BloomError::Eval(format!(
                    "collection {:?} has no column {:?}",
                    name, col.column
                )));
            }
        }
        Err(BloomError::Eval(format!(
            "unresolved column reference {col}"
        )))
    }

    fn operand(&self, op: &Operand) -> Result<Value> {
        match op {
            Operand::Col(c) => self.lookup(c),
            Operand::Lit(l) => Ok(lit_value(l)),
        }
    }

    fn check(&self, pred: &Predicate) -> Result<bool> {
        let l = self.operand(&pred.lhs)?;
        let r = self.operand(&pred.rhs)?;
        Ok(pred.op.eval(l.cmp(&r)))
    }

    fn check_all(&self, preds: &[Predicate]) -> Result<bool> {
        for p in preds {
            if !self.check(p)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn project(&self, items: &[ProjItem]) -> Result<Tuple> {
        let mut values = Vec::with_capacity(items.len());
        for item in items {
            values.push(match item {
                ProjItem::Col(c) => self.lookup(c)?,
                ProjItem::Lit(l) => lit_value(l),
            });
        }
        Ok(Tuple(values))
    }
}

fn decl<'m>(m: &'m Module, name: &str) -> Result<&'m CollectionDecl> {
    m.collection(name)
        .ok_or_else(|| BloomError::Eval(format!("unknown collection {name:?}")))
}

fn eval_body(m: &Module, state: &BTreeMap<String, Rel>, body: &RuleBody) -> Result<Rel> {
    match body {
        RuleBody::Select {
            source,
            projection,
            predicates,
        } => {
            let d = decl(m, source)?;
            let mut out = Rel::new();
            for t in &state[source] {
                let env = Env {
                    bindings: vec![(source, d, t)],
                    alias: None,
                };
                if !env.check_all(predicates)? {
                    continue;
                }
                out.insert(match projection {
                    Some(items) => env.project(items)?,
                    None => t.clone(),
                });
            }
            Ok(out)
        }
        RuleBody::Join {
            left,
            right,
            on,
            projection,
            predicates,
        } => {
            let dl = decl(m, left)?;
            let dr = decl(m, right)?;
            let mut out = Rel::new();
            for lt in &state[left] {
                for rt in &state[right] {
                    let env = Env {
                        bindings: vec![(left, dl, lt), (right, dr, rt)],
                        alias: None,
                    };
                    let mut matched = true;
                    for (lc, rc) in on {
                        if env.lookup(lc)? != env.lookup(rc)? {
                            matched = false;
                            break;
                        }
                    }
                    if matched && env.check_all(predicates)? {
                        out.insert(env.project(projection)?);
                    }
                }
            }
            Ok(out)
        }
        RuleBody::AntiJoin {
            source,
            neg,
            on,
            projection,
            predicates,
        } => {
            let ds = decl(m, source)?;
            let dn = decl(m, neg)?;
            let mut out = Rel::new();
            for t in &state[source] {
                let mut matched = false;
                for nt in &state[neg] {
                    let env = Env {
                        bindings: vec![(source, ds, t), (neg, dn, nt)],
                        alias: None,
                    };
                    let mut all_eq = true;
                    for (lc, rc) in on {
                        if env.lookup(lc)? != env.lookup(rc)? {
                            all_eq = false;
                            break;
                        }
                    }
                    if all_eq {
                        matched = true;
                        break;
                    }
                }
                if matched {
                    continue;
                }
                let env = Env {
                    bindings: vec![(source, ds, t)],
                    alias: None,
                };
                if !env.check_all(predicates)? {
                    continue;
                }
                out.insert(match projection {
                    Some(items) => env.project(items)?,
                    None => t.clone(),
                });
            }
            Ok(out)
        }
        RuleBody::GroupBy {
            source,
            group_by,
            agg,
            agg_col,
            alias,
            having,
            projection,
        } => {
            let d = decl(m, source)?;
            // Group rows by the grouping key.
            let mut groups: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
            for t in &state[source] {
                let env = Env {
                    bindings: vec![(source, d, t)],
                    alias: None,
                };
                let mut key = Vec::with_capacity(group_by.len());
                for c in group_by {
                    key.push(env.lookup(c)?);
                }
                groups.entry(key).or_default().push(t);
            }
            let mut out = Rel::new();
            for (key, rows) in groups {
                let value = aggregate(m, source, d, *agg, agg_col.as_ref(), &rows)?;
                // Representative row for column resolution.
                let rep = rows[0];
                let env = Env {
                    bindings: vec![(source, d, rep)],
                    alias: Some((alias.as_str(), value.clone())),
                };
                if let Some(h) = having {
                    if !env.check(h)? {
                        continue;
                    }
                }
                let tuple = match projection {
                    Some(items) => env.project(items)?,
                    None => {
                        let mut values = key.clone();
                        values.push(value.clone());
                        Tuple(values)
                    }
                };
                out.insert(tuple);
            }
            Ok(out)
        }
    }
}

fn aggregate(
    _m: &Module,
    source: &str,
    d: &CollectionDecl,
    agg: AggFun,
    agg_col: Option<&ColRef>,
    rows: &[&Tuple],
) -> Result<Value> {
    let col_index = |c: &ColRef| -> Result<usize> {
        if !c.collection.is_empty() && c.collection != source {
            return Err(BloomError::Eval(format!(
                "aggregate column {c} does not belong to {source:?}"
            )));
        }
        d.col_index(&c.column)
            .ok_or_else(|| BloomError::Eval(format!("unknown aggregate column {c}")))
    };
    Ok(match agg {
        AggFun::Count => Value::Int(rows.len() as i64),
        AggFun::Sum => {
            let c = agg_col.ok_or_else(|| BloomError::Eval("sum requires a column".to_string()))?;
            let i = col_index(c)?;
            let mut sum = 0i64;
            for r in rows {
                sum += r
                    .get(i)
                    .and_then(Value::as_int)
                    .ok_or_else(|| BloomError::Eval("sum over non-integer".to_string()))?;
            }
            Value::Int(sum)
        }
        AggFun::Min | AggFun::Max => {
            let c =
                agg_col.ok_or_else(|| BloomError::Eval("min/max require a column".to_string()))?;
            let i = col_index(c)?;
            let mut vals: Vec<&Value> = rows.iter().filter_map(|r| r.get(i)).collect();
            vals.sort();
            let v = if agg == AggFun::Min {
                vals.first()
            } else {
                vals.last()
            };
            (*v.ok_or_else(|| BloomError::Eval("aggregate over empty group".to_string()))?).clone()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn inputs(pairs: &[(&str, Vec<Tuple>)]) -> BTreeMap<String, Vec<Tuple>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn t2(a: impl Into<Value>, b: impl Into<Value>) -> Tuple {
        Tuple(vec![a.into(), b.into()])
    }

    fn t1(a: impl Into<Value>) -> Tuple {
        Tuple(vec![a.into()])
    }

    #[test]
    fn select_relay() {
        let m = parse_module("module M { input a(x) output o(x) o <= a }").unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst
            .tick(inputs(&[("a", vec![t1(1i64), t1(2i64)])]))
            .unwrap();
        assert_eq!(out.on("o"), &[t1(1i64), t1(2i64)]);
    }

    #[test]
    fn tables_persist_across_ticks() {
        let m =
            parse_module("module M { input a(x) output o(x) table t(x) t <= a o <= t }").unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        inst.tick(inputs(&[("a", vec![t1(1i64)])])).unwrap();
        let out = inst.tick(inputs(&[("a", vec![t1(2i64)])])).unwrap();
        // Both the old and the new tuple are in the table.
        assert_eq!(out.on("o"), &[t1(1i64), t1(2i64)]);
        assert_eq!(inst.table("t").len(), 2);
    }

    #[test]
    fn scratches_do_not_persist() {
        let m =
            parse_module("module M { input a(x) output o(x) scratch s(x) s <= a o <= s }").unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        inst.tick(inputs(&[("a", vec![t1(1i64)])])).unwrap();
        let out = inst.tick(inputs(&[])).unwrap();
        assert!(out.on("o").is_empty());
    }

    #[test]
    fn deferred_merge_lands_next_tick() {
        let m =
            parse_module("module M { input a(x) output o(x) table t(x) t <+ a o <= t }").unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst.tick(inputs(&[("a", vec![t1(1i64)])])).unwrap();
        assert!(out.on("o").is_empty(), "deferred: not visible this tick");
        let out = inst.tick(inputs(&[])).unwrap();
        assert_eq!(out.on("o"), &[t1(1i64)]);
    }

    #[test]
    fn deletion_removes_next_tick() {
        let m = parse_module(
            r#"
module M {
  input a(x)
  input del(x)
  output o(x)
  table t(x)
  t <= a
  t <- (t * del) on (t.x = del.x) -> (t.x)
  o <= t
}
"#,
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        inst.tick(inputs(&[("a", vec![t1(1i64), t1(2i64)])]))
            .unwrap();
        let out = inst.tick(inputs(&[("del", vec![t1(1i64)])])).unwrap();
        // Deletion is deferred: tuple 1 still visible this tick.
        assert_eq!(out.on("o"), &[t1(1i64), t1(2i64)]);
        let out = inst.tick(inputs(&[])).unwrap();
        assert_eq!(out.on("o"), &[t1(2i64)]);
    }

    #[test]
    fn transitive_closure_fixpoint() {
        let m = parse_module(
            r#"
module TC {
  input edge(src, dst)
  output path(src, dst)
  table e(src, dst)
  scratch p(src, dst)
  e <= edge
  p <= e
  p <= (p * e) on (p.dst = e.src) -> (p.src, e.dst)
  path <= p
}
"#,
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst
            .tick(inputs(&[(
                "edge",
                vec![t2(1i64, 2i64), t2(2i64, 3i64), t2(3i64, 4i64)],
            )]))
            .unwrap();
        // 3 direct + 2 two-hop + 1 three-hop = 6 paths.
        assert_eq!(out.on("path").len(), 6);
        assert!(out.on("path").contains(&t2(1i64, 4i64)));
    }

    #[test]
    fn groupby_count_and_having() {
        let m = parse_module(
            r#"
module G {
  input click(id)
  output poor(id, n)
  table log(id)
  log <= click
  poor <= log group by (log.id) agg count(*) as n having n < 3
}
"#,
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        // Note set semantics: duplicates collapse, so use distinct tuples.
        let m_inputs = inputs(&[("click", vec![t1("a"), t1("b")])]);
        let out = inst.tick(m_inputs).unwrap();
        assert_eq!(out.on("poor").len(), 2);
        assert!(out.on("poor").contains(&t2("a", 1i64)));
    }

    #[test]
    fn groupby_sum_min_max() {
        let m = parse_module(
            r#"
module G {
  input obs(k, v)
  output s(k, total)
  output lo(k, v)
  output hi(k, v)
  s <= obs group by (obs.k) agg sum(obs.v) as total
  lo <= obs group by (obs.k) agg min(obs.v) as v
  hi <= obs group by (obs.k) agg max(obs.v) as v
}
"#,
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst
            .tick(inputs(&[(
                "obs",
                vec![t2("a", 1i64), t2("a", 5i64), t2("b", 3i64)],
            )]))
            .unwrap();
        assert_eq!(out.on("s"), &[t2("a", 6i64), t2("b", 3i64)]);
        assert_eq!(out.on("lo"), &[t2("a", 1i64), t2("b", 3i64)]);
        assert_eq!(out.on("hi"), &[t2("a", 5i64), t2("b", 3i64)]);
    }

    #[test]
    fn antijoin_evaluation() {
        let m = parse_module(
            r#"
module A {
  input orders(id)
  input cancels(id)
  output live(id)
  live <= orders not in cancels on (orders.id = cancels.id)
}
"#,
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst
            .tick(inputs(&[
                ("orders", vec![t1(1i64), t1(2i64), t1(3i64)]),
                ("cancels", vec![t1(2i64)]),
            ]))
            .unwrap();
        assert_eq!(out.on("live"), &[t1(1i64), t1(3i64)]);
    }

    #[test]
    fn stratified_negation_sees_complete_lower_stratum() {
        // p is derived transitively; the antijoin over p must observe the
        // full fixpoint of p, not a partial extension.
        let m = parse_module(
            r#"
module S {
  input seed(x)
  output missing(x)
  input all_vals(x)
  scratch p(x)
  p <= seed
  p <= p where p.x > 100
  missing <= all_vals not in p on (all_vals.x = p.x)
}
"#,
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst
            .tick(inputs(&[
                ("seed", vec![t1(1i64)]),
                ("all_vals", vec![t1(1i64), t1(2i64)]),
            ]))
            .unwrap();
        assert_eq!(out.on("missing"), &[t1(2i64)]);
    }

    #[test]
    fn async_output_emitted() {
        let m = parse_module("module M { input a(x) output o(x) o <~ a }").unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst.tick(inputs(&[("a", vec![t1(9i64)])])).unwrap();
        assert_eq!(out.on("o"), &[t1(9i64)]);
    }

    #[test]
    fn where_predicates_filter() {
        let m = parse_module(
            "module M { input a(x, y) output o(x, y) o <= a where a.x > 1 and a.y == 'keep' }",
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst
            .tick(inputs(&[(
                "a",
                vec![
                    Tuple(vec![Value::Int(2), Value::str("keep")]),
                    Tuple(vec![Value::Int(2), Value::str("drop")]),
                    Tuple(vec![Value::Int(0), Value::str("keep")]),
                ],
            )]))
            .unwrap();
        assert_eq!(out.on("o").len(), 1);
    }

    #[test]
    fn arity_mismatch_on_input_rejected() {
        let m = parse_module("module M { input a(x, y) output o(x, y) o <= a }").unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let err = inst.tick(inputs(&[("a", vec![t1(1i64)])])).unwrap_err();
        assert!(matches!(err, BloomError::Eval(_)));
    }

    #[test]
    fn unknown_input_rejected() {
        let m = parse_module("module M { input a(x) output o(x) o <= a }").unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let err = inst.tick(inputs(&[("ghost", vec![t1(1i64)])])).unwrap_err();
        assert!(matches!(err, BloomError::Eval(_)));
    }

    #[test]
    fn projection_with_literals() {
        let m = parse_module("module M { input a(x) output o(x, tag) o <= a -> (a.x, 'hit') }")
            .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst.tick(inputs(&[("a", vec![t1(7i64)])])).unwrap();
        assert_eq!(out.on("o"), &[t2(7i64, "hit")]);
    }
}
