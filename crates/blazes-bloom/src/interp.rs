//! The timestep interpreter for mini-Bloom modules.
//!
//! Bloom evaluates in discrete timesteps. Within a timestep:
//!
//! 1. pending deferred merges (`<+`) and deletions (`<-`) from the previous
//!    timestep are applied to persistent tables;
//! 2. the timestep's external inputs populate the input interfaces;
//! 3. the **instantaneous** rules (`<=`) run to fixpoint, stratum by
//!    stratum (nonmonotonic operators — aggregation, negation — only read
//!    collections from strictly lower strata, so each evaluates over a
//!    complete extension);
//! 4. deferred, deletion and asynchronous (`<~`) rules evaluate once
//!    against the final state; deferred/deleted tuples take effect next
//!    timestep, async tuples are handed to the network.
//!
//! Collections hold *sets* of tuples (Bloom's set semantics).
//!
//! ## Evaluation engine
//!
//! The fixpoint of step 3 runs in one of three [`EvalMode`]s:
//!
//! * [`EvalMode::Naive`] — the reference stratified fixpoint: every rule
//!   re-derives from scratch every iteration with nested-loop joins. Kept
//!   as the oracle the optimized modes are differentially tested against.
//! * [`EvalMode::SemiNaive`] (default) — per-collection **delta
//!   relations**: after a first full pass, each iteration only feeds the
//!   tuples that were new in the previous iteration back through the
//!   rules, joining them against **hash indexes** over the accumulated
//!   full sets. Rules whose read-set (from [`catalog::Schedule`]) gained
//!   no tuples are skipped outright. Nonmonotonic bodies (aggregation,
//!   negation) read only strictly-lower strata, so they evaluate exactly
//!   once per stratum. Persistent tables enter the timestep as
//!   copy-on-write snapshots and are only cloned if a rule actually
//!   derives into them.
//! * [`EvalMode::Sharded`] — semi-naive, plus the probe work of monotonic
//!   joins is partitioned by join key across scoped worker threads
//!   ([`blazes_dataflow::pool`]). Per-shard derivations are unioned into
//!   ordered sets at every merge, so results are bit-identical to
//!   single-threaded evaluation — the CALM argument made concrete: no
//!   coordination is needed inside a monotonic stratum, only the ordered
//!   merge at its boundary.
//!
//! Every tick records [`TickStats`] (derivations, join probes, fixpoint
//! iterations, wall time) per stratum, so the cost of re-derivation is a
//! measured number rather than a claim.

use crate::ast::*;
use crate::catalog::{self, Schedule};
use crate::error::{BloomError, Result};
use blazes_dataflow::pool;
use blazes_dataflow::value::{Tuple, Value};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

type Rel = BTreeSet<Tuple>;

/// The per-timestep view of every collection. Persistent tables start as
/// copy-on-write borrows of the instance's stored state; a table is only
/// cloned when a rule actually derives a new tuple into it.
type State<'a> = BTreeMap<String, Cow<'a, Rel>>;

/// A hash index over one collection: join-key values → matching tuples.
type Index = HashMap<Vec<Value>, Vec<Tuple>>;

/// Below this many probe tuples a sharded join runs inline: scoped-thread
/// fan-out costs more than it saves on tiny deltas.
const SHARD_MIN_TUPLES: usize = 256;

/// How the instantaneous-rule fixpoint evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Reference evaluation: full re-derivation every iteration,
    /// nested-loop joins, whole-table snapshots. The oracle for
    /// differential tests.
    Naive,
    /// Semi-naive deltas + hash-join indexes + copy-on-write snapshots.
    #[default]
    SemiNaive,
    /// [`EvalMode::SemiNaive`] with monotonic join probes sharded across
    /// scoped worker threads by join key.
    Sharded {
        /// Worker threads to shard across (0 is treated as 1).
        workers: usize,
    },
}

impl EvalMode {
    /// Sharded evaluation sized like the parallel backend's default
    /// worker count ([`pool::default_workers`]).
    #[must_use]
    pub fn sharded_auto() -> Self {
        EvalMode::Sharded {
            workers: pool::default_workers(),
        }
    }

    fn workers(self) -> usize {
        match self {
            EvalMode::Sharded { workers } => workers.max(1),
            _ => 1,
        }
    }
}

/// Work counters for one timestep (or one stratum of one timestep).
///
/// `derivations` counts every tuple *produced* by a rule body before set
/// deduplication — the quantity naive evaluation inflates by re-deriving
/// the same tuples every iteration and semi-naive evaluation keeps near
/// the number of genuinely new facts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickStats {
    /// Tuples produced by rule-body evaluations (pre-dedup).
    pub derivations: u64,
    /// Rows scanned plus candidate join pairs examined.
    pub join_probes: u64,
    /// Fixpoint iterations executed.
    pub fixpoint_iters: u64,
    /// Wall-clock nanoseconds spent in the fixpoint.
    pub wall_ns: u64,
}

impl TickStats {
    /// Accumulate another stats record into this one.
    pub fn absorb(&mut self, other: TickStats) {
        self.derivations += other.derivations;
        self.join_probes += other.join_probes;
        self.fixpoint_iters += other.fixpoint_iters;
        self.wall_ns += other.wall_ns;
    }
}

/// The output of one timestep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickOutput {
    /// Tuples visible on each output interface this timestep (instant
    /// derivations and async emissions, deduplicated, in sorted order).
    pub outputs: BTreeMap<String, Vec<Tuple>>,
}

impl TickOutput {
    /// Tuples emitted on one interface (empty slice if none).
    #[must_use]
    pub fn on(&self, iface: &str) -> &[Tuple] {
        self.outputs.get(iface).map_or(&[], Vec::as_slice)
    }
}

/// A running instance of a module: persistent tables plus pending deferred
/// work.
#[derive(Debug, Clone)]
pub struct ModuleInstance {
    module: Module,
    schedule: Schedule,
    plans: Vec<Plan>,
    mode: EvalMode,
    tables: BTreeMap<String, Rel>,
    pending_insert: BTreeMap<String, Rel>,
    pending_delete: BTreeMap<String, Rel>,
    ticks: u64,
    last_stats: TickStats,
    last_stratum_stats: Vec<TickStats>,
    total_stats: TickStats,
}

impl ModuleInstance {
    /// Instantiate a module (validates stratifiability) with the default
    /// semi-naive engine.
    pub fn new(module: Module) -> Result<Self> {
        Self::with_mode(module, EvalMode::default())
    }

    /// Instantiate with an explicit evaluation mode.
    pub fn with_mode(module: Module, mode: EvalMode) -> Result<Self> {
        let schedule = catalog::schedule(&module)?;
        let plans = plan_rules(&module);
        let tables = module
            .collections
            .iter()
            .filter(|c| c.kind.is_persistent())
            .map(|c| (c.name.clone(), Rel::new()))
            .collect();
        Ok(ModuleInstance {
            module,
            schedule,
            plans,
            mode,
            tables,
            pending_insert: BTreeMap::new(),
            pending_delete: BTreeMap::new(),
            ticks: 0,
            last_stats: TickStats::default(),
            last_stratum_stats: Vec::new(),
            total_stats: TickStats::default(),
        })
    }

    /// The module definition.
    #[must_use]
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The active evaluation mode.
    #[must_use]
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Switch evaluation modes between ticks. All modes produce
    /// bit-identical [`TickOutput`]s, so this is always safe.
    pub fn set_mode(&mut self, mode: EvalMode) {
        self.mode = mode;
    }

    /// Number of timesteps executed.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Work counters of the most recent tick.
    #[must_use]
    pub fn last_tick_stats(&self) -> TickStats {
        self.last_stats
    }

    /// Per-stratum work counters of the most recent tick (index =
    /// stratum).
    #[must_use]
    pub fn last_stratum_stats(&self) -> &[TickStats] {
        &self.last_stratum_stats
    }

    /// Work counters accumulated over every tick of this instance.
    #[must_use]
    pub fn cumulative_stats(&self) -> TickStats {
        self.total_stats
    }

    /// Contents of a persistent table (empty for unknown names).
    #[must_use]
    pub fn table(&self, name: &str) -> Vec<Tuple> {
        self.tables
            .get(name)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Execute one timestep with the given input-interface tuples.
    pub fn tick(&mut self, inputs: BTreeMap<String, Vec<Tuple>>) -> Result<TickOutput> {
        self.ticks += 1;

        // 1. Apply pending deferred work to tables.
        for (name, rel) in std::mem::take(&mut self.pending_delete) {
            if let Some(t) = self.tables.get_mut(&name) {
                for tuple in rel {
                    t.remove(&tuple);
                }
            }
        }
        let pending = std::mem::take(&mut self.pending_insert);

        let old_tables = std::mem::take(&mut self.tables);
        let res = run_tick(
            &self.module,
            &self.schedule,
            &self.plans,
            self.mode,
            &old_tables,
            &pending,
            inputs,
        );
        self.tables = old_tables;
        let done = res?;
        for (name, rel) in done.new_tables {
            self.tables.insert(name, rel);
        }
        self.pending_insert = done.pending_insert;
        self.pending_delete = done.pending_delete;
        let mut total = done.post_stats;
        for s in &done.stratum_stats {
            total.absorb(*s);
        }
        self.last_stats = total;
        self.last_stratum_stats = done.stratum_stats;
        self.total_stats.absorb(total);
        if blazes_obs::enabled() {
            let reg = blazes_obs::global().registry();
            reg.counter("bloom.ticks").inc();
            reg.counter("bloom.fixpoint_iters")
                .add(total.fixpoint_iters);
            reg.counter("bloom.derivations").add(total.derivations);
            reg.counter("bloom.join_probes").add(total.join_probes);
        }
        Ok(done.output)
    }
}

// ---------------------------------------------------------------------
// Tick evaluation
// ---------------------------------------------------------------------

struct TickDone {
    output: TickOutput,
    /// Persistent tables that changed this tick (copy-on-write slots that
    /// went owned). Unchanged tables are never cloned.
    new_tables: Vec<(String, Rel)>,
    pending_insert: BTreeMap<String, Rel>,
    pending_delete: BTreeMap<String, Rel>,
    stratum_stats: Vec<TickStats>,
    post_stats: TickStats,
}

fn run_tick(
    m: &Module,
    sched: &Schedule,
    plans: &[Plan],
    mode: EvalMode,
    tables: &BTreeMap<String, Rel>,
    pending: &BTreeMap<String, Rel>,
    inputs: BTreeMap<String, Vec<Tuple>>,
) -> Result<TickDone> {
    // 2. Initialize the timestep state: persistent tables as CoW borrows,
    // everything else empty.
    let mut state: State<'_> = BTreeMap::new();
    for c in &m.collections {
        let mut slot: Cow<'_, Rel> = if c.kind.is_persistent() {
            tables
                .get(&c.name)
                .map_or_else(|| Cow::Owned(Rel::new()), Cow::Borrowed)
        } else {
            Cow::Owned(Rel::new())
        };
        if let Some(p) = pending.get(&c.name) {
            if p.iter().any(|t| !slot.contains(t)) {
                slot.to_mut().extend(p.iter().cloned());
            }
        }
        state.insert(c.name.clone(), slot);
    }
    for (iface, tuples) in inputs {
        let decl = m
            .collection(&iface)
            .ok_or_else(|| BloomError::Eval(format!("unknown input interface {iface:?}")))?;
        if decl.kind != CollectionKind::Input {
            return Err(BloomError::Eval(format!(
                "{iface:?} is not an input interface"
            )));
        }
        for t in tuples {
            if t.arity() != decl.arity() {
                return Err(BloomError::Eval(format!(
                    "arity mismatch on {iface:?}: got {}, expected {}",
                    t.arity(),
                    decl.arity()
                )));
            }
            state.get_mut(&iface).expect("declared").to_mut().insert(t);
        }
    }

    // 3. Stratified fixpoint of instantaneous rules.
    let mut stratum_stats = vec![TickStats::default(); sched.max_stratum + 1];
    let mut cache = IndexCache::default();
    match mode {
        EvalMode::Naive => naive_fixpoint(m, sched, &mut state, &mut stratum_stats)?,
        _ => semi_naive_fixpoint(
            m,
            sched,
            plans,
            mode,
            &mut state,
            &mut cache,
            &mut stratum_stats,
        )?,
    }

    // 4. Deferred / deletion / async rules against the final state.
    let mut out_sets: BTreeMap<String, Rel> = BTreeMap::new();
    let mut pending_insert: BTreeMap<String, Rel> = BTreeMap::new();
    let mut pending_delete: BTreeMap<String, Rel> = BTreeMap::new();
    let mut post_stats = TickStats::default();
    let post_started = Instant::now();
    for (ri, rule) in m.rules.iter().enumerate() {
        if rule.op == MergeOp::Instant {
            continue;
        }
        let derived = if mode == EvalMode::Naive {
            eval_body(m, &state, &rule.body, &mut post_stats.join_probes)?
        } else {
            eval_rule_once(
                m,
                plans,
                ri,
                &state,
                &mut cache,
                mode.workers(),
                &mut post_stats.join_probes,
            )?
        };
        post_stats.derivations += derived.len() as u64;
        match rule.op {
            MergeOp::Instant => unreachable!("filtered above"),
            MergeOp::Deferred => {
                pending_insert
                    .entry(rule.head.clone())
                    .or_default()
                    .extend(derived);
            }
            MergeOp::Delete => {
                pending_delete
                    .entry(rule.head.clone())
                    .or_default()
                    .extend(derived);
            }
            MergeOp::Async => {
                let kind = m.collection(&rule.head).map(|c| c.kind);
                if kind == Some(CollectionKind::Output) {
                    out_sets
                        .entry(rule.head.clone())
                        .or_default()
                        .extend(derived);
                } else {
                    // Async into internal state lands next timestep.
                    pending_insert
                        .entry(rule.head.clone())
                        .or_default()
                        .extend(derived);
                }
            }
        }
    }
    post_stats.wall_ns = post_started.elapsed().as_nanos() as u64;

    // Instantly derived output contents are also visible externally.
    for out_name in m.outputs() {
        let rel: &Rel = &state[out_name];
        if !rel.is_empty() {
            out_sets
                .entry(out_name.to_string())
                .or_default()
                .extend(rel.iter().cloned());
        }
    }
    let output = TickOutput {
        outputs: out_sets
            .into_iter()
            .map(|(k, s)| (k, s.into_iter().collect()))
            .collect(),
    };

    // Persist table contents: only copy-on-write slots that actually went
    // owned carry changes; borrowed slots mean the table is untouched.
    let mut new_tables = Vec::new();
    for c in &m.collections {
        if c.kind.is_persistent() {
            if let Some(Cow::Owned(rel)) = state.remove(&c.name) {
                new_tables.push((c.name.clone(), rel));
            }
        }
    }
    Ok(TickDone {
        output,
        new_tables,
        pending_insert,
        pending_delete,
        stratum_stats,
        post_stats,
    })
}

/// The original reference fixpoint: every rule re-derives from scratch
/// every iteration.
fn naive_fixpoint(
    m: &Module,
    sched: &Schedule,
    state: &mut State<'_>,
    stats: &mut [TickStats],
) -> Result<()> {
    for (stratum, st) in stats.iter_mut().enumerate().take(sched.max_stratum + 1) {
        let started = Instant::now();
        let span = blazes_obs::start();
        loop {
            st.fixpoint_iters += 1;
            let mut changed = false;
            for rule in &m.rules {
                if rule.op != MergeOp::Instant || sched.strata[&rule.head] != stratum {
                    continue;
                }
                let derived = eval_body(m, state, &rule.body, &mut st.join_probes)?;
                st.derivations += derived.len() as u64;
                for t in derived {
                    if !state[&rule.head].contains(&t) {
                        state
                            .get_mut(&rule.head)
                            .expect("declared")
                            .to_mut()
                            .insert(t);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        st.wall_ns += started.elapsed().as_nanos() as u64;
        // `a` = stratum, `b` = fixpoint iterations this tick so far.
        blazes_obs::span(
            span,
            blazes_obs::EventKind::Stratum,
            stratum as u64,
            st.fixpoint_iters,
        );
    }
    Ok(())
}

/// Semi-naive fixpoint: one full pass seeds per-collection deltas, then
/// each iteration only joins the previous iteration's new tuples against
/// hash indexes over the accumulated sets. Rules whose read-set gained
/// nothing are skipped. Nonmonotonic bodies run exactly once per stratum
/// (their sources live strictly below and are complete).
fn semi_naive_fixpoint(
    m: &Module,
    sched: &Schedule,
    plans: &[Plan],
    mode: EvalMode,
    state: &mut State<'_>,
    cache: &mut IndexCache,
    stats: &mut [TickStats],
) -> Result<()> {
    let workers = mode.workers();
    for (stratum, st) in stats.iter_mut().enumerate().take(sched.max_stratum + 1) {
        let rules = &sched.instant_by_stratum[stratum];
        if rules.is_empty() {
            continue;
        }
        let started = Instant::now();
        let span = blazes_obs::start();
        st.fixpoint_iters += 1;
        let mut delta: BTreeMap<String, Rel> = BTreeMap::new();
        for &ri in rules {
            let derived = eval_rule_once(m, plans, ri, state, cache, workers, &mut st.join_probes)?;
            st.derivations += derived.len() as u64;
            insert_new(state, cache, &m.rules[ri].head, derived, &mut delta);
        }
        loop {
            delta.retain(|_, r| !r.is_empty());
            if delta.is_empty() {
                break;
            }
            st.fixpoint_iters += 1;
            let cur = std::mem::take(&mut delta);
            for &ri in rules {
                let rule = &m.rules[ri];
                // Aggregations and antijoins saw their (complete, lower-
                // stratum) sources in the first pass.
                if matches!(
                    rule.body,
                    RuleBody::GroupBy { .. } | RuleBody::AntiJoin { .. }
                ) {
                    continue;
                }
                // Read-set skip: nothing new to feed this rule.
                if !sched.reads[ri].iter().any(|s| cur.contains_key(s)) {
                    continue;
                }
                let derived = eval_rule_delta(
                    m,
                    plans,
                    ri,
                    state,
                    cache,
                    &cur,
                    workers,
                    &mut st.join_probes,
                )?;
                st.derivations += derived.len() as u64;
                insert_new(state, cache, &rule.head, derived, &mut delta);
            }
        }
        st.wall_ns += started.elapsed().as_nanos() as u64;
        // `a` = stratum, `b` = fixpoint iterations this tick so far.
        blazes_obs::span(
            span,
            blazes_obs::EventKind::Stratum,
            stratum as u64,
            st.fixpoint_iters,
        );
    }
    Ok(())
}

/// Merge freshly derived tuples into the head collection, recording the
/// genuinely new ones in the delta map and keeping live indexes fresh.
fn insert_new(
    state: &mut State<'_>,
    cache: &mut IndexCache,
    head: &str,
    derived: Rel,
    delta: &mut BTreeMap<String, Rel>,
) {
    let slot = state.get_mut(head).expect("declared");
    for t in derived {
        if slot.contains(&t) {
            continue;
        }
        slot.to_mut().insert(t.clone());
        cache.note_insert(head, &t);
        delta.entry(head.to_string()).or_default().insert(t);
    }
}

// ---------------------------------------------------------------------
// Rule plans and hash indexes
// ---------------------------------------------------------------------

/// The cross- and same-side structure of a join/antijoin `on` clause,
/// resolved to column positions at instantiation time.
#[derive(Debug, Clone, Default)]
struct JoinPlan {
    /// Key columns on the left/positive side (cross-side equalities).
    lkey: Vec<usize>,
    /// Key columns on the right/negated side, aligned with `lkey`.
    rkey: Vec<usize>,
    /// Same-side equalities on the left tuple.
    lfilter: Vec<(usize, usize)>,
    /// Same-side equalities on the right tuple.
    rfilter: Vec<(usize, usize)>,
}

/// Precomputed evaluation strategy per rule.
#[derive(Debug, Clone)]
enum Plan {
    /// Stream the source through predicates.
    Select,
    /// Probe a hash index over the opposite side.
    HashJoin(JoinPlan),
    /// Probe a hash index over the negated side for existence.
    HashAnti(JoinPlan),
    /// One-pass aggregation.
    Aggregate,
    /// On-clause could not be resolved statically — evaluate with the
    /// naive nested loop (which reproduces the reference error behavior).
    Fallback,
}

fn plan_rules(m: &Module) -> Vec<Plan> {
    m.rules
        .iter()
        .map(|r| match &r.body {
            RuleBody::Select { .. } => Plan::Select,
            RuleBody::GroupBy { .. } => Plan::Aggregate,
            RuleBody::Join {
                left, right, on, ..
            } => plan_pairs(m, left, right, on).map_or(Plan::Fallback, Plan::HashJoin),
            RuleBody::AntiJoin {
                source, neg, on, ..
            } => plan_pairs(m, source, neg, on).map_or(Plan::Fallback, Plan::HashAnti),
        })
        .collect()
}

fn plan_pairs(m: &Module, first: &str, second: &str, on: &[(ColRef, ColRef)]) -> Option<JoinPlan> {
    let d1 = m.collection(first)?;
    let d2 = m.collection(second)?;
    let sides = [(first, d1), (second, d2)];
    let mut plan = JoinPlan::default();
    for (a, b) in on {
        match (resolve_side(a, &sides)?, resolve_side(b, &sides)?) {
            ((0, i), (1, j)) => {
                plan.lkey.push(i);
                plan.rkey.push(j);
            }
            ((1, i), (0, j)) => {
                plan.lkey.push(j);
                plan.rkey.push(i);
            }
            ((0, i), (0, j)) => plan.lfilter.push((i, j)),
            ((1, i), (1, j)) => plan.rfilter.push((i, j)),
            _ => return None,
        }
    }
    Some(plan)
}

/// Mirror [`Env::lookup`]'s resolution order exactly: first binding whose
/// name matches (or any binding, for bare refs) and whose schema has the
/// column. `None` means runtime resolution would error — the caller falls
/// back to naive evaluation so the error surfaces identically.
fn resolve_side(col: &ColRef, sides: &[(&str, &CollectionDecl); 2]) -> Option<(usize, usize)> {
    for (si, (name, decl)) in sides.iter().enumerate() {
        if !col.collection.is_empty() && col.collection != *name {
            continue;
        }
        if let Some(i) = decl.col_index(&col.column) {
            return Some((si, i));
        }
        if !col.collection.is_empty() {
            return None;
        }
    }
    None
}

fn key_of(t: &Tuple, cols: &[usize]) -> Vec<Value> {
    cols.iter()
        .map(|&i| t.get(i).expect("schema arity").clone())
        .collect()
}

fn passes_filter(t: &Tuple, eqs: &[(usize, usize)]) -> bool {
    eqs.iter()
        .all(|&(i, j)| t.get(i).expect("schema arity") == t.get(j).expect("schema arity"))
}

/// Shard assignment by join-key hash: tuples with equal keys land on the
/// same shard, so per-shard probe work is disjoint.
fn shard_of(t: &Tuple, cols: &[usize], workers: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &i in cols {
        t.get(i).expect("schema arity").hash(&mut h);
    }
    (h.finish() as usize) % workers
}

/// Hash indexes built once per tick and kept fresh incrementally as the
/// fixpoint inserts new tuples.
#[derive(Default)]
struct IndexCache {
    map: HashMap<(String, Vec<usize>), Index>,
}

impl IndexCache {
    /// Build the `(collection, key-columns)` index from the current state
    /// if it does not exist yet.
    fn ensure(&mut self, state: &State<'_>, coll: &str, cols: &[usize]) {
        let key = (coll.to_string(), cols.to_vec());
        if self.map.contains_key(&key) {
            return;
        }
        let mut idx = Index::default();
        if let Some(rel) = state.get(coll) {
            for t in rel.iter() {
                idx.entry(key_of(t, cols)).or_default().push(t.clone());
            }
        }
        self.map.insert(key, idx);
    }

    fn get(&self, coll: &str, cols: &[usize]) -> &Index {
        self.map
            .get(&(coll.to_string(), cols.to_vec()))
            .expect("index ensured before use")
    }

    /// Keep live indexes over `coll` consistent with a fixpoint insert.
    fn note_insert(&mut self, coll: &str, t: &Tuple) {
        for ((c, cols), idx) in &mut self.map {
            if c == coll {
                idx.entry(key_of(t, cols)).or_default().push(t.clone());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Planned (semi-naive) rule evaluation
// ---------------------------------------------------------------------

/// Evaluate a rule body over the full current state (the first pass of a
/// stratum, and the post-fixpoint deferred/async pass).
fn eval_rule_once(
    m: &Module,
    plans: &[Plan],
    ri: usize,
    state: &State<'_>,
    cache: &mut IndexCache,
    workers: usize,
    probes: &mut u64,
) -> Result<Rel> {
    let rule = &m.rules[ri];
    match (&rule.body, &plans[ri]) {
        (
            RuleBody::Select {
                source,
                projection,
                predicates,
            },
            _,
        ) => {
            let d = decl(m, source)?;
            let tuples: Vec<&Tuple> = state[source].iter().collect();
            eval_select(source, d, projection.as_ref(), predicates, &tuples, probes)
        }
        (
            RuleBody::Join {
                left,
                right,
                projection,
                predicates,
                ..
            },
            Plan::HashJoin(plan),
        ) => {
            let args = JoinArgs {
                left,
                ldecl: decl(m, left)?,
                right,
                rdecl: decl(m, right)?,
                projection,
                predicates,
                plan,
            };
            cache.ensure(state, right, &plan.rkey);
            let probe: Vec<&Tuple> = state[left].iter().collect();
            probe_join(
                &args,
                &probe,
                true,
                cache.get(right, &plan.rkey),
                workers,
                probes,
            )
        }
        (
            RuleBody::AntiJoin {
                source,
                neg,
                projection,
                predicates,
                ..
            },
            Plan::HashAnti(plan),
        ) => {
            let args = AntiArgs {
                source,
                sdecl: decl(m, source)?,
                projection: projection.as_ref(),
                predicates,
                plan,
            };
            cache.ensure(state, neg, &plan.rkey);
            let probe: Vec<&Tuple> = state[source].iter().collect();
            probe_anti(&args, &probe, cache.get(neg, &plan.rkey), workers, probes)
        }
        (RuleBody::GroupBy { .. }, _) => eval_body(m, state, &rule.body, probes),
        // Unresolvable on-clause: reference nested-loop path.
        (_, _) => eval_body(m, state, &rule.body, probes),
    }
}

/// Evaluate a monotonic rule against the previous iteration's deltas:
/// delta ⋈ full on each side, probing the incrementally maintained
/// indexes.
#[allow(clippy::too_many_arguments)] // internal fixpoint plumbing
fn eval_rule_delta(
    m: &Module,
    plans: &[Plan],
    ri: usize,
    state: &State<'_>,
    cache: &mut IndexCache,
    cur: &BTreeMap<String, Rel>,
    workers: usize,
    probes: &mut u64,
) -> Result<Rel> {
    let rule = &m.rules[ri];
    match (&rule.body, &plans[ri]) {
        (
            RuleBody::Select {
                source,
                projection,
                predicates,
            },
            _,
        ) => match cur.get(source) {
            Some(d) if !d.is_empty() => {
                let tuples: Vec<&Tuple> = d.iter().collect();
                eval_select(
                    source,
                    decl(m, source)?,
                    projection.as_ref(),
                    predicates,
                    &tuples,
                    probes,
                )
            }
            _ => Ok(Rel::new()),
        },
        (
            RuleBody::Join {
                left,
                right,
                projection,
                predicates,
                ..
            },
            Plan::HashJoin(plan),
        ) => {
            let args = JoinArgs {
                left,
                ldecl: decl(m, left)?,
                right,
                rdecl: decl(m, right)?,
                projection,
                predicates,
                plan,
            };
            let mut out = Rel::new();
            if let Some(dl) = cur.get(left).filter(|d| !d.is_empty()) {
                cache.ensure(state, right, &plan.rkey);
                let probe: Vec<&Tuple> = dl.iter().collect();
                out.extend(probe_join(
                    &args,
                    &probe,
                    true,
                    cache.get(right, &plan.rkey),
                    workers,
                    probes,
                )?);
            }
            if let Some(dr) = cur.get(right).filter(|d| !d.is_empty()) {
                cache.ensure(state, left, &plan.lkey);
                let probe: Vec<&Tuple> = dr.iter().collect();
                out.extend(probe_join(
                    &args,
                    &probe,
                    false,
                    cache.get(left, &plan.lkey),
                    workers,
                    probes,
                )?);
            }
            Ok(out)
        }
        // Unresolvable join: re-derive fully (correct, rare).
        (RuleBody::Join { .. }, _) => eval_body(m, state, &rule.body, probes),
        // Nonmonotonic bodies never run in delta iterations.
        (RuleBody::AntiJoin { .. } | RuleBody::GroupBy { .. }, _) => {
            debug_assert!(false, "nonmonotonic body in delta iteration");
            Ok(Rel::new())
        }
    }
}

fn eval_select(
    source: &str,
    d: &CollectionDecl,
    projection: Option<&Vec<ProjItem>>,
    predicates: &[Predicate],
    tuples: &[&Tuple],
    probes: &mut u64,
) -> Result<Rel> {
    let mut out = Rel::new();
    for &t in tuples {
        *probes += 1;
        let env = Env {
            bindings: vec![(source, d, t)],
            alias: None,
        };
        if !env.check_all(predicates)? {
            continue;
        }
        out.insert(match projection {
            Some(items) => env.project(items)?,
            None => t.clone(),
        });
    }
    Ok(out)
}

struct JoinArgs<'a> {
    left: &'a str,
    ldecl: &'a CollectionDecl,
    right: &'a str,
    rdecl: &'a CollectionDecl,
    projection: &'a [ProjItem],
    predicates: &'a [Predicate],
    plan: &'a JoinPlan,
}

/// Probe one side's tuples against a hash index over the other side,
/// sharding across scoped workers when the probe set is large enough.
fn probe_join(
    args: &JoinArgs<'_>,
    probe: &[&Tuple],
    probe_is_left: bool,
    index: &Index,
    workers: usize,
    probes: &mut u64,
) -> Result<Rel> {
    let (pkey, pfilter, ofilter) = if probe_is_left {
        (&args.plan.lkey, &args.plan.lfilter, &args.plan.rfilter)
    } else {
        (&args.plan.rkey, &args.plan.rfilter, &args.plan.lfilter)
    };
    let run = |chunk: &[&Tuple]| -> Result<(Rel, u64)> {
        let mut out = Rel::new();
        let mut p = 0u64;
        for &t in chunk {
            p += 1;
            if !passes_filter(t, pfilter) {
                continue;
            }
            let Some(bucket) = index.get(&key_of(t, pkey)) else {
                continue;
            };
            for o in bucket {
                p += 1;
                if !passes_filter(o, ofilter) {
                    continue;
                }
                let (lt, rt) = if probe_is_left { (t, o) } else { (o, t) };
                let env = Env {
                    bindings: vec![(args.left, args.ldecl, lt), (args.right, args.rdecl, rt)],
                    alias: None,
                };
                if !env.check_all(args.predicates)? {
                    continue;
                }
                out.insert(env.project(args.projection)?);
            }
        }
        Ok((out, p))
    };
    run_maybe_sharded(probe, pkey, workers, &run, probes)
}

struct AntiArgs<'a> {
    source: &'a str,
    sdecl: &'a CollectionDecl,
    projection: Option<&'a Vec<ProjItem>>,
    predicates: &'a [Predicate],
    plan: &'a JoinPlan,
}

/// Antijoin via existence probes against an index over the negated side.
fn probe_anti(
    args: &AntiArgs<'_>,
    probe: &[&Tuple],
    index: &Index,
    workers: usize,
    probes: &mut u64,
) -> Result<Rel> {
    let plan = args.plan;
    let run = |chunk: &[&Tuple]| -> Result<(Rel, u64)> {
        let mut out = Rel::new();
        let mut p = 0u64;
        for &t in chunk {
            p += 1;
            let matched = passes_filter(t, &plan.lfilter)
                && match index.get(&key_of(t, &plan.lkey)) {
                    Some(bucket) if plan.rfilter.is_empty() => !bucket.is_empty(),
                    Some(bucket) => bucket.iter().any(|nt| {
                        p += 1;
                        passes_filter(nt, &plan.rfilter)
                    }),
                    None => false,
                };
            if matched {
                continue;
            }
            let env = Env {
                bindings: vec![(args.source, args.sdecl, t)],
                alias: None,
            };
            if !env.check_all(args.predicates)? {
                continue;
            }
            out.insert(match args.projection {
                Some(items) => env.project(items)?,
                None => t.clone(),
            });
        }
        Ok((out, p))
    };
    run_maybe_sharded(probe, &plan.lkey, workers, &run, probes)
}

/// Run a probe closure inline, or partitioned by join-key hash across
/// scoped worker threads when the probe set is large enough to amortize
/// the fan-out. Per-shard results are unioned into one ordered set, so
/// the merge is deterministic regardless of worker count.
fn run_maybe_sharded<F>(
    probe: &[&Tuple],
    key_cols: &[usize],
    workers: usize,
    run: &F,
    probes: &mut u64,
) -> Result<Rel>
where
    F: Fn(&[&Tuple]) -> Result<(Rel, u64)> + Sync,
{
    if workers <= 1 || probe.len() < SHARD_MIN_TUPLES {
        let (out, p) = run(probe)?;
        *probes += p;
        return Ok(out);
    }
    let mut shards: Vec<Vec<&Tuple>> = vec![Vec::new(); workers];
    for &t in probe {
        shards[shard_of(t, key_cols, workers)].push(t);
    }
    let jobs: Vec<_> = shards
        .iter()
        .map(|shard| move || run(shard.as_slice()))
        .collect();
    let mut out = Rel::new();
    for res in pool::fork_join(jobs) {
        let (part, p) = res?;
        *probes += p;
        out.extend(part);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Body evaluation (reference nested-loop path)
// ---------------------------------------------------------------------

fn lit_value(l: &Literal) -> Value {
    match l {
        Literal::Int(i) => Value::Int(*i),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// A row environment: qualified column lookup across one or two bound
/// collections plus an optional aggregate alias.
struct Env<'a> {
    bindings: Vec<(&'a str, &'a CollectionDecl, &'a Tuple)>,
    alias: Option<(&'a str, Value)>,
}

impl<'a> Env<'a> {
    fn lookup(&self, col: &ColRef) -> Result<Value> {
        if let Some((alias, v)) = &self.alias {
            if col.collection.is_empty() && col.column == *alias {
                return Ok(v.clone());
            }
        }
        for (name, decl, tuple) in &self.bindings {
            if !col.collection.is_empty() && col.collection != *name {
                continue;
            }
            if let Some(i) = decl.col_index(&col.column) {
                return Ok(tuple.get(i).expect("schema arity").clone());
            }
            if !col.collection.is_empty() {
                return Err(BloomError::Eval(format!(
                    "collection {:?} has no column {:?}",
                    name, col.column
                )));
            }
        }
        Err(BloomError::Eval(format!(
            "unresolved column reference {col}"
        )))
    }

    fn operand(&self, op: &Operand) -> Result<Value> {
        match op {
            Operand::Col(c) => self.lookup(c),
            Operand::Lit(l) => Ok(lit_value(l)),
        }
    }

    fn check(&self, pred: &Predicate) -> Result<bool> {
        let l = self.operand(&pred.lhs)?;
        let r = self.operand(&pred.rhs)?;
        Ok(pred.op.eval(l.cmp(&r)))
    }

    fn check_all(&self, preds: &[Predicate]) -> Result<bool> {
        for p in preds {
            if !self.check(p)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn project(&self, items: &[ProjItem]) -> Result<Tuple> {
        let mut values = Vec::with_capacity(items.len());
        for item in items {
            values.push(match item {
                ProjItem::Col(c) => self.lookup(c)?,
                ProjItem::Lit(l) => lit_value(l),
            });
        }
        Ok(Tuple(values))
    }
}

fn decl<'m>(m: &'m Module, name: &str) -> Result<&'m CollectionDecl> {
    m.collection(name)
        .ok_or_else(|| BloomError::Eval(format!("unknown collection {name:?}")))
}

fn eval_body(m: &Module, state: &State<'_>, body: &RuleBody, probes: &mut u64) -> Result<Rel> {
    match body {
        RuleBody::Select {
            source,
            projection,
            predicates,
        } => {
            let d = decl(m, source)?;
            let tuples: Vec<&Tuple> = state[source].iter().collect();
            eval_select(source, d, projection.as_ref(), predicates, &tuples, probes)
        }
        RuleBody::Join {
            left,
            right,
            on,
            projection,
            predicates,
        } => {
            let dl = decl(m, left)?;
            let dr = decl(m, right)?;
            let mut out = Rel::new();
            for lt in state[left].iter() {
                for rt in state[right].iter() {
                    *probes += 1;
                    let env = Env {
                        bindings: vec![(left, dl, lt), (right, dr, rt)],
                        alias: None,
                    };
                    let mut matched = true;
                    for (lc, rc) in on {
                        if env.lookup(lc)? != env.lookup(rc)? {
                            matched = false;
                            break;
                        }
                    }
                    if matched && env.check_all(predicates)? {
                        out.insert(env.project(projection)?);
                    }
                }
            }
            Ok(out)
        }
        RuleBody::AntiJoin {
            source,
            neg,
            on,
            projection,
            predicates,
        } => {
            let ds = decl(m, source)?;
            let dn = decl(m, neg)?;
            let mut out = Rel::new();
            for t in state[source].iter() {
                let mut matched = false;
                for nt in state[neg].iter() {
                    *probes += 1;
                    let env = Env {
                        bindings: vec![(source, ds, t), (neg, dn, nt)],
                        alias: None,
                    };
                    let mut all_eq = true;
                    for (lc, rc) in on {
                        if env.lookup(lc)? != env.lookup(rc)? {
                            all_eq = false;
                            break;
                        }
                    }
                    if all_eq {
                        matched = true;
                        break;
                    }
                }
                if matched {
                    continue;
                }
                let env = Env {
                    bindings: vec![(source, ds, t)],
                    alias: None,
                };
                if !env.check_all(predicates)? {
                    continue;
                }
                out.insert(match projection {
                    Some(items) => env.project(items)?,
                    None => t.clone(),
                });
            }
            Ok(out)
        }
        RuleBody::GroupBy {
            source,
            group_by,
            agg,
            agg_col,
            alias,
            having,
            projection,
        } => {
            let d = decl(m, source)?;
            // Group rows by the grouping key.
            let mut groups: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
            for t in state[source].iter() {
                *probes += 1;
                let env = Env {
                    bindings: vec![(source, d, t)],
                    alias: None,
                };
                let mut key = Vec::with_capacity(group_by.len());
                for c in group_by {
                    key.push(env.lookup(c)?);
                }
                groups.entry(key).or_default().push(t);
            }
            let mut out = Rel::new();
            for (key, rows) in groups {
                let value = aggregate(m, source, d, *agg, agg_col.as_ref(), &rows)?;
                // Representative row for column resolution.
                let rep = rows[0];
                let env = Env {
                    bindings: vec![(source, d, rep)],
                    alias: Some((alias.as_str(), value.clone())),
                };
                if let Some(h) = having {
                    if !env.check(h)? {
                        continue;
                    }
                }
                let tuple = match projection {
                    Some(items) => env.project(items)?,
                    None => {
                        let mut values = key.clone();
                        values.push(value.clone());
                        Tuple(values)
                    }
                };
                out.insert(tuple);
            }
            Ok(out)
        }
    }
}

fn aggregate(
    _m: &Module,
    source: &str,
    d: &CollectionDecl,
    agg: AggFun,
    agg_col: Option<&ColRef>,
    rows: &[&Tuple],
) -> Result<Value> {
    let col_index = |c: &ColRef| -> Result<usize> {
        if !c.collection.is_empty() && c.collection != source {
            return Err(BloomError::Eval(format!(
                "aggregate column {c} does not belong to {source:?}"
            )));
        }
        d.col_index(&c.column)
            .ok_or_else(|| BloomError::Eval(format!("unknown aggregate column {c}")))
    };
    Ok(match agg {
        AggFun::Count => Value::Int(rows.len() as i64),
        AggFun::Sum => {
            let c = agg_col.ok_or_else(|| BloomError::Eval("sum requires a column".to_string()))?;
            let i = col_index(c)?;
            let mut sum = 0i64;
            for r in rows {
                sum += r
                    .get(i)
                    .and_then(Value::as_int)
                    .ok_or_else(|| BloomError::Eval("sum over non-integer".to_string()))?;
            }
            Value::Int(sum)
        }
        AggFun::Min | AggFun::Max => {
            let c =
                agg_col.ok_or_else(|| BloomError::Eval("min/max require a column".to_string()))?;
            let i = col_index(c)?;
            let mut vals: Vec<&Value> = rows.iter().filter_map(|r| r.get(i)).collect();
            vals.sort();
            let v = if agg == AggFun::Min {
                vals.first()
            } else {
                vals.last()
            };
            (*v.ok_or_else(|| BloomError::Eval("aggregate over empty group".to_string()))?).clone()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn inputs(pairs: &[(&str, Vec<Tuple>)]) -> BTreeMap<String, Vec<Tuple>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn t2(a: impl Into<Value>, b: impl Into<Value>) -> Tuple {
        Tuple(vec![a.into(), b.into()])
    }

    fn t1(a: impl Into<Value>) -> Tuple {
        Tuple(vec![a.into()])
    }

    /// Every mode a behavior test should hold under.
    fn all_modes() -> Vec<EvalMode> {
        vec![
            EvalMode::Naive,
            EvalMode::SemiNaive,
            EvalMode::Sharded { workers: 2 },
        ]
    }

    #[test]
    fn select_relay() {
        for mode in all_modes() {
            let m = parse_module("module M { input a(x) output o(x) o <= a }").unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            let out = inst
                .tick(inputs(&[("a", vec![t1(1i64), t1(2i64)])]))
                .unwrap();
            assert_eq!(out.on("o"), &[t1(1i64), t1(2i64)]);
        }
    }

    #[test]
    fn tables_persist_across_ticks() {
        for mode in all_modes() {
            let m = parse_module("module M { input a(x) output o(x) table t(x) t <= a o <= t }")
                .unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            inst.tick(inputs(&[("a", vec![t1(1i64)])])).unwrap();
            let out = inst.tick(inputs(&[("a", vec![t1(2i64)])])).unwrap();
            // Both the old and the new tuple are in the table.
            assert_eq!(out.on("o"), &[t1(1i64), t1(2i64)]);
            assert_eq!(inst.table("t").len(), 2);
        }
    }

    #[test]
    fn scratches_do_not_persist() {
        for mode in all_modes() {
            let m = parse_module("module M { input a(x) output o(x) scratch s(x) s <= a o <= s }")
                .unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            inst.tick(inputs(&[("a", vec![t1(1i64)])])).unwrap();
            let out = inst.tick(inputs(&[])).unwrap();
            assert!(out.on("o").is_empty());
        }
    }

    #[test]
    fn deferred_merge_lands_next_tick() {
        for mode in all_modes() {
            let m = parse_module("module M { input a(x) output o(x) table t(x) t <+ a o <= t }")
                .unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            let out = inst.tick(inputs(&[("a", vec![t1(1i64)])])).unwrap();
            assert!(out.on("o").is_empty(), "deferred: not visible this tick");
            let out = inst.tick(inputs(&[])).unwrap();
            assert_eq!(out.on("o"), &[t1(1i64)]);
        }
    }

    #[test]
    fn deletion_removes_next_tick() {
        for mode in all_modes() {
            let m = parse_module(
                r#"
module M {
  input a(x)
  input del(x)
  output o(x)
  table t(x)
  t <= a
  t <- (t * del) on (t.x = del.x) -> (t.x)
  o <= t
}
"#,
            )
            .unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            inst.tick(inputs(&[("a", vec![t1(1i64), t1(2i64)])]))
                .unwrap();
            let out = inst.tick(inputs(&[("del", vec![t1(1i64)])])).unwrap();
            // Deletion is deferred: tuple 1 still visible this tick.
            assert_eq!(out.on("o"), &[t1(1i64), t1(2i64)]);
            let out = inst.tick(inputs(&[])).unwrap();
            assert_eq!(out.on("o"), &[t1(2i64)]);
        }
    }

    const TC: &str = r#"
module TC {
  input edge(src, dst)
  output path(src, dst)
  table e(src, dst)
  scratch p(src, dst)
  e <= edge
  p <= e
  p <= (p * e) on (p.dst = e.src) -> (p.src, e.dst)
  path <= p
}
"#;

    #[test]
    fn transitive_closure_fixpoint() {
        for mode in all_modes() {
            let m = parse_module(TC).unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            let out = inst
                .tick(inputs(&[(
                    "edge",
                    vec![t2(1i64, 2i64), t2(2i64, 3i64), t2(3i64, 4i64)],
                )]))
                .unwrap();
            // 3 direct + 2 two-hop + 1 three-hop = 6 paths.
            assert_eq!(out.on("path").len(), 6);
            assert!(out.on("path").contains(&t2(1i64, 4i64)));
        }
    }

    #[test]
    fn semi_naive_agrees_with_naive_and_cuts_rederivation() {
        let chain: Vec<Tuple> = (0..40).map(|i| t2(i as i64, i as i64 + 1)).collect();

        let mut naive =
            ModuleInstance::with_mode(parse_module(TC).unwrap(), EvalMode::Naive).unwrap();
        let out_naive = naive.tick(inputs(&[("edge", chain.clone())])).unwrap();

        let mut semi =
            ModuleInstance::with_mode(parse_module(TC).unwrap(), EvalMode::SemiNaive).unwrap();
        let out_semi = semi.tick(inputs(&[("edge", chain.clone())])).unwrap();

        assert_eq!(out_naive, out_semi, "digests must be bit-identical");
        let n = naive.last_tick_stats();
        let s = semi.last_tick_stats();
        assert!(
            s.derivations < n.derivations / 4,
            "semi-naive must not re-derive: naive {} vs semi {}",
            n.derivations,
            s.derivations
        );
        assert!(
            s.join_probes < n.join_probes / 4,
            "hash probes must beat nested loops: naive {} vs semi {}",
            n.join_probes,
            s.join_probes
        );
        // Both need the same number of iterations to reach the fixpoint on
        // a chain (diameter-bound), give or take the final empty check.
        assert!(s.fixpoint_iters > 1);
    }

    #[test]
    fn sharded_matches_semi_naive_tables_and_outputs() {
        // Large enough to cross the sharding threshold.
        let edges: Vec<Tuple> = (0..600)
            .map(|i| t2(i as i64 % 300, (i as i64 * 7 + 1) % 300))
            .collect();
        let mut reference =
            ModuleInstance::with_mode(parse_module(TC).unwrap(), EvalMode::SemiNaive).unwrap();
        let out_ref = reference.tick(inputs(&[("edge", edges.clone())])).unwrap();
        for workers in [1usize, 2, 4] {
            let mut sharded =
                ModuleInstance::with_mode(parse_module(TC).unwrap(), EvalMode::Sharded { workers })
                    .unwrap();
            let out = sharded.tick(inputs(&[("edge", edges.clone())])).unwrap();
            assert_eq!(out_ref, out, "sharded x{workers} diverged");
            assert_eq!(reference.table("e"), sharded.table("e"));
        }
    }

    #[test]
    fn stats_exposed_per_stratum() {
        let m = parse_module(
            r#"
module G {
  input click(id)
  output poor(id, n)
  table log(id)
  log <= click
  poor <= log group by (log.id) agg count(*) as n having n < 3
}
"#,
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        inst.tick(inputs(&[("click", vec![t1("a"), t1("b")])]))
            .unwrap();
        let strata = inst.last_stratum_stats();
        assert_eq!(strata.len(), 2, "log in stratum 0, poor in stratum 1");
        assert!(strata.iter().all(|s| s.fixpoint_iters >= 1));
        let total = inst.last_tick_stats();
        assert!(total.derivations >= 2);
        assert_eq!(inst.cumulative_stats().derivations, total.derivations);
        inst.tick(inputs(&[])).unwrap();
        assert!(inst.cumulative_stats().fixpoint_iters > total.fixpoint_iters);
    }

    #[test]
    fn groupby_count_and_having() {
        for mode in all_modes() {
            let m = parse_module(
                r#"
module G {
  input click(id)
  output poor(id, n)
  table log(id)
  log <= click
  poor <= log group by (log.id) agg count(*) as n having n < 3
}
"#,
            )
            .unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            // Note set semantics: duplicates collapse, so use distinct tuples.
            let m_inputs = inputs(&[("click", vec![t1("a"), t1("b")])]);
            let out = inst.tick(m_inputs).unwrap();
            assert_eq!(out.on("poor").len(), 2);
            assert!(out.on("poor").contains(&t2("a", 1i64)));
        }
    }

    #[test]
    fn groupby_sum_min_max() {
        let m = parse_module(
            r#"
module G {
  input obs(k, v)
  output s(k, total)
  output lo(k, v)
  output hi(k, v)
  s <= obs group by (obs.k) agg sum(obs.v) as total
  lo <= obs group by (obs.k) agg min(obs.v) as v
  hi <= obs group by (obs.k) agg max(obs.v) as v
}
"#,
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst
            .tick(inputs(&[(
                "obs",
                vec![t2("a", 1i64), t2("a", 5i64), t2("b", 3i64)],
            )]))
            .unwrap();
        assert_eq!(out.on("s"), &[t2("a", 6i64), t2("b", 3i64)]);
        assert_eq!(out.on("lo"), &[t2("a", 1i64), t2("b", 3i64)]);
        assert_eq!(out.on("hi"), &[t2("a", 5i64), t2("b", 3i64)]);
    }

    #[test]
    fn antijoin_evaluation() {
        for mode in all_modes() {
            let m = parse_module(
                r#"
module A {
  input orders(id)
  input cancels(id)
  output live(id)
  live <= orders not in cancels on (orders.id = cancels.id)
}
"#,
            )
            .unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            let out = inst
                .tick(inputs(&[
                    ("orders", vec![t1(1i64), t1(2i64), t1(3i64)]),
                    ("cancels", vec![t1(2i64)]),
                ]))
                .unwrap();
            assert_eq!(out.on("live"), &[t1(1i64), t1(3i64)]);
        }
    }

    #[test]
    fn antijoin_with_empty_on_clause_is_existence() {
        for mode in all_modes() {
            let m = parse_module(
                r#"
module A {
  input a(x)
  input b(x)
  output o(x)
  o <= a not in b
}
"#,
            );
            // The dialect may or may not accept an empty on-clause; if it
            // parses, semantics must agree across modes.
            let Ok(m) = m else { return };
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            let out = inst
                .tick(inputs(&[
                    ("a", vec![t1(1i64), t1(2i64)]),
                    ("b", vec![t1(9i64)]),
                ]))
                .unwrap();
            assert!(out.on("o").is_empty(), "any b tuple suppresses all of a");
        }
    }

    #[test]
    fn stratified_negation_sees_complete_lower_stratum() {
        for mode in all_modes() {
            // p is derived transitively; the antijoin over p must observe the
            // full fixpoint of p, not a partial extension.
            let m = parse_module(
                r#"
module S {
  input seed(x)
  output missing(x)
  input all_vals(x)
  scratch p(x)
  p <= seed
  p <= p where p.x > 100
  missing <= all_vals not in p on (all_vals.x = p.x)
}
"#,
            )
            .unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            let out = inst
                .tick(inputs(&[
                    ("seed", vec![t1(1i64)]),
                    ("all_vals", vec![t1(1i64), t1(2i64)]),
                ]))
                .unwrap();
            assert_eq!(out.on("missing"), &[t1(2i64)]);
        }
    }

    #[test]
    fn async_output_emitted() {
        for mode in all_modes() {
            let m = parse_module("module M { input a(x) output o(x) o <~ a }").unwrap();
            let mut inst = ModuleInstance::with_mode(m, mode).unwrap();
            let out = inst.tick(inputs(&[("a", vec![t1(9i64)])])).unwrap();
            assert_eq!(out.on("o"), &[t1(9i64)]);
        }
    }

    #[test]
    fn where_predicates_filter() {
        let m = parse_module(
            "module M { input a(x, y) output o(x, y) o <= a where a.x > 1 and a.y == 'keep' }",
        )
        .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst
            .tick(inputs(&[(
                "a",
                vec![
                    Tuple(vec![Value::Int(2), Value::str("keep")]),
                    Tuple(vec![Value::Int(2), Value::str("drop")]),
                    Tuple(vec![Value::Int(0), Value::str("keep")]),
                ],
            )]))
            .unwrap();
        assert_eq!(out.on("o").len(), 1);
    }

    #[test]
    fn arity_mismatch_on_input_rejected() {
        let m = parse_module("module M { input a(x, y) output o(x, y) o <= a }").unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let err = inst.tick(inputs(&[("a", vec![t1(1i64)])])).unwrap_err();
        assert!(matches!(err, BloomError::Eval(_)));
    }

    #[test]
    fn unknown_input_rejected() {
        let m = parse_module("module M { input a(x) output o(x) o <= a }").unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let err = inst.tick(inputs(&[("ghost", vec![t1(1i64)])])).unwrap_err();
        assert!(matches!(err, BloomError::Eval(_)));
    }

    #[test]
    fn projection_with_literals() {
        let m = parse_module("module M { input a(x) output o(x, tag) o <= a -> (a.x, 'hit') }")
            .unwrap();
        let mut inst = ModuleInstance::new(m).unwrap();
        let out = inst.tick(inputs(&[("a", vec![t1(7i64)])])).unwrap();
        assert_eq!(out.on("o"), &[t2(7i64, "hit")]);
    }
}
