//! # blazes-bloom
//!
//! A miniature **Bloom** dialect — the declarative language front end that
//! powers the paper's "white box" mode (Section VII). Programs are bundles
//! of datalog-style rules over named collections; modules expose input and
//! output interfaces and map 1:1 onto Blazes dataflow components.
//!
//! The crate provides:
//!
//! * a textual syntax with a hand-written lexer/parser ([`parser`]);
//! * a **timestep interpreter** ([`interp`]) with Bloom's merge operators —
//!   instantaneous (`<=`), deferred (`<+`), deletion (`<-`) and
//!   asynchronous (`<~`) — and stratified evaluation of nonmonotonic rules.
//!   The fixpoint engine is semi-naive with hash-join indexes and optional
//!   worker sharding ([`interp::EvalMode`]), with per-tick work counters
//!   ([`interp::TickStats`]);
//! * the **white-box static analyses** ([`analyze`]) the paper describes:
//!   syntactic nonmonotonicity detection, persistent-state flow analysis,
//!   partition-subscript inference from `group by` / `not in` clauses, and
//!   injective-functional-dependency lineage through identity projections —
//!   together these derive C.O.W.R. annotations automatically;
//! * a dataflow adapter ([`component`]) so Bloom modules run as components
//!   on the `blazes-dataflow` simulator.
//!
//! ## Example
//!
//! ```
//! use blazes_bloom::parser::parse_module;
//! use blazes_bloom::analyze::annotate_module;
//!
//! let m = parse_module(r#"
//! module Report {
//!   input click(id, campaign)
//!   input request(id)
//!   output response(id, n)
//!   table log(id, campaign)
//!   scratch poor(id, n)
//!
//!   log <= click
//!   poor <= log group by (log.id) agg count(*) as n having n < 100
//!   response <~ (poor * request) on (poor.id = request.id) -> (poor.id, poor.n)
//! }
//! "#).unwrap();
//!
//! let annotations = annotate_module(&m).unwrap();
//! // The click path writes the log confluently: CW.
//! let click = annotations.iter().find(|a| a.from == "click").unwrap();
//! assert_eq!(click.annotation.to_string(), "CW");
//! // The request path is order-sensitive over partitions {id}: OR_{id}.
//! let request = annotations.iter().find(|a| a.from == "request").unwrap();
//! assert_eq!(request.annotation.to_string(), "OR_{id}");
//! ```

pub mod analyze;
pub mod ast;
pub mod catalog;
pub mod component;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;

pub use analyze::{annotate_module, PathAnnotation};
pub use ast::{CollectionKind, MergeOp, Module, Rule};
pub use component::BloomComponent;
pub use error::{BloomError, Result};
pub use interp::{EvalMode, ModuleInstance, TickOutput, TickStats};
pub use parser::parse_module;
