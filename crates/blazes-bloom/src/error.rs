//! Errors for the mini-Bloom front end.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BloomError>;

/// Errors raised by parsing, validation, analysis or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BloomError {
    /// Lexical error.
    Lex {
        /// 1-based line.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based line.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// Semantic validation error (unknown collection, arity mismatch, ...).
    Validate(String),
    /// The program has a cycle through a nonmonotonic rule and cannot be
    /// stratified.
    Unstratifiable(String),
    /// Runtime evaluation error.
    Eval(String),
}

impl fmt::Display for BloomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BloomError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            BloomError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            BloomError::Validate(m) => write!(f, "validation error: {m}"),
            BloomError::Unstratifiable(m) => write!(f, "unstratifiable program: {m}"),
            BloomError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for BloomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(BloomError::Validate("x".into())
            .to_string()
            .contains("validation"));
        assert!(BloomError::Unstratifiable("c".into())
            .to_string()
            .contains("unstratifiable"));
        let e = BloomError::Parse {
            line: 4,
            message: "oops".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }
}
