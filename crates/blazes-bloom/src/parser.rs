//! Recursive-descent parser for the mini-Bloom syntax.
//!
//! ```text
//! module   := "module" IDENT "{" decl* rule* "}"
//! decl     := ("table"|"scratch"|"input"|"output") IDENT "(" cols ")"
//! rule     := IDENT OP body
//! OP       := "<=" | "<+" | "<-" | "<~"
//! body     := join | antijoin | groupby | select
//! select   := IDENT [proj] [where]
//! join     := "(" IDENT "*" IDENT ")" "on" "(" eqs ")" proj [where]
//! antijoin := IDENT "not" "in" IDENT "on" "(" eqs ")" [proj] [where]
//! groupby  := IDENT "group" "by" "(" colrefs ")" "agg" AGG "(" (colref|"*") ")"
//!             "as" IDENT ["having" pred] [proj]
//! proj     := "->" "(" (colref | literal) ("," ...)* ")"
//! where    := "where" pred ("and" pred)*
//! pred     := operand cmp operand
//! ```
//!
//! Declarations and rules may interleave; `module` sections cannot nest.

use crate::ast::*;
use crate::error::{BloomError, Result};
use crate::lexer::{lex, Spanned, Token};

/// Parse a single `module { ... }` definition.
pub fn parse_module(input: &str) -> Result<Module> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let m = p.module()?;
    p.expect_eof()?;
    validate(&m)?;
    Ok(m)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> BloomError {
        BloomError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, expected: &Token) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<()> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("trailing input after module"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn kw(&mut self, word: &str) -> Result<()> {
        match self.bump() {
            Some(Token::Ident(s)) if s == word => Ok(()),
            other => Err(self.err(format!("expected keyword {word:?}, found {other:?}"))),
        }
    }

    fn peek_kw(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == word)
    }

    fn module(&mut self) -> Result<Module> {
        self.kw("module")?;
        let name = self.ident("module name")?;
        self.expect(&Token::LBrace, "'{'")?;
        let mut collections = Vec::new();
        let mut rules = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.bump();
                    break;
                }
                Some(Token::Ident(word))
                    if matches!(word.as_str(), "table" | "scratch" | "input" | "output")
                        // Guard: `table <= ...` would be a rule with an
                        // unfortunate head name; require ident + '(' shape.
                        && matches!(self.peek2(), Some(Token::Ident(_))) =>
                {
                    collections.push(self.decl()?);
                }
                Some(Token::Ident(_)) => rules.push(self.rule()?),
                other => {
                    return Err(self.err(format!(
                        "expected declaration, rule or '}}', found {other:?}"
                    )))
                }
            }
        }
        Ok(Module {
            name,
            collections,
            rules,
        })
    }

    fn decl(&mut self) -> Result<CollectionDecl> {
        let kind = match self.ident("collection kind")?.as_str() {
            "table" => CollectionKind::Table,
            "scratch" => CollectionKind::Scratch,
            "input" => CollectionKind::Input,
            "output" => CollectionKind::Output,
            other => return Err(self.err(format!("unknown collection kind {other:?}"))),
        };
        let name = self.ident("collection name")?;
        self.expect(&Token::LParen, "'('")?;
        let mut schema = Vec::new();
        loop {
            schema.push(self.ident("column name")?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(CollectionDecl { name, kind, schema })
    }

    fn rule(&mut self) -> Result<Rule> {
        let head = self.ident("rule head")?;
        let op = match self.bump() {
            Some(Token::OpInstant) => MergeOp::Instant,
            Some(Token::OpDeferred) => MergeOp::Deferred,
            Some(Token::OpDelete) => MergeOp::Delete,
            Some(Token::OpAsync) => MergeOp::Async,
            other => return Err(self.err(format!("expected merge operator, found {other:?}"))),
        };
        let body = self.body()?;
        Ok(Rule { head, op, body })
    }

    fn body(&mut self) -> Result<RuleBody> {
        if self.peek() == Some(&Token::LParen) {
            return self.join();
        }
        let source = self.ident("source collection")?;
        if self.peek_kw("not") {
            return self.antijoin(source);
        }
        if self.peek_kw("group") {
            return self.groupby(source);
        }
        let projection = self.opt_projection()?;
        let predicates = self.opt_where()?;
        Ok(RuleBody::Select {
            source,
            projection,
            predicates,
        })
    }

    fn join(&mut self) -> Result<RuleBody> {
        self.expect(&Token::LParen, "'('")?;
        let left = self.ident("left collection")?;
        self.expect(&Token::Star, "'*'")?;
        let right = self.ident("right collection")?;
        self.expect(&Token::RParen, "')'")?;
        self.kw("on")?;
        let on = self.eq_list()?;
        let projection = self
            .opt_projection()?
            .ok_or_else(|| self.err("joins require an explicit projection '-> (...)'"))?;
        let predicates = self.opt_where()?;
        Ok(RuleBody::Join {
            left,
            right,
            on,
            projection,
            predicates,
        })
    }

    fn antijoin(&mut self, source: String) -> Result<RuleBody> {
        self.kw("not")?;
        self.kw("in")?;
        let neg = self.ident("negated collection")?;
        self.kw("on")?;
        let on = self.eq_list()?;
        let projection = self.opt_projection()?;
        let predicates = self.opt_where()?;
        Ok(RuleBody::AntiJoin {
            source,
            neg,
            on,
            projection,
            predicates,
        })
    }

    fn groupby(&mut self, source: String) -> Result<RuleBody> {
        self.kw("group")?;
        self.kw("by")?;
        self.expect(&Token::LParen, "'('")?;
        let mut group_by = Vec::new();
        loop {
            group_by.push(self.colref()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')'")?;
        self.kw("agg")?;
        let agg = match self.ident("aggregate function")?.as_str() {
            "count" => AggFun::Count,
            "sum" => AggFun::Sum,
            "min" => AggFun::Min,
            "max" => AggFun::Max,
            other => return Err(self.err(format!("unknown aggregate {other:?}"))),
        };
        self.expect(&Token::LParen, "'('")?;
        let agg_col = if self.eat(&Token::Star) {
            None
        } else {
            Some(self.colref()?)
        };
        self.expect(&Token::RParen, "')'")?;
        self.kw("as")?;
        let alias = self.ident("aggregate alias")?;
        let having = if self.peek_kw("having") {
            self.bump();
            Some(self.predicate()?)
        } else {
            None
        };
        let projection = self.opt_projection()?;
        Ok(RuleBody::GroupBy {
            source,
            group_by,
            agg,
            agg_col,
            alias,
            having,
            projection,
        })
    }

    fn eq_list(&mut self) -> Result<Vec<(ColRef, ColRef)>> {
        self.expect(&Token::LParen, "'('")?;
        let mut out = Vec::new();
        loop {
            let l = self.colref()?;
            self.expect(&Token::Assign, "'='")?;
            let r = self.colref()?;
            out.push((l, r));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(out)
    }

    fn opt_projection(&mut self) -> Result<Option<Vec<ProjItem>>> {
        if !self.eat(&Token::Arrow) {
            return Ok(None);
        }
        self.expect(&Token::LParen, "'('")?;
        let mut items = Vec::new();
        loop {
            items.push(match self.peek() {
                Some(Token::Int(_)) | Some(Token::Str(_)) | Some(Token::Ident(_))
                    if self.peek_literal() =>
                {
                    ProjItem::Lit(self.literal()?)
                }
                _ => ProjItem::Col(self.colref()?),
            });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(Some(items))
    }

    fn peek_literal(&self) -> bool {
        match self.peek() {
            Some(Token::Int(_) | Token::Str(_)) => true,
            Some(Token::Ident(s)) => s == "true" || s == "false",
            _ => false,
        }
    }

    fn literal(&mut self) -> Result<Literal> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Literal::Int(i)),
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Ident(s)) if s == "true" => Ok(Literal::Bool(true)),
            Some(Token::Ident(s)) if s == "false" => Ok(Literal::Bool(false)),
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    fn opt_where(&mut self) -> Result<Vec<Predicate>> {
        let mut preds = Vec::new();
        if !self.peek_kw("where") {
            return Ok(preds);
        }
        self.bump();
        loop {
            preds.push(self.predicate()?);
            if self.peek_kw("and") {
                self.bump();
            } else {
                break;
            }
        }
        Ok(preds)
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let lhs = self.operand()?;
        let op = match self.bump() {
            Some(Token::EqEq) => CmpOp::Eq,
            Some(Token::NotEq) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::OpInstant) => CmpOp::Le, // `<=` doubles as less-equal in predicates
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison operator, found {other:?}"))),
        };
        let rhs = self.operand()?;
        Ok(Predicate { lhs, op, rhs })
    }

    fn operand(&mut self) -> Result<Operand> {
        if self.peek_literal() {
            Ok(Operand::Lit(self.literal()?))
        } else {
            Ok(Operand::Col(self.colref()?))
        }
    }

    fn colref(&mut self) -> Result<ColRef> {
        let first = self.ident("column reference")?;
        if self.eat(&Token::Dot) {
            let column = self.ident("column name")?;
            Ok(ColRef {
                collection: first,
                column,
            })
        } else {
            Ok(ColRef {
                collection: String::new(),
                column: first,
            })
        }
    }
}

/// Static validation: every referenced collection is declared, projections
/// match head arity, group/agg columns belong to the source.
fn validate(m: &Module) -> Result<()> {
    use std::collections::BTreeSet;
    let mut names = BTreeSet::new();
    for c in &m.collections {
        if !names.insert(c.name.clone()) {
            return Err(BloomError::Validate(format!(
                "duplicate collection {:?}",
                c.name
            )));
        }
        if c.schema.is_empty() {
            return Err(BloomError::Validate(format!(
                "collection {:?} has no columns",
                c.name
            )));
        }
    }
    for r in &m.rules {
        let head = m
            .collection(&r.head)
            .ok_or_else(|| BloomError::Validate(format!("unknown head collection {:?}", r.head)))?;
        if head.kind == CollectionKind::Input {
            return Err(BloomError::Validate(format!(
                "rule writes to input interface {:?}",
                r.head
            )));
        }
        for s in r.body.sources() {
            let src = m
                .collection(s)
                .ok_or_else(|| BloomError::Validate(format!("unknown collection {s:?}")))?;
            if src.kind == CollectionKind::Output {
                return Err(BloomError::Validate(format!(
                    "rule reads from output interface {s:?}"
                )));
            }
        }
        let arity = body_arity(m, &r.body)?;
        if arity != head.arity() {
            return Err(BloomError::Validate(format!(
                "rule into {:?} produces {arity} columns, head expects {}",
                r.head,
                head.arity()
            )));
        }
    }
    Ok(())
}

fn body_arity(m: &Module, body: &RuleBody) -> Result<usize> {
    Ok(match body {
        RuleBody::Select {
            source, projection, ..
        } => match projection {
            Some(p) => p.len(),
            None => m.collection(source).map(CollectionDecl::arity).unwrap_or(0),
        },
        RuleBody::Join { projection, .. } => projection.len(),
        RuleBody::AntiJoin {
            source, projection, ..
        } => match projection {
            Some(p) => p.len(),
            None => m.collection(source).map(CollectionDecl::arity).unwrap_or(0),
        },
        RuleBody::GroupBy {
            group_by,
            projection,
            ..
        } => match projection {
            Some(p) => p.len(),
            None => group_by.len() + 1,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"
# The ad-reporting module (POOR query variant).
module Report {
  input click(id, campaign, window)
  input request(id)
  output response(id, n)
  table log(id, campaign, window)
  scratch poor(id, n)

  log <= click
  poor <= log group by (log.id) agg count(*) as n having n < 100
  response <~ (poor * request) on (poor.id = request.id) -> (poor.id, poor.n)
}
"#;

    #[test]
    fn parse_report_module() {
        let m = parse_module(REPORT).unwrap();
        assert_eq!(m.name, "Report");
        assert_eq!(m.collections.len(), 5);
        assert_eq!(m.rules.len(), 3);
        assert_eq!(m.inputs(), vec!["click", "request"]);
        assert_eq!(m.outputs(), vec!["response"]);
    }

    #[test]
    fn parse_groupby_shape() {
        let m = parse_module(REPORT).unwrap();
        let RuleBody::GroupBy {
            source,
            group_by,
            agg,
            alias,
            having,
            ..
        } = &m.rules[1].body
        else {
            panic!("expected groupby");
        };
        assert_eq!(source, "log");
        assert_eq!(group_by.len(), 1);
        assert_eq!(*agg, AggFun::Count);
        assert_eq!(alias, "n");
        let h = having.as_ref().unwrap();
        assert_eq!(h.op, CmpOp::Lt);
    }

    #[test]
    fn parse_join_shape() {
        let m = parse_module(REPORT).unwrap();
        let RuleBody::Join {
            left,
            right,
            on,
            projection,
            ..
        } = &m.rules[2].body
        else {
            panic!("expected join");
        };
        assert_eq!(left, "poor");
        assert_eq!(right, "request");
        assert_eq!(on.len(), 1);
        assert_eq!(projection.len(), 2);
        assert_eq!(m.rules[2].op, MergeOp::Async);
    }

    #[test]
    fn parse_antijoin() {
        let m = parse_module(
            r#"
module M {
  input a(x, y)
  input b(x)
  output out(x, y)
  out <= a not in b on (a.x = b.x)
}
"#,
        )
        .unwrap();
        let RuleBody::AntiJoin {
            source, neg, on, ..
        } = &m.rules[0].body
        else {
            panic!("expected antijoin");
        };
        assert_eq!(source, "a");
        assert_eq!(neg, "b");
        assert_eq!(on[0].0.column, "x");
    }

    #[test]
    fn parse_select_with_where_and_projection() {
        let m = parse_module(
            r#"
module M {
  input a(x, y)
  output out(y)
  out <= a -> (a.y) where a.x > 10 and a.y != 'skip'
}
"#,
        )
        .unwrap();
        let RuleBody::Select {
            projection,
            predicates,
            ..
        } = &m.rules[0].body
        else {
            panic!("expected select");
        };
        assert_eq!(projection.as_ref().unwrap().len(), 1);
        assert_eq!(predicates.len(), 2);
    }

    #[test]
    fn parse_deferred_and_delete_ops() {
        let m = parse_module(
            r#"
module M {
  input a(x)
  table t(x)
  t <+ a
  t <- a where a.x == 0
}
"#,
        )
        .unwrap();
        assert_eq!(m.rules[0].op, MergeOp::Deferred);
        assert_eq!(m.rules[1].op, MergeOp::Delete);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = parse_module("module M { input a(x, y) output o(x) o <= a }").unwrap_err();
        assert!(matches!(err, BloomError::Validate(_)), "{err}");
    }

    #[test]
    fn unknown_collection_rejected() {
        let err = parse_module("module M { input a(x) output o(x) o <= ghost }").unwrap_err();
        assert!(matches!(err, BloomError::Validate(_)));
    }

    #[test]
    fn writing_to_input_rejected() {
        let err = parse_module("module M { input a(x) a <= a }").unwrap_err();
        assert!(matches!(err, BloomError::Validate(_)));
    }

    #[test]
    fn reading_from_output_rejected() {
        let err = parse_module("module M { input a(x) output o(x) o <= a o <= o }").unwrap_err();
        assert!(matches!(err, BloomError::Validate(_)));
    }

    #[test]
    fn duplicate_collection_rejected() {
        let err = parse_module("module M { input a(x) table a(y) }").unwrap_err();
        assert!(matches!(err, BloomError::Validate(_)));
    }

    #[test]
    fn join_without_projection_rejected() {
        let err = parse_module(
            "module M { input a(x) input b(x) output o(x) o <= (a * b) on (a.x = b.x) }",
        )
        .unwrap_err();
        assert!(matches!(err, BloomError::Parse { .. }));
    }

    #[test]
    fn parse_thresh_pattern() {
        // The THRESH query: lower-bound having, projection drops the count.
        let m = parse_module(
            r#"
module T {
  input click(id)
  output thresh(id)
  table log(id)
  log <= click
  thresh <~ log group by (log.id) agg count(*) as n having n > 1000 -> (log.id)
}
"#,
        )
        .unwrap();
        let RuleBody::GroupBy {
            having, projection, ..
        } = &m.rules[1].body
        else {
            panic!()
        };
        assert!(having.as_ref().unwrap().op.is_lower_bound());
        assert_eq!(projection.as_ref().unwrap().len(), 1);
    }
}
