//! Hosting Bloom modules as dataflow components.
//!
//! A [`BloomComponent`] maps a module's input interfaces to component input
//! ports and output interfaces to output ports (both in declaration order).
//! Every incoming data message triggers one timestep with that tuple; the
//! timestep's outputs are emitted on the corresponding ports.
//!
//! Seal punctuations are forwarded on every output port: the module itself
//! is punctuation-agnostic (seal handling — buffering and voting — is the
//! job of the synthesized coordination wrappers in `blazes-apps`).

use crate::ast::Module;
use crate::error::Result;
use crate::interp::{EvalMode, ModuleInstance};
use blazes_dataflow::component::{Component, Context};
use blazes_dataflow::message::Message;
use std::collections::BTreeMap;

/// A dataflow component executing one Bloom module instance.
pub struct BloomComponent {
    instance: ModuleInstance,
    inputs: Vec<String>,
    outputs: Vec<String>,
    name: String,
}

impl BloomComponent {
    /// Wrap a module with the default (semi-naive) engine.
    pub fn new(module: Module) -> Result<Self> {
        Self::with_mode(module, EvalMode::default())
    }

    /// Wrap a module with an explicit evaluation mode. All modes produce
    /// bit-identical tick outputs, so this only changes evaluation cost.
    pub fn with_mode(module: Module, mode: EvalMode) -> Result<Self> {
        let inputs = module.inputs().iter().map(|s| s.to_string()).collect();
        let outputs = module.outputs().iter().map(|s| s.to_string()).collect();
        let name = module.name.clone();
        Ok(BloomComponent {
            instance: ModuleInstance::with_mode(module, mode)?,
            inputs,
            outputs,
            name,
        })
    }

    /// Port index of an input interface.
    #[must_use]
    pub fn input_port(&self, iface: &str) -> Option<usize> {
        self.inputs.iter().position(|i| i == iface)
    }

    /// Port index of an output interface.
    #[must_use]
    pub fn output_port(&self, iface: &str) -> Option<usize> {
        self.outputs.iter().position(|o| o == iface)
    }

    /// The wrapped instance (e.g. to inspect tables in tests).
    #[must_use]
    pub fn instance(&self) -> &ModuleInstance {
        &self.instance
    }
}

impl Component for BloomComponent {
    fn on_message(&mut self, port: usize, msg: Message, ctx: &mut Context) {
        match msg {
            Message::Data(tuple) => {
                let Some(iface) = self.inputs.get(port) else {
                    return;
                };
                let mut inputs = BTreeMap::new();
                inputs.insert(iface.clone(), vec![tuple]);
                match self.instance.tick(inputs) {
                    Ok(out) => {
                        for (oi, iface) in self.outputs.iter().enumerate() {
                            for t in out.on(iface) {
                                ctx.emit(oi, Message::Data(t.clone()));
                            }
                        }
                    }
                    Err(e) => {
                        // Deterministic components must not crash the sim;
                        // surface the error as a poisoned-looking no-op.
                        debug_assert!(false, "bloom eval error in {}: {e}", self.name);
                    }
                }
            }
            Message::Seal(key) => {
                for oi in 0..self.outputs.len() {
                    ctx.emit(oi, Message::Seal(key.clone()));
                }
            }
            Message::Eos => {}
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use blazes_dataflow::backend::PortId;
    use blazes_dataflow::channel::ChannelConfig;
    use blazes_dataflow::sim::SimBuilder;
    use blazes_dataflow::sinks::CollectorSink;
    use blazes_dataflow::value::{Tuple, Value};

    fn counter_module() -> Module {
        parse_module(
            r#"
module Counter {
  input click(id)
  output counts(id, n)
  table log(id)
  log <= click
  counts <~ log group by (log.id) agg count(*) as n
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn port_mapping() {
        let c = BloomComponent::new(counter_module()).unwrap();
        assert_eq!(c.input_port("click"), Some(0));
        assert_eq!(c.output_port("counts"), Some(0));
        assert_eq!(c.input_port("nope"), None);
    }

    #[test]
    fn runs_in_simulation() {
        let mut b = SimBuilder::new(1);
        let comp = BloomComponent::new(counter_module()).unwrap();
        let bloom = b.add_instance(Box::new(comp));
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(bloom, PortId(0), s, PortId(0), ChannelConfig::instant());
        for id in ["a", "b", "a"] {
            b.inject(
                0,
                bloom,
                PortId(0),
                Message::Data(Tuple(vec![Value::str(id)])),
            );
        }
        b.build().run(None);
        // Each tick emits the current counts; the final count for 'a' is 1
        // (set semantics collapse duplicate ('a',) tuples in the log).
        let last = sink.messages();
        assert!(!last.is_empty());
        assert!(last
            .iter()
            .filter_map(Message::as_data)
            .any(|t| t.get(0) == Some(&Value::str("a"))));
    }

    #[test]
    fn seals_are_forwarded() {
        let mut b = SimBuilder::new(0);
        let comp = BloomComponent::new(counter_module()).unwrap();
        let bloom = b.add_instance(Box::new(comp));
        let sink = CollectorSink::new();
        let s = b.add_instance(Box::new(sink.clone()));
        b.connect_with(bloom, PortId(0), s, PortId(0), ChannelConfig::instant());
        b.inject(
            0,
            bloom,
            PortId(0),
            Message::Seal(blazes_dataflow::message::SealKey::new([("campaign", 1i64)])),
        );
        b.build().run(None);
        assert!(matches!(sink.messages()[0], Message::Seal(_)));
    }
}
