//! Abstract syntax for the mini-Bloom dialect.
//!
//! A [`Module`] declares collections and rules. Collections are typed by
//! [`CollectionKind`]: persistent `table`s, per-timestep `scratch`es, and
//! the `input`/`output` interfaces that connect a module to the dataflow.
//! Rules merge the result of a body query into a head collection under one
//! of Bloom's four merge operators.

use std::fmt;

/// A literal value in rules (mirrors the runtime value type).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Str(s) => write!(f, "'{s}'"),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// How a collection persists across timesteps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionKind {
    /// Persistent state, survives timesteps.
    Table,
    /// Transient, recomputed every timestep.
    Scratch,
    /// External input interface (transient).
    Input,
    /// External output interface (transient).
    Output,
}

impl CollectionKind {
    /// Does the collection survive across timesteps?
    #[must_use]
    pub fn is_persistent(self) -> bool {
        matches!(self, CollectionKind::Table)
    }
}

/// A collection declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionDecl {
    /// Collection name.
    pub name: String,
    /// Kind.
    pub kind: CollectionKind,
    /// Column names, in order.
    pub schema: Vec<String>,
}

impl CollectionDecl {
    /// Position of a column in the schema.
    #[must_use]
    pub fn col_index(&self, col: &str) -> Option<usize> {
        self.schema.iter().position(|c| c == col)
    }

    /// Number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.schema.len()
    }
}

/// Bloom's merge operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// `<=`: merge within the current timestep (instantaneous).
    Instant,
    /// `<+`: merge at the next timestep (deferred).
    Deferred,
    /// `<-`: delete at the next timestep. Syntactically nonmonotonic.
    Delete,
    /// `<~`: merge at some later, nondeterministic time (asynchronous) — in
    /// practice, emit on the network.
    Async,
}

impl fmt::Display for MergeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MergeOp::Instant => "<=",
            MergeOp::Deferred => "<+",
            MergeOp::Delete => "<-",
            MergeOp::Async => "<~",
        };
        write!(f, "{s}")
    }
}

/// A column reference `collection.column` (the collection may be inferred
/// during resolution when written bare).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ColRef {
    /// Qualifying collection (empty string until resolved for bare refs).
    pub collection: String,
    /// Column name.
    pub column: String,
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.collection.is_empty() {
            write!(f, "{}", self.column)
        } else {
            write!(f, "{}.{}", self.collection, self.column)
        }
    }
}

/// A projection item: a column or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProjItem {
    /// A (possibly qualified) column reference.
    Col(ColRef),
    /// A literal constant.
    Lit(Literal),
}

impl fmt::Display for ProjItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjItem::Col(c) => write!(f, "{c}"),
            ProjItem::Lit(l) => write!(f, "{l}"),
        }
    }
}

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on ordered operands.
    #[must_use]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater | Equal)
        )
    }

    /// Is this a lower-bound test (`>` / `>=`)? Lower bounds on monotone
    /// aggregates preserve monotonicity (the THRESH pattern).
    #[must_use]
    pub fn is_lower_bound(self) -> bool {
        matches!(self, CmpOp::Gt | CmpOp::Ge)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// One side of a predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// Column reference (or aggregate alias in `having`).
    Col(ColRef),
    /// Literal.
    Lit(Literal),
}

/// A comparison predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Operand,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFun {
    /// `count(*)` or `count(col)` (rows in the group).
    Count,
    /// `sum(col)`.
    Sum,
    /// `min(col)`.
    Min,
    /// `max(col)`.
    Max,
}

impl AggFun {
    /// Does the aggregate's value grow monotonically as inputs accumulate?
    /// (`count`/`sum` over insert-only inputs, and `max`, do; `min`
    /// decreases.)
    #[must_use]
    pub fn is_monotone_increasing(self) -> bool {
        matches!(self, AggFun::Count | AggFun::Sum | AggFun::Max)
    }
}

impl fmt::Display for AggFun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFun::Count => "count",
            AggFun::Sum => "sum",
            AggFun::Min => "min",
            AggFun::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// The body of a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleBody {
    /// `head <= src [-> (proj)] [where preds]`
    Select {
        /// Source collection.
        source: String,
        /// Projection (defaults to all source columns in order).
        projection: Option<Vec<ProjItem>>,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// `head <= (a * b) on (a.x = b.y, ...) -> (proj) [where preds]`
    Join {
        /// Left collection.
        left: String,
        /// Right collection.
        right: String,
        /// Equality pairs (left column, right column).
        on: Vec<(ColRef, ColRef)>,
        /// Projection over both sides (mandatory for joins).
        projection: Vec<ProjItem>,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// `head <= a not in b on (a.x = b.x) [-> (proj)] [where preds]`
    AntiJoin {
        /// Positive side.
        source: String,
        /// Negated side.
        neg: String,
        /// Equality pairs (source column, neg column) — the theta clause.
        on: Vec<(ColRef, ColRef)>,
        /// Projection over the positive side (defaults to all its columns).
        projection: Option<Vec<ProjItem>>,
        /// Conjunctive predicates over the positive side.
        predicates: Vec<Predicate>,
    },
    /// `head <= src group by (cols) agg f(col|*) as alias [having pred]
    ///  [-> (proj)]`
    GroupBy {
        /// Source collection.
        source: String,
        /// Grouping columns.
        group_by: Vec<ColRef>,
        /// Aggregate function.
        agg: AggFun,
        /// Aggregated column (`None` = `*`).
        agg_col: Option<ColRef>,
        /// Alias for the aggregate value.
        alias: String,
        /// Optional `having` predicate (may reference the alias).
        having: Option<Predicate>,
        /// Projection over group columns + alias (defaults to group cols
        /// then alias).
        projection: Option<Vec<ProjItem>>,
    },
}

impl RuleBody {
    /// Collections read by this body.
    #[must_use]
    pub fn sources(&self) -> Vec<&str> {
        match self {
            RuleBody::Select { source, .. } | RuleBody::GroupBy { source, .. } => {
                vec![source]
            }
            RuleBody::Join { left, right, .. } => vec![left, right],
            RuleBody::AntiJoin { source, neg, .. } => vec![source, neg],
        }
    }

    /// Collections whose appearance is *negated* (under `not in`).
    #[must_use]
    pub fn negated_sources(&self) -> Vec<&str> {
        match self {
            RuleBody::AntiJoin { neg, .. } => vec![neg],
            _ => Vec::new(),
        }
    }
}

/// A rule: `head OP body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Head collection.
    pub head: String,
    /// Merge operator.
    pub op: MergeOp,
    /// Body query.
    pub body: RuleBody,
}

/// A Bloom module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Collection declarations.
    pub collections: Vec<CollectionDecl>,
    /// Rules in program order.
    pub rules: Vec<Rule>,
}

impl Module {
    /// Find a collection by name.
    #[must_use]
    pub fn collection(&self, name: &str) -> Option<&CollectionDecl> {
        self.collections.iter().find(|c| c.name == name)
    }

    /// Input interface names.
    #[must_use]
    pub fn inputs(&self) -> Vec<&str> {
        self.collections
            .iter()
            .filter(|c| c.kind == CollectionKind::Input)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Output interface names.
    #[must_use]
    pub fn outputs(&self) -> Vec<&str> {
        self.collections
            .iter()
            .filter(|c| c.kind == CollectionKind::Output)
            .map(|c| c.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.eval(Less));
        assert!(!CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Ge.eval(Greater));
        assert!(!CmpOp::Eq.eval(Less));
    }

    #[test]
    fn lower_bound_detection() {
        assert!(CmpOp::Gt.is_lower_bound());
        assert!(CmpOp::Ge.is_lower_bound());
        assert!(!CmpOp::Lt.is_lower_bound());
        assert!(!CmpOp::Eq.is_lower_bound());
    }

    #[test]
    fn agg_monotonicity() {
        assert!(AggFun::Count.is_monotone_increasing());
        assert!(AggFun::Sum.is_monotone_increasing());
        assert!(AggFun::Max.is_monotone_increasing());
        assert!(!AggFun::Min.is_monotone_increasing());
    }

    #[test]
    fn collection_kind_persistence() {
        assert!(CollectionKind::Table.is_persistent());
        assert!(!CollectionKind::Scratch.is_persistent());
        assert!(!CollectionKind::Input.is_persistent());
    }

    #[test]
    fn body_sources() {
        let b = RuleBody::AntiJoin {
            source: "a".into(),
            neg: "b".into(),
            on: vec![],
            projection: None,
            predicates: vec![],
        };
        assert_eq!(b.sources(), vec!["a", "b"]);
        assert_eq!(b.negated_sources(), vec!["b"]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MergeOp::Async.to_string(), "<~");
        assert_eq!(AggFun::Count.to_string(), "count");
        assert_eq!(CmpOp::Ge.to_string(), ">=");
        assert_eq!(Literal::Str("x".into()).to_string(), "'x'");
        let c = ColRef {
            collection: "log".into(),
            column: "id".into(),
        };
        assert_eq!(c.to_string(), "log.id");
        let bare = ColRef {
            collection: String::new(),
            column: "id".into(),
        };
        assert_eq!(bare.to_string(), "id");
    }
}
