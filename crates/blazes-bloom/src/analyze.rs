//! White-box annotation extraction (paper Section VII-B).
//!
//! For every (input interface, output interface) pair connected by the
//! module's rules, [`annotate_module`] derives a C.O.W.R. annotation:
//!
//! * **C vs O** — syntactic monotonicity of every rule on the path
//!   ([`crate::catalog::is_nonmonotonic`]);
//! * **R vs W** — whether the input's data flows into a persistent table
//!   ([`crate::catalog::writes_state`]);
//! * **gate subscripts** — grouping columns of aggregations and theta
//!   columns of antijoins on the path, chased back to input-interface
//!   attribute names through identity-projection lineage
//!   ([`crate::catalog::trace_to_inputs`]);
//! * **path lineage** — the injective (identity) attribute mapping from the
//!   input interface to the output interface, which blazes-core uses to
//!   chase seal keys through the component.

use crate::ast::*;
use crate::catalog;
use crate::error::Result;
use blazes_core::annotation::{ComponentAnnotation, Gate};
use blazes_core::keys::KeySet;
use std::collections::{BTreeMap, BTreeSet};

/// The derived annotation for one input→output path of a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathAnnotation {
    /// Input interface name.
    pub from: String,
    /// Output interface name.
    pub to: String,
    /// Derived C.O.W.R. annotation.
    pub annotation: ComponentAnnotation,
    /// Identity attribute mapping (input column → output column), for seal
    /// chasing. Only columns with a unique identity chain appear.
    pub lineage: BTreeMap<String, String>,
}

/// Derive annotations for every connected (input, output) pair of `m`.
///
/// Also validates that the module stratifies (the interpreter would refuse
/// it otherwise).
pub fn annotate_module(m: &Module) -> Result<Vec<PathAnnotation>> {
    catalog::stratify(m)?;
    let mut out = Vec::new();
    for input in m.inputs() {
        let closure = catalog::reachable_from(m, input);
        let writes = catalog::writes_state(m, input);
        for output in m.outputs() {
            if !closure.contains(output) {
                continue;
            }
            let nonmono = charged_nonmonotonic_rules(m, &closure, output);
            let annotation = if nonmono.is_empty() {
                if writes {
                    ComponentAnnotation::CW
                } else {
                    ComponentAnnotation::CR
                }
            } else {
                let gate = gate_of(m, &nonmono);
                if writes {
                    ComponentAnnotation::OW(gate)
                } else {
                    ComponentAnnotation::OR(gate)
                }
            };
            out.push(PathAnnotation {
                from: input.to_string(),
                to: output.to_string(),
                annotation,
                lineage: path_lineage(m, input, output),
            });
        }
    }
    Ok(out)
}

/// The nonmonotonic rules *charged* to the path from the input whose
/// forward closure is `closure` to `output`.
///
/// A nonmonotonic rule `R` makes a path order-sensitive in two ways,
/// mirroring the paper's Report annotations (click→response is `CW` even
/// though POOR aggregates nonmonotonically; the order-sensitivity belongs
/// to the request path that *reads* the aggregate):
///
/// 1. **Spontaneous emission** — `R`'s result flows to the output through
///    single-source rules alone (no rendezvous). Whoever feeds `R` sees
///    order-sensitive output: charge the inputs reaching `R`'s sources
///    (the wordcount `Count` case).
/// 2. **Rendezvous read** — some join/antijoin on the way to the output
///    combines `R`-derived data with data from this input: the read races
///    with the nonmonotonic state, so this input is charged (the POOR
///    `request` case).
fn charged_nonmonotonic_rules<'m>(
    m: &'m Module,
    closure: &BTreeSet<String>,
    output: &str,
) -> Vec<&'m Rule> {
    let mut charged = Vec::new();
    for r in m.rules.iter().filter(|r| catalog::is_nonmonotonic(r)) {
        if r.head != output && !catalog::reaches(m, &r.head, output) {
            continue;
        }
        let derived = catalog::reachable_from(m, &r.head);
        let mut hit = false;

        // Case 1: spontaneous emission.
        if single_source_reaches(m, &r.head, output)
            && r.body.sources().iter().any(|s| closure.contains(*s))
        {
            hit = true;
        }

        // Case 2: rendezvous read.
        if !hit {
            for j in &m.rules {
                if j.head != output && !catalog::reaches(m, &j.head, output) {
                    continue;
                }
                let sides: Vec<&str> = match &j.body {
                    RuleBody::Join { left, right, .. } => vec![left, right],
                    RuleBody::AntiJoin { source, neg, .. } => vec![source, neg],
                    _ => continue,
                };
                let in_derived: Vec<bool> = sides.iter().map(|s| derived.contains(*s)).collect();
                for (k, side) in sides.iter().enumerate() {
                    // `side` is the probe: not R-derived, but in this
                    // input's closure, joined against R-derived data.
                    if !in_derived[k]
                        && in_derived.iter().enumerate().any(|(o, d)| o != k && *d)
                        && closure.contains(*side)
                    {
                        hit = true;
                    }
                }
            }
        }
        if hit {
            charged.push(r);
        }
    }
    charged
}

/// Can `from` reach `to` through single-source rules only (selects and
/// aggregations, no joins)?
fn single_source_reaches(m: &Module, from: &str, to: &str) -> bool {
    let mut seen = BTreeSet::new();
    let mut queue = vec![from.to_string()];
    seen.insert(from.to_string());
    while let Some(c) = queue.pop() {
        if c == to {
            return true;
        }
        for r in &m.rules {
            let single = matches!(
                &r.body,
                RuleBody::Select { source, .. } | RuleBody::GroupBy { source, .. } if *source == c
            );
            if single && seen.insert(r.head.clone()) {
                queue.push(r.head.clone());
            }
        }
    }
    false
}

/// The partition subscript of the nonmonotonic rules: group-by columns and
/// antijoin theta columns, traced to input-interface attribute names.
/// Untraceable columns keep a qualified sentinel name (which no seal key
/// matches — conservative).
fn gate_of(m: &Module, nonmono: &[&Rule]) -> Gate {
    let mut attrs = KeySet::new();
    for rule in nonmono {
        let cols: Vec<(String, String)> = match &rule.body {
            RuleBody::GroupBy {
                source, group_by, ..
            } => group_by
                .iter()
                .map(|c| {
                    let coll = if c.collection.is_empty() {
                        source.clone()
                    } else {
                        c.collection.clone()
                    };
                    (coll, c.column.clone())
                })
                .collect(),
            RuleBody::AntiJoin { source, on, .. } => on
                .iter()
                .map(|(l, _)| {
                    let coll = if l.collection.is_empty() {
                        source.clone()
                    } else {
                        l.collection.clone()
                    };
                    (coll, l.column.clone())
                })
                .collect(),
            // Deletions partition on nothing knowable: a sentinel keeps the
            // gate incompatible with any seal.
            _ => vec![(rule.head.clone(), "__delete__".to_string())],
        };
        for (coll, col) in cols {
            let origins = catalog::trace_to_inputs(m, &coll, &col);
            if origins.is_empty() {
                attrs.insert(format!("{coll}.{col}"));
            } else {
                for (_, input_col) in origins {
                    attrs.insert(input_col);
                }
            }
        }
    }
    if attrs.is_empty() {
        Gate::Wildcard
    } else {
        Gate::Keys(attrs)
    }
}

/// Identity attribute mapping from `input` columns to `output` columns.
fn path_lineage(m: &Module, input: &str, output: &str) -> BTreeMap<String, String> {
    let mut lineage = BTreeMap::new();
    let Some(out_decl) = m.collection(output) else {
        return lineage;
    };
    for out_col in &out_decl.schema {
        for (coll, col) in catalog::trace_to_inputs(m, output, out_col) {
            if coll == input && !lineage.contains_key(&col) {
                lineage.insert(col, out_col.clone());
            }
        }
    }
    lineage
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn report(query: &str) -> Module {
        parse_module(&format!(
            r#"
module Report {{
  input click(id, campaign, window)
  input request(id)
  output response(id, n)
  table log(id, campaign, window)
  scratch q(id, n)

  log <= click
  {query}
  response <~ (q * request) on (q.id = request.id) -> (q.id, q.n)
}}
"#
        ))
        .unwrap()
    }

    fn annotation_of(m: &Module, from: &str) -> ComponentAnnotation {
        annotate_module(m)
            .unwrap()
            .into_iter()
            .find(|a| a.from == from)
            .map(|a| a.annotation)
            .unwrap()
    }

    #[test]
    fn poor_derives_or_id() {
        // POOR: upper-bound having -> order-sensitive over {id}.
        let m = report("q <= log group by (log.id) agg count(*) as n having n < 100");
        assert_eq!(
            annotation_of(&m, "request"),
            ComponentAnnotation::or(["id"])
        );
        assert_eq!(annotation_of(&m, "click"), ComponentAnnotation::cw());
    }

    #[test]
    fn window_derives_or_id_window() {
        let m = parse_module(
            r#"
module Report {
  input click(id, campaign, window)
  input request(id)
  output response(id, window, n)
  table log(id, campaign, window)
  scratch q(id, window, n)

  log <= click
  q <= log group by (log.id, log.window) agg count(*) as n having n < 100
  response <~ (q * request) on (q.id = request.id) -> (q.id, q.window, q.n)
}
"#,
        )
        .unwrap();
        assert_eq!(
            annotation_of(&m, "request"),
            ComponentAnnotation::or(["id", "window"])
        );
    }

    #[test]
    fn campaign_derives_or_campaign_id() {
        let m = parse_module(
            r#"
module Report {
  input click(id, campaign, window)
  input request(id)
  output response(campaign, id, n)
  table log(id, campaign, window)
  scratch q(campaign, id, n)

  log <= click
  q <= log group by (log.campaign, log.id) agg count(*) as n having n < 100
  response <~ (q * request) on (q.id = request.id) -> (q.campaign, q.id, q.n)
}
"#,
        )
        .unwrap();
        assert_eq!(
            annotation_of(&m, "request"),
            ComponentAnnotation::or(["campaign", "id"])
        );
    }

    #[test]
    fn thresh_derives_cr() {
        // THRESH: monotone threshold -> confluent read path.
        let m = parse_module(
            r#"
module Report {
  input click(id, campaign, window)
  input request(id)
  output response(id)
  table log(id, campaign, window)
  scratch q(id)

  log <= click
  q <= log group by (log.id) agg count(*) as n having n > 1000 -> (log.id)
  response <~ (q * request) on (q.id = request.id) -> (q.id)
}
"#,
        )
        .unwrap();
        assert_eq!(annotation_of(&m, "request"), ComponentAnnotation::cr());
        assert_eq!(annotation_of(&m, "click"), ComponentAnnotation::cw());
    }

    #[test]
    fn antijoin_gate_from_theta_columns() {
        let m = parse_module(
            r#"
module M {
  input orders(id, sym)
  input cancels(id)
  output live(id, sym)
  live <~ orders not in cancels on (orders.id = cancels.id)
}
"#,
        )
        .unwrap();
        assert_eq!(annotation_of(&m, "orders"), ComponentAnnotation::or(["id"]));
    }

    #[test]
    fn wordcount_module_derives_ow() {
        // The Bloom analogue of the Storm Count bolt: stateful and
        // order-sensitive over (word, batch).
        let m = parse_module(
            r#"
module Count {
  input words(word, batch)
  output counts(word, batch, n)
  table log(word, batch)

  log <= words
  counts <~ log group by (log.word, log.batch) agg count(*) as n having n > 0
}
"#,
        )
        .unwrap();
        assert_eq!(
            annotation_of(&m, "words"),
            ComponentAnnotation::ow(["word", "batch"])
        );
    }

    #[test]
    fn lineage_maps_identity_columns() {
        let m = report("q <= log group by (log.id) agg count(*) as n having n < 100");
        let anns = annotate_module(&m).unwrap();
        let click = anns.iter().find(|a| a.from == "click").unwrap();
        // click.id -> log.id -> q.id (group key) -> response.id.
        assert_eq!(click.lineage.get("id"), Some(&"id".to_string()));
        // campaign is projected away.
        assert!(!click.lineage.contains_key("campaign"));
    }

    #[test]
    fn disconnected_pairs_produce_no_annotation() {
        let m = parse_module(
            r#"
module M {
  input a(x)
  input b(x)
  output out_a(x)
  out_a <= a
}
"#,
        )
        .unwrap();
        let anns = annotate_module(&m).unwrap();
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].from, "a");
    }

    #[test]
    fn pure_relay_is_cr() {
        let m = parse_module("module M { input a(x) output o(x) o <= a }").unwrap();
        assert_eq!(annotation_of(&m, "a"), ComponentAnnotation::cr());
    }

    #[test]
    fn table_relay_is_cw() {
        let m =
            parse_module("module M { input a(x) output o(x) table t(x) t <= a o <= t }").unwrap();
        assert_eq!(annotation_of(&m, "a"), ComponentAnnotation::cw());
    }

    #[test]
    fn delete_rule_gate_is_unmatchable() {
        let m = parse_module(
            r#"
module M {
  input a(x)
  output o(x)
  table t(x)
  t <= a
  t <- a where a.x == 0
  o <= t
}
"#,
        )
        .unwrap();
        let ann = annotation_of(&m, "a");
        let ComponentAnnotation::OW(Gate::Keys(keys)) = &ann else {
            panic!("expected OW with sentinel gate, got {ann}");
        };
        assert!(keys.iter().any(|k| k.contains("__delete__")));
    }
}
