//! Error types for the Blazes analysis.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BlazesError>;

/// Errors surfaced by graph construction, spec parsing, analysis and
/// coordination synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlazesError {
    /// A component, interface, source or sink referenced by name/id does not
    /// exist in the graph.
    UnknownEntity {
        /// What kind of entity was looked up (component, interface, ...).
        kind: &'static str,
        /// The name or rendered id that failed to resolve.
        name: String,
    },
    /// The same stream/path/entity was declared twice.
    Duplicate {
        /// What kind of entity collided.
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// The dataflow graph is structurally invalid (e.g. a component has an
    /// output interface that no path feeds, or a source with no consumers).
    MalformedGraph(String),
    /// The annotation spec file could not be parsed.
    SpecParse {
        /// 1-based line number of the offending input.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Analysis could not complete (e.g. labels failed to converge, which
    /// indicates an internal bug, or an unlabeled input was encountered).
    Analysis(String),
    /// Coordination synthesis failed (e.g. a seal strategy was requested for
    /// a stream with no producers registered).
    Synthesis(String),
}

impl fmt::Display for BlazesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlazesError::UnknownEntity { kind, name } => {
                write!(f, "unknown {kind}: {name:?}")
            }
            BlazesError::Duplicate { kind, name } => {
                write!(f, "duplicate {kind}: {name:?}")
            }
            BlazesError::MalformedGraph(msg) => write!(f, "malformed dataflow graph: {msg}"),
            BlazesError::SpecParse { line, message } => {
                write!(f, "spec parse error at line {line}: {message}")
            }
            BlazesError::Analysis(msg) => write!(f, "analysis error: {msg}"),
            BlazesError::Synthesis(msg) => write!(f, "synthesis error: {msg}"),
        }
    }
}

impl std::error::Error for BlazesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = BlazesError::UnknownEntity {
            kind: "component",
            name: "Count".into(),
        };
        assert_eq!(e.to_string(), "unknown component: \"Count\"");
        let e = BlazesError::SpecParse {
            line: 3,
            message: "expected ':'".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<BlazesError>();
    }
}
